//! Golden-trace equivalence suite for the search/MFS stacks.
//!
//! The campaign loops pin an implicit contract: for a given strategy and
//! seed, the sequence of discoveries (points, symptoms, MFS strings), the
//! experiment count, and the simulated elapsed time are a pure function of
//! the seed. Refactors of the search kernel must not perturb either RNG
//! stream, or every per-seed number in EXPERIMENTS.md silently shifts.
//!
//! This suite makes the contract explicit: the full fig4, fig5, and fig7
//! strategy×seed grids are re-run and their canonical JSON encodings are
//! diffed byte-for-byte against committed fixtures under `tests/fixtures/`.
//! Two fixture generations coexist, because the kernel-unification PR made
//! exactly two deliberate behaviour changes alongside the refactor:
//!
//! * `golden_fig{4,5,7}.json` — recorded from the **pre-kernel** (PR 3)
//!   code. The two-host grids are re-run under
//!   [`SearchConfig::with_legacy_two_host_semantics`] (no stuck-walk
//!   escape, containment-only dedup), which proves the generic
//!   `CampaignLoop`/`MfsExtractor` moved *neither RNG stream*: every
//!   divergence from these fixtures is refactor breakage, never an
//!   intended fix. The fabric grid runs with defaults — the kernel adopted
//!   the fabric semantics, so fig7 is bit-identical without a compat mode.
//! * `golden_fig{4,5}_kernel.json` — recorded from the unified kernel with
//!   its default semantics (stuck-walk escape at 24, identity-keyed
//!   dedup), pinning the *new* behaviour against future drift.
//! * `golden_fig7_bo.json` — the fabric BO column (3 seeds), pinning the
//!   generic `run_bayesian` driver on the fabric domain. First-generation:
//!   the pre-kernel code had no fabric BO cell (a Bayesian config silently
//!   ran the random baseline), so this fixture — unlike `golden_fig7.json`
//!   — is recordable.
//!
//! A mismatch means an RNG stream or a discovery outcome moved —
//! intentional changes must re-record with:
//!
//! ```text
//! GOLDEN_RECORD=1 cargo test --release -q golden
//! ```
//!
//! and justify the diff in the PR description. (Recording regenerates only
//! the current-code fixtures it is pointed at; the pre-kernel files are
//! historical and must never be regenerated.)

use collie_bench::{
    run_campaign_matrix, run_campaign_matrix_report, run_fabric_campaign_matrix,
    run_fabric_campaign_matrix_report, CampaignSpec, MatrixOptions, DEFAULT_SEEDS,
};
use collie_core::fabric::FabricOutcome;
use collie_core::search::{SearchConfig, SearchOutcome, SignalMode};
use collie_rnic::subsystems::SubsystemId;
use serde::Serialize;
use std::path::PathBuf;

/// One discovery, reduced to its seed-deterministic identity.
#[derive(Debug, Serialize)]
struct GoldenDiscovery {
    /// Simulated nanoseconds at which the anomaly was confirmed.
    at_nanos: u64,
    /// The triggering point (display form covers every feature).
    point: String,
    /// The end-to-end symptom.
    symptom: String,
    /// Whether the discovery carries the cross-host hallmark (fabric
    /// campaigns only; `None` on the two-host grids).
    cross_host: Option<bool>,
    /// The extracted MFS, in its canonical describe() form.
    mfs: String,
    /// Ground-truth rules matched (scoring only, but seed-deterministic).
    matched_rules: Vec<String>,
}

/// One first-trigger scoring event.
#[derive(Debug, Serialize)]
struct GoldenRuleHit {
    at_nanos: u64,
    rule: String,
}

/// One campaign cell of a golden grid.
#[derive(Debug, Serialize)]
struct GoldenCell {
    label: String,
    seed: u64,
    experiments: u32,
    skipped_by_mfs: u32,
    elapsed_nanos: u64,
    trace_samples: usize,
    trace_anomalies: usize,
    discoveries: Vec<GoldenDiscovery>,
    rule_hits: Vec<GoldenRuleHit>,
}

impl GoldenCell {
    fn from_search(outcome: &SearchOutcome, seed: u64) -> GoldenCell {
        GoldenCell {
            label: outcome.label.clone(),
            seed,
            experiments: outcome.experiments,
            skipped_by_mfs: outcome.skipped_by_mfs,
            elapsed_nanos: outcome.elapsed.as_nanos(),
            trace_samples: outcome.trace.samples().len(),
            trace_anomalies: outcome.trace.anomaly_samples().len(),
            discoveries: outcome
                .discoveries
                .iter()
                .map(|d| GoldenDiscovery {
                    at_nanos: d.at.as_nanos(),
                    point: d.point.to_string(),
                    symptom: d.symptom.to_string(),
                    cross_host: None,
                    mfs: d.mfs.describe(),
                    matched_rules: d.matched_rules.clone(),
                })
                .collect(),
            rule_hits: outcome
                .rule_hits
                .iter()
                .map(|h| GoldenRuleHit {
                    at_nanos: h.at.as_nanos(),
                    rule: h.rule.clone(),
                })
                .collect(),
        }
    }

    fn from_fabric(outcome: &FabricOutcome, seed: u64) -> GoldenCell {
        GoldenCell {
            label: outcome.label.clone(),
            seed,
            experiments: outcome.experiments,
            skipped_by_mfs: outcome.skipped_by_mfs,
            elapsed_nanos: outcome.elapsed.as_nanos(),
            trace_samples: outcome.trace.samples().len(),
            trace_anomalies: outcome.trace.anomaly_samples().len(),
            discoveries: outcome
                .discoveries
                .iter()
                .map(|d| GoldenDiscovery {
                    at_nanos: d.at.as_nanos(),
                    point: d.point.to_string(),
                    symptom: d.symptom.to_string(),
                    cross_host: Some(d.cross_host),
                    mfs: d.mfs.describe(),
                    matched_rules: d.matched_rules.clone(),
                })
                .collect(),
            rule_hits: Vec::new(),
        }
    }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Serialize, then either record (GOLDEN_RECORD=1) or diff against the
/// committed fixture, reporting the first differing line on mismatch.
///
/// `recordable` is false for the pre-kernel fixtures: they are historical
/// artefacts of the code that predates the generic kernel and can only be
/// compared against, never regenerated.
fn record_or_compare(name: &str, cells: &[GoldenCell], recordable: bool) {
    let rendered = serde_json::to_string_pretty(cells).expect("golden cells serialize");
    let path = fixture_path(name);
    if recordable
        && std::env::var("GOLDEN_RECORD")
            .map(|v| v == "1")
            .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixtures dir");
        std::fs::write(&path, rendered + "\n").expect("write fixture");
        return;
    }
    let recorded = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); record it from a known-good \
             build with GOLDEN_RECORD=1 cargo test --release -q golden",
            path.display()
        )
    });
    let recorded = recorded.trim_end_matches('\n');
    if recorded == rendered {
        return;
    }
    for (line_no, (got, want)) in rendered.lines().zip(recorded.lines()).enumerate() {
        if got != want {
            panic!(
                "{name} diverged from the golden trace at line {}:\n  recorded: {want}\n  current:  {got}\n\
                 (an RNG stream or discovery outcome moved; see tests/golden_traces.rs)",
                line_no + 1
            );
        }
    }
    panic!(
        "{name} diverged from the golden trace: line counts differ \
         (recorded {} lines, current {})",
        recorded.lines().count(),
        rendered.lines().count()
    );
}

/// The fig4 grid: three strategies × three seeds, full 10-hour budget.
fn fig4_cells() -> Vec<CampaignSpec> {
    let configs = [
        SearchConfig::random(0),
        SearchConfig::bayesian(0),
        SearchConfig::collie(0),
    ];
    configs
        .iter()
        .flat_map(|config| {
            DEFAULT_SEEDS
                .iter()
                .map(|&seed| CampaignSpec::seeded(SubsystemId::F, config, seed))
        })
        .collect()
}

/// The fig5 grid: the counter-family × MFS ablation, three seeds each.
fn fig5_cells() -> Vec<CampaignSpec> {
    let configs = [
        SearchConfig::collie(0)
            .with_mfs(false)
            .with_signal(SignalMode::Performance),
        SearchConfig::collie(0)
            .with_mfs(false)
            .with_signal(SignalMode::Diagnostic),
        SearchConfig::collie(0).with_signal(SignalMode::Performance),
        SearchConfig::collie(0).with_signal(SignalMode::Diagnostic),
    ];
    configs
        .iter()
        .flat_map(|config| {
            DEFAULT_SEEDS
                .iter()
                .map(|&seed| CampaignSpec::seeded(SubsystemId::F, config, seed))
        })
        .collect()
}

/// The pre-kernel fig7 grid: random and counter-guided fabric campaigns,
/// three seeds (the fabric BO cells did not exist yet — a Bayesian config
/// was silently mapped to the random baseline, so the historical fixture
/// has no honest BO column to compare against).
fn fig7_cells() -> Vec<CampaignSpec> {
    let configs = [SearchConfig::random(0), SearchConfig::collie(0)];
    configs
        .iter()
        .flat_map(|config| {
            DEFAULT_SEEDS
                .iter()
                .map(|&seed| CampaignSpec::seeded(SubsystemId::F, config, seed))
        })
        .collect()
}

/// The fabric BO column of the fig7 grid (three seeds), completing the
/// 3-strategy × 3-seed matrix the `fig7` binary reports.
fn fig7_bo_cells() -> Vec<CampaignSpec> {
    DEFAULT_SEEDS
        .iter()
        .map(|&seed| CampaignSpec::seeded(SubsystemId::F, &SearchConfig::bayesian(0), seed))
        .collect()
}

/// Run a two-host grid and reduce it to golden cells.
fn run_two_host_grid(cells: &[CampaignSpec]) -> Vec<GoldenCell> {
    let outcomes = run_campaign_matrix(cells, 2);
    cells
        .iter()
        .zip(&outcomes)
        .map(|(cell, (outcome, _))| GoldenCell::from_search(outcome, cell.config.seed))
        .collect()
}

/// The same grid with the pre-kernel two-host semantics (no stuck-walk
/// escape, containment-only dedup) — the configuration whose streams must
/// be bit-identical to the pre-refactor fixtures.
fn legacy(cells: Vec<CampaignSpec>) -> Vec<CampaignSpec> {
    cells
        .into_iter()
        .map(|cell| CampaignSpec {
            config: cell.config.with_legacy_two_host_semantics(),
            ..cell
        })
        .collect()
}

#[test]
fn golden_fig4_discovery_sequences_are_bit_identical_to_the_pre_kernel_code() {
    let golden = run_two_host_grid(&legacy(fig4_cells()));
    record_or_compare("golden_fig4.json", &golden, false);
}

#[test]
fn golden_fig5_discovery_sequences_are_bit_identical_to_the_pre_kernel_code() {
    let golden = run_two_host_grid(&legacy(fig5_cells()));
    record_or_compare("golden_fig5.json", &golden, false);
}

#[test]
fn golden_fig4_kernel_semantics_are_pinned() {
    // The default semantics: stuck-walk escape + identity-keyed dedup.
    let golden = run_two_host_grid(&fig4_cells());
    record_or_compare("golden_fig4_kernel.json", &golden, true);
}

#[test]
fn golden_fig5_kernel_semantics_are_pinned() {
    let golden = run_two_host_grid(&fig5_cells());
    record_or_compare("golden_fig5_kernel.json", &golden, true);
}

#[test]
fn golden_fig7_fabric_discovery_sequences_are_bit_identical_to_the_pre_kernel_code() {
    // The kernel adopted the fabric semantics wholesale, so the default
    // configuration must reproduce the pre-refactor fabric streams.
    let cells = fig7_cells();
    let outcomes = run_fabric_campaign_matrix(&cells, 2);
    let golden: Vec<GoldenCell> = cells
        .iter()
        .zip(&outcomes)
        .map(|(cell, (outcome, _))| GoldenCell::from_fabric(outcome, cell.config.seed))
        .collect();
    record_or_compare("golden_fig7.json", &golden, false);
}

#[test]
fn golden_fig7_bayesian_fabric_cells_are_pinned() {
    // The fabric BO column is first-generation: `SearchStrategy::Bayesian`
    // used to run the *random* baseline on fabric spaces (while the report
    // still said "BO"), so there is no pre-kernel stream to compare
    // against. This fixture pins the real generic-BO driver's fabric
    // streams from the PR that introduced them; together with
    // `golden_fig7.json` it covers the full 3-strategy × 3-seed fig7 grid.
    let cells = fig7_bo_cells();
    let outcomes = run_fabric_campaign_matrix(&cells, 2);
    let golden: Vec<GoldenCell> = cells
        .iter()
        .zip(&outcomes)
        .map(|(cell, (outcome, _))| GoldenCell::from_fabric(outcome, cell.config.seed))
        .collect();
    record_or_compare("golden_fig7_bo.json", &golden, true);
}

/// The same cells with an explicit execution mode: memoization pinned and
/// a speculative lookahead selected (or `None` for the serial loop).
fn with_execution(
    cells: &[CampaignSpec],
    memoize: bool,
    speculation: Option<usize>,
) -> Vec<CampaignSpec> {
    cells
        .iter()
        .cloned()
        .map(|cell| CampaignSpec {
            config: cell
                .config
                .with_memoization(memoize)
                .with_speculation(speculation),
            ..cell
        })
        .collect()
}

/// The same cells with the engine's incremental evaluation path pinned
/// explicitly (rather than inherited from `COLLIE_INCREMENTAL`).
fn with_incremental(cells: &[CampaignSpec], incremental: bool) -> Vec<CampaignSpec> {
    cells
        .iter()
        .cloned()
        .map(|cell| CampaignSpec {
            config: cell.config.with_incremental(incremental),
            ..cell
        })
        .collect()
}

/// Render a two-host grid to its canonical golden JSON.
fn render_two_host(cells: &[CampaignSpec]) -> String {
    serde_json::to_string_pretty(&run_two_host_grid(cells)).expect("golden cells serialize")
}

/// Render a fabric grid to its canonical golden JSON.
fn render_fabric(cells: &[CampaignSpec]) -> String {
    let outcomes = run_fabric_campaign_matrix(cells, 2);
    let golden: Vec<GoldenCell> = cells
        .iter()
        .zip(&outcomes)
        .map(|(cell, (outcome, _))| GoldenCell::from_fabric(outcome, cell.config.seed))
        .collect();
    serde_json::to_string_pretty(&golden).expect("golden cells serialize")
}

/// Byte-compare two rendered grids, reporting the first differing line.
fn assert_same_stream(name: &str, oracle: &str, replay: &str) {
    if oracle == replay {
        return;
    }
    for (line_no, (want, got)) in oracle.lines().zip(replay.lines()).enumerate() {
        if want != got {
            panic!(
                "{name}: speculative replay diverged from the serial oracle at line {}:\n  \
                 serial:      {want}\n  speculative: {got}",
                line_no + 1
            );
        }
    }
    panic!(
        "{name}: speculative replay diverged from the serial oracle: line counts \
         differ (serial {}, speculative {})",
        oracle.lines().count(),
        replay.lines().count()
    );
}

#[test]
fn golden_grids_replay_bit_identically_under_speculation() {
    // The tentpole's differential statement over every committed fixture
    // grid: the serial rendering is the oracle (the fixture tests above
    // pin it against the recorded files), and replaying the same grid
    // speculatively — shallow and deep lookahead, memo cache on and off —
    // must reproduce it byte for byte. With the cache off a campaign
    // cannot share measurements across threads, so speculation falls back
    // to the serial loop; the leg pins that the knob is safe under the
    // COLLIE_MEMOIZE=0 CI matrix too.
    let two_host_grids = [
        ("golden_fig4.json", legacy(fig4_cells())),
        ("golden_fig5.json", legacy(fig5_cells())),
        ("golden_fig4_kernel.json", fig4_cells()),
        ("golden_fig5_kernel.json", fig5_cells()),
    ];
    for (name, cells) in two_host_grids {
        let oracle = render_two_host(&with_execution(&cells, true, None));
        for lookahead in [2usize, 8] {
            for memoize in [true, false] {
                let replay = render_two_host(&with_execution(&cells, memoize, Some(lookahead)));
                assert_same_stream(
                    &format!("{name} (lookahead {lookahead}, memoize {memoize})"),
                    &oracle,
                    &replay,
                );
            }
        }
    }
    let fabric_grids = [
        ("golden_fig7.json", fig7_cells()),
        ("golden_fig7_bo.json", fig7_bo_cells()),
    ];
    for (name, cells) in fabric_grids {
        let oracle = render_fabric(&with_execution(&cells, true, None));
        for lookahead in [2usize, 8] {
            for memoize in [true, false] {
                let replay = render_fabric(&with_execution(&cells, memoize, Some(lookahead)));
                assert_same_stream(
                    &format!("{name} (lookahead {lookahead}, memoize {memoize})"),
                    &oracle,
                    &replay,
                );
            }
        }
    }
}

#[test]
fn golden_grids_are_cache_sharing_independent() {
    // The PR 7 tentpole's differential statement: `run_campaign_matrix`
    // now threads one matrix-scoped shared cache through every cell (so
    // every fixture test above already runs sharing-ON), and turning the
    // sharing *off* must reproduce the same golden streams byte for byte —
    // commits go through each cell's local cache either way. One
    // second-generation grid per stack keeps the runtime in budget; the
    // full fixture set runs the sharing-ON leg above.
    let cells = fig4_cells();
    let oracle = render_two_host(&cells);
    let solo = run_campaign_matrix_report(&cells, &MatrixOptions::new(2).without_shared_cache());
    let golden: Vec<GoldenCell> = cells
        .iter()
        .zip(&solo.cells)
        .map(|(cell, result)| GoldenCell::from_search(&result.outcome, cell.config.seed))
        .collect();
    let replay = serde_json::to_string_pretty(&golden).expect("golden cells serialize");
    assert_same_stream(
        "golden_fig4_kernel.json (shared cache off)",
        &oracle,
        &replay,
    );

    let cells = fig7_bo_cells();
    let oracle = render_fabric(&cells);
    let solo =
        run_fabric_campaign_matrix_report(&cells, &MatrixOptions::new(2).without_shared_cache());
    let golden: Vec<GoldenCell> = cells
        .iter()
        .zip(&solo.cells)
        .map(|(cell, result)| GoldenCell::from_fabric(&result.outcome, cell.config.seed))
        .collect();
    let replay = serde_json::to_string_pretty(&golden).expect("golden cells serialize");
    assert_same_stream("golden_fig7_bo.json (shared cache off)", &oracle, &replay);
}

#[test]
fn golden_grids_are_incremental_independent() {
    // The PR 8 tentpole's differential statement: the per-flow and
    // per-direction delta caches are a pure execution optimisation, so a
    // grid replayed with incremental evaluation on — alone or composed
    // with memoization and speculative lookahead — must reproduce the
    // from-scratch stream byte for byte. The oracle pins incremental
    // *off* explicitly so the test is meaningful under both settings of
    // the COLLIE_INCREMENTAL CI matrix; one second-generation grid per
    // stack keeps the runtime in budget, and the full fixture set runs
    // whichever mode the environment selects in the fixture tests above.
    let compositions = [(true, None), (true, Some(4)), (false, Some(4))];

    let cells = fig4_cells();
    let oracle = render_two_host(&with_incremental(
        &with_execution(&cells, true, None),
        false,
    ));
    for (memoize, speculation) in compositions {
        let legs = with_incremental(&with_execution(&cells, memoize, speculation), true);
        let replay = render_two_host(&legs);
        assert_same_stream(
            &format!(
                "golden_fig4_kernel.json (incremental, memoize {memoize}, \
                 speculation {speculation:?})"
            ),
            &oracle,
            &replay,
        );
    }

    let cells = fig7_bo_cells();
    let oracle = render_fabric(&with_incremental(
        &with_execution(&cells, true, None),
        false,
    ));
    for (memoize, speculation) in compositions {
        let legs = with_incremental(&with_execution(&cells, memoize, speculation), true);
        let replay = render_fabric(&legs);
        assert_same_stream(
            &format!(
                "golden_fig7_bo.json (incremental, memoize {memoize}, \
                 speculation {speculation:?})"
            ),
            &oracle,
            &replay,
        );
    }
}

#[test]
fn golden_grids_are_memoization_independent() {
    // The memo cache only skips flow-model recompute; outcomes must be
    // bit-identical with it on or off. One full-budget cell per stack is
    // enough here — the full suites run under both modes in CI via
    // COLLIE_MEMOIZE.
    // Pinned explicitly (not via the constructor default) so the assertion
    // on cache statistics holds under the COLLIE_MEMOIZE=0 CI leg too.
    let on = CampaignSpec::seeded(
        SubsystemId::F,
        &SearchConfig::collie(0).with_memoization(true),
        DEFAULT_SEEDS[0],
    );
    let off = CampaignSpec {
        config: on.config.clone().with_memoization(false),
        ..on.clone()
    };
    let outcomes = run_campaign_matrix(&[on.clone(), off], 2);
    assert_eq!(
        outcomes[0].0, outcomes[1].0,
        "cache ablation moved a campaign"
    );
    assert!(outcomes[0].1.hits > 0 && outcomes[1].1.hits == 0);
}
