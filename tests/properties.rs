//! Property-based integration tests on cross-crate invariants.
//!
//! Rather than checking specific workloads, these tests sample the search
//! space the way a campaign would and assert the invariants every layer of
//! the stack promises:
//!
//! * measurements never exceed the RNIC specification (line rate / packet
//!   rate), pause ratios are valid fractions, and counters are
//!   non-negative;
//! * the simulator is deterministic: the same point measures identically;
//! * space sampling and mutation always produce well-formed points, and
//!   restrictions are never violated;
//! * an extracted MFS always matches the point it was extracted from, and
//!   breaking one of its numeric conditions stops the match;
//! * the anomaly verdict is consistent with its own thresholds.

use collie::prelude::*;
use collie::sim::rng::SimRng;
use proptest::prelude::*;

fn space_f() -> SearchSpace {
    SearchSpace::for_host(&SubsystemId::F.host())
}

/// Sample a search point from an arbitrary seed, exactly as a campaign
/// would draw it.
fn point_from_seed(seed: u64) -> SearchPoint {
    let mut rng = SimRng::new(seed);
    space_f().random_point(&mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn sampled_points_are_well_formed_and_mutation_preserves_validity(seed in any::<u64>()) {
        let space = space_f();
        let mut rng = SimRng::new(seed);
        let point = space.random_point(&mut rng);
        prop_assert!(point.is_well_formed(&space));
        let mut current = point;
        for _ in 0..16 {
            current = space.mutate(&current, &mut rng);
            prop_assert!(current.is_well_formed(&space), "mutation broke the point: {current}");
        }
    }

    #[test]
    fn measurements_respect_the_rnic_specification(seed in any::<u64>()) {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let point = point_from_seed(seed);
        let measurement = engine.measure(&point);
        let spec = &engine.subsystem().rnic;

        // Pause ratios are valid fractions.
        prop_assert!((0.0..=1.0).contains(&measurement.max_pause_ratio()));

        // No direction exceeds the line rate or the packet-rate budget by
        // more than rounding noise.
        for dir in &measurement.directions {
            prop_assert!(
                dir.throughput.gbps() <= spec.line_rate.gbps() * 1.001,
                "{}: {} exceeds line rate",
                dir.direction,
                dir.throughput
            );
            prop_assert!(
                dir.packet_rate.mpps() <= spec.max_packet_rate.mpps() * 1.001,
                "{}: {} exceeds the packet-rate budget",
                dir.direction,
                dir.packet_rate
            );
            prop_assert!(dir.throughput.gbps() <= dir.offered.gbps() * 1.001);
        }

        // Counters are non-negative and the snapshot covers all 13 names.
        prop_assert_eq!(measurement.counters.iter().count(), 13);
        prop_assert!(measurement.counters.iter().all(|(_, _, v)| v >= 0.0));
    }

    #[test]
    fn measurement_is_deterministic(seed in any::<u64>()) {
        let point = point_from_seed(seed);
        let mut engine_a = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut engine_b = WorkloadEngine::for_catalog(SubsystemId::F);
        let a = engine_a.measure(&point);
        let b = engine_b.measure(&point);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn verdict_is_consistent_with_thresholds(seed in any::<u64>()) {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let point = point_from_seed(seed);
        let (measurement, verdict) = monitor.measure_and_assess(&mut engine, &point);

        prop_assert_eq!(verdict.pause_ratio, measurement.max_pause_ratio());
        match verdict.symptom {
            Some(Symptom::PauseStorm) => prop_assert!(verdict.pause_ratio > 0.001),
            Some(Symptom::LowThroughput) => {
                prop_assert!(verdict.pause_ratio <= 0.001);
                prop_assert!(verdict.spec_fraction < 0.8);
            }
            None => {
                prop_assert!(verdict.pause_ratio <= 0.001);
                prop_assert!(verdict.spec_fraction >= 0.8);
            }
        }
    }

    #[test]
    fn restrictions_are_never_violated_by_sampling_or_mutation(seed in any::<u64>()) {
        let restriction = SpaceRestriction::rpc_library();
        let space = space_f().restricted(restriction.clone());
        let mut rng = SimRng::new(seed);
        let mut point = space.random_point(&mut rng);
        prop_assert!(restriction.allows(&point));
        for _ in 0..8 {
            point = space.mutate(&point, &mut rng);
            prop_assert!(restriction.allows(&point), "mutation escaped the envelope: {point}");
        }
    }

    #[test]
    fn experiment_cost_stays_in_the_documented_band(seed in any::<u64>()) {
        let point = point_from_seed(seed);
        let cost = WorkloadEngine::experiment_cost(&point).as_secs_f64();
        prop_assert!((20.0..=60.0).contains(&cost), "cost {cost} outside 20–60 s");
    }
}

proptest! {
    // MFS extraction runs dozens of probe experiments per case, so keep the
    // case count lower than the cheap invariants above.
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn extracted_mfs_matches_its_own_example(anomaly_id in 1u32..=18) {
        let anomaly = KnownAnomaly::by_id(anomaly_id).unwrap();
        let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
        let monitor = AnomalyMonitor::new();
        let space = SearchSpace::for_host(&anomaly.subsystem.host());

        let (_, verdict) = monitor.measure_and_assess(&mut engine, &anomaly.trigger);
        prop_assert_eq!(verdict.symptom, Some(anomaly.symptom));

        let mut evaluator = collie::core::eval::Evaluator::new(&mut engine);
        let mut extractor =
            collie::core::monitor::MfsExtractor::new(&mut evaluator, &monitor, &space);
        let outcome = extractor.extract(&anomaly.trigger, anomaly.symptom);

        // The anomalous point satisfies its own MFS.
        prop_assert!(outcome.mfs.matches(&anomaly.trigger), "{}", outcome.mfs.describe());
        prop_assert_eq!(outcome.mfs.symptom, anomaly.symptom);
        // Extraction charged hardware time for its probes.
        prop_assert!(outcome.experiments > 0);
        prop_assert!(outcome.elapsed.as_secs_f64() >= 20.0 * outcome.experiments as f64 * 0.99);

        // Violating an at-least condition (dropping the feature to far below
        // the threshold) stops the match.
        if let Some((feature, threshold)) = outcome.mfs.conditions.iter().find_map(|(f, c)| {
            match c {
                collie::core::monitor::FeatureCondition::AtLeast(t) if *t > 1 => Some((*f, *t)),
                _ => None,
            }
        }) {
            let mut broken = anomaly.trigger.clone();
            broken.apply(feature, &collie::core::space::FeatureValue::Number(threshold / 2));
            prop_assert!(!outcome.mfs.matches(&broken));
        }
    }
}

/// Draw `n` pause ratios in [0, 1] from one seed (the shim has no float
/// strategies, so ratios are derived from integer draws).
fn ratios_from_seed(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| rng.gen_f64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    #[test]
    fn pause_combine_is_order_insensitive_and_dominates_every_input(seed in any::<u64>()) {
        use collie::rnic::pfc::PauseAccount;
        let mut rng = SimRng::new(seed);
        let count = (rng.gen_range_u64(1, 7)) as usize;
        let accounts: Vec<PauseAccount> = ratios_from_seed(seed ^ 0x9e37, count)
            .into_iter()
            .map(|pause_ratio| PauseAccount { pause_ratio })
            .collect();
        let combined = PauseAccount::combine(&accounts).pause_ratio;

        // A valid ratio.
        prop_assert!((0.0..=1.0).contains(&combined));
        // Never below the worst single contribution (pause times cannot
        // cancel each other out).
        let max_input = accounts
            .iter()
            .map(|a| a.pause_ratio)
            .fold(0.0, f64::max);
        prop_assert!(
            combined >= max_input - 1e-12,
            "combine({accounts:?}) = {combined} < max input {max_input}"
        );
        // Order-insensitive: reversing (and rotating) the inputs changes
        // nothing beyond floating-point noise.
        let mut reversed = accounts.clone();
        reversed.reverse();
        prop_assert!((PauseAccount::combine(&reversed).pause_ratio - combined).abs() < 1e-12);
        let mut rotated = accounts.clone();
        rotated.rotate_left(count / 2);
        prop_assert!((PauseAccount::combine(&rotated).pause_ratio - combined).abs() < 1e-12);
    }

    #[test]
    fn pause_with_extra_is_monotone_and_stays_a_ratio(seed in any::<u64>()) {
        use collie::rnic::pfc::PauseAccount;
        let draws = ratios_from_seed(seed, 3);
        let base = PauseAccount { pause_ratio: draws[0] };
        let (lo, hi) = if draws[1] <= draws[2] {
            (draws[1], draws[2])
        } else {
            (draws[2], draws[1])
        };
        let with_lo = base.with_extra(lo).pause_ratio;
        let with_hi = base.with_extra(hi).pause_ratio;
        prop_assert!((0.0..=1.0).contains(&with_lo));
        prop_assert!((0.0..=1.0).contains(&with_hi));
        // Monotone in the extra contribution...
        prop_assert!(with_hi >= with_lo - 1e-12, "{with_hi} < {with_lo}");
        // ...and never below the base pause.
        prop_assert!(with_lo >= base.pause_ratio - 1e-12);
        // Zero extra is the identity.
        prop_assert!((base.with_extra(0.0).pause_ratio - base.pause_ratio).abs() < 1e-12);
    }

    #[test]
    fn pause_propagation_amplifies_monotonically_within_bounds(seed in any::<u64>()) {
        use collie::rnic::pfc::PauseAccount;
        let draws = ratios_from_seed(seed, 2);
        let base = PauseAccount { pause_ratio: draws[0] };
        let amp_small = 1.0 + draws[1] * 2.0;
        let amp_large = amp_small + 1.0;
        let relayed = base.propagated(1.0).pause_ratio;
        let small = base.propagated(amp_small).pause_ratio;
        let large = base.propagated(amp_large).pause_ratio;
        // The lossless relay is exact; amplification only ever adds pause,
        // monotonically, and the result remains a valid ratio.
        prop_assert!((relayed - base.pause_ratio).abs() < 1e-12);
        prop_assert!(small >= relayed - 1e-12);
        prop_assert!(large >= small - 1e-12);
        prop_assert!((0.0..=1.0).contains(&large));
    }
}

/// Determinism of a full campaign, stated as a plain test because it is a
/// single (seeded) scenario rather than a sampled property.
#[test]
fn campaign_is_a_pure_function_of_its_seed() {
    let space = space_f();
    let config = SearchConfig::collie(2024).with_budget(SimDuration::from_secs(1800));
    let mut first = WorkloadEngine::for_catalog(SubsystemId::F);
    let mut second = WorkloadEngine::for_catalog(SubsystemId::F);
    let a = collie::core::search::run_search(&mut first, &space, &config);
    let b = collie::core::search::run_search(&mut second, &space, &config);
    assert_eq!(a.experiments, b.experiments);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.discoveries.len(), b.discoveries.len());
    for (x, y) in a.discoveries.iter().zip(b.discoveries.iter()) {
        assert_eq!(x.point, y.point);
        assert_eq!(x.symptom, y.symptom);
        assert_eq!(x.mfs, y.mfs);
    }
}
