//! Property-based tests for the BO surrogate encoding
//! (`SearchDomain::surrogate_features`), exercised through both domain
//! bindings: the two-host `WorkloadDomain` (16 dims) and the fabric
//! `FabricDomain` (19 dims: the embedded culprit workload plus host count,
//! incast degree, and traffic shape).
//!
//! Sampled points are perturbed one feature-projection coordinate at a
//! time (every alternative value the MFS extractor would probe) and two
//! invariants asserted:
//!
//! 1. the vector length is stable across the whole space — the surrogate's
//!    Euclidean metric is meaningless over ragged vectors;
//! 2. the encoding is injective over single-coordinate changes — two
//!    points that differ in any one coordinate of the feature projection
//!    encode to distinct vectors, so the nearest-neighbour predictor can
//!    never conflate them at distance zero.
//!
//! Seeds come from the PROPTEST_SEED-pinned proptest driver, so a red CI
//! run reproduces locally with the same one-liner.

use collie::core::fabric::{FabricDomain, FabricEngine, FabricEvaluator};
use collie::core::search::{SearchDomain, WorkloadDomain};
use collie::core::space::{FabricFeature, Feature};
use collie::prelude::*;
use collie::sim::rng::SimRng;
use collie_core::eval::Evaluator;
use proptest::prelude::*;

/// The two-host surrogate vector: transport, opcode, the log-scaled
/// numeric ladders, the two message-pattern coordinates, the two flags,
/// and the two memory codes.
const TWO_HOST_DIMS: usize = 16;
/// The fabric surrogate vector: the embedded two-host encoding plus host
/// count, incast degree, and traffic-shape code.
const FABRIC_DIMS: usize = TWO_HOST_DIMS + 3;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    #[test]
    fn two_host_surrogate_is_injective_over_single_coordinate_changes(seed in any::<u64>()) {
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let mut evaluator = Evaluator::new(&mut engine);
        let domain = WorkloadDomain::new(&mut evaluator, &monitor, &space, SignalMode::Diagnostic);

        let mut rng = SimRng::new(seed);
        let point = space.random_point(&mut rng);
        let base = domain.surrogate_features(&point);
        prop_assert_eq!(base.len(), TWO_HOST_DIMS);
        prop_assert!(base.iter().all(|v| v.is_finite()), "{base:?}");

        for feature in Feature::ALL {
            for alt in space.alternatives(&point, feature) {
                let mut other = point.clone();
                other.apply(feature, &alt);
                let encoded = domain.surrogate_features(&other);
                prop_assert_eq!(encoded.len(), TWO_HOST_DIMS);
                if other != point {
                    prop_assert!(
                        encoded != base,
                        "changing {} to {} left the surrogate vector unchanged for {}",
                        feature, alt, point
                    );
                }
            }
        }
    }

    #[test]
    fn fabric_surrogate_is_injective_over_single_coordinate_changes(seed in any::<u64>()) {
        let space = FabricSpace::for_host(&SubsystemId::F.host());
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let mut evaluator = FabricEvaluator::new(&mut engine);
        let domain = FabricDomain::new(&mut evaluator, &monitor, &space, SignalMode::Diagnostic);

        let mut rng = SimRng::new(seed);
        let point = space.random_point(&mut rng);
        let base = domain.surrogate_features(&point);
        prop_assert_eq!(base.len(), FABRIC_DIMS);
        prop_assert!(base.iter().all(|v| v.is_finite()), "{base:?}");

        for feature in FabricFeature::all() {
            for alt in space.alternatives(&point, feature) {
                let mut other = point.clone();
                other.apply(feature, &alt);
                let encoded = domain.surrogate_features(&other);
                prop_assert_eq!(encoded.len(), FABRIC_DIMS);
                if other != point {
                    prop_assert!(
                        encoded != base,
                        "changing {} to {} left the surrogate vector unchanged for {}",
                        feature, alt, point
                    );
                }
            }
        }
    }
}

#[test]
fn fabric_surrogate_embeds_the_two_host_encoding() {
    // The fabric vector's two-host prefix is byte-identical to the
    // workload encoding of the embedded culprit point, so a fabric BO
    // walk measures culprit-pair distances exactly like the two-host
    // baseline does — the property the generalisation was built on.
    let space = SearchSpace::for_host(&SubsystemId::F.host());
    let fabric_space = FabricSpace::for_host(&SubsystemId::F.host());
    let monitor = AnomalyMonitor::new();
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let mut evaluator = Evaluator::new(&mut engine);
    let two_host = WorkloadDomain::new(&mut evaluator, &monitor, &space, SignalMode::Diagnostic);
    let mut fabric_engine = FabricEngine::for_catalog(SubsystemId::F);
    let mut fabric_evaluator = FabricEvaluator::new(&mut fabric_engine);
    let fabric = FabricDomain::new(
        &mut fabric_evaluator,
        &monitor,
        &fabric_space,
        SignalMode::Diagnostic,
    );

    let mut rng = SimRng::new(7);
    for _ in 0..32 {
        let point = fabric_space.random_point(&mut rng);
        let fabric_vector = fabric.surrogate_features(&point);
        let workload_vector = two_host.surrogate_features(&point.workload);
        assert_eq!(fabric_vector[..TWO_HOST_DIMS], workload_vector[..]);
    }
}
