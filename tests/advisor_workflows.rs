//! Integration test: the two §7.3 application-design workflows.
//!
//! Case 1 (anomaly prevention): before the RC-only RPC library is built,
//! restrict the search space to its envelope and ask which anomalies remain
//! reachable — the paper reports Collie pointed at #4 and #5 and the
//! library was designed around them.
//!
//! Case 2 (debugging / bypassing): the BytePS-style distributed training
//! job hit anomaly #9 on the new AMD subsystem; matching the running
//! workload against the MFS set produced the bypass (stop mixing small and
//! large messages in one SG list) that unblocked the deployment before the
//! vendor fix existed.

use collie::prelude::*;

#[test]
fn prevention_rpc_library_reaches_4_and_5_but_not_ud_or_gpu_anomalies() {
    let advisor = Advisor::for_subsystem(SubsystemId::F);
    let restriction = SpaceRestriction::rpc_library();

    let reachable: Vec<u32> = advisor
        .reachable_anomalies(&restriction)
        .iter()
        .map(|a| a.id)
        .collect();

    assert!(
        reachable.contains(&4),
        "RC READ batching anomaly is reachable"
    );
    assert!(
        reachable.contains(&5),
        "RC SEND receive-queue anomaly is reachable"
    );
    for ud_only in [1u32, 2] {
        assert!(
            !reachable.contains(&ud_only),
            "#{ud_only} needs UD, excluded by the envelope"
        );
    }
    assert!(
        !reachable.contains(&12),
        "GPU-Direct anomaly is outside the envelope"
    );
    assert!(
        !reachable.contains(&13),
        "loopback anomaly is outside the envelope"
    );

    // Every reachable anomaly comes with an actionable suggestion.
    let report = advisor.prevention_report(&restriction);
    assert_eq!(report.len(), reachable.len());
    for suggestion in &report {
        assert!(!suggestion.matched_conditions.is_empty());
        assert!(suggestion.recommendation.contains("condition"));
    }
}

#[test]
fn prevention_narrower_envelope_eliminates_more_anomalies() {
    let advisor = Advisor::for_subsystem(SubsystemId::F);

    // The design the paper settles on: WRITE-based data path with careful
    // receive-queue sizing and small doorbell batches.
    let tight = SpaceRestriction {
        transports: vec![Transport::Rc],
        opcodes: vec![Opcode::Write],
        max_qps: Some(64),
        max_wqe_batch: Some(16),
        max_sge: Some(2),
        max_recv_queue_depth: Some(256),
        allow_bidirectional: true,
        allow_loopback: false,
        allow_gpu_memory: false,
    };
    let loose = SpaceRestriction::rpc_library();

    let tight_count = advisor.reachable_anomalies(&tight).len();
    let loose_count = advisor.reachable_anomalies(&loose).len();
    assert!(
        tight_count < loose_count,
        "restricting batching/queue depths should remove reachable anomalies \
         ({tight_count} vs {loose_count})"
    );
    // The tightened design avoids the two anomalies the paper calls out.
    let tight_ids: Vec<u32> = advisor
        .reachable_anomalies(&tight)
        .iter()
        .map(|a| a.id)
        .collect();
    assert!(!tight_ids.contains(&4));
    assert!(!tight_ids.contains(&5));
}

#[test]
fn debugging_dml_workload_is_matched_to_anomaly_9_with_a_bypass() {
    // Describe the BytePS-style workload of §2.2: bidirectional RC WRITE,
    // SG lists carrying a tensor plus small metadata, a few QPs per pair.
    let mut workload = SearchPoint::benign();
    workload.transport = Transport::Rc;
    workload.opcode = Opcode::Write;
    workload.bidirectional = true;
    workload.num_qps = 8;
    workload.wqe_batch = 8;
    workload.sge_per_wqe = 3;
    workload.mr_size_bytes = 4 * 1024 * 1024;
    workload.messages = vec![128, 64 * 1024, 1024];

    // It really is anomalous on the simulated subsystem.
    let verdict = collie::assess_workload(SubsystemId::F, &workload);
    assert_eq!(verdict.symptom, Some(Symptom::PauseStorm));

    // The advisor matches it against the catalog and suggests a change.
    let advisor = Advisor::for_subsystem(SubsystemId::F);
    let suggestions = advisor.diagnose(&workload);
    assert!(
        suggestions.iter().any(|s| s.anomaly.starts_with("#9")),
        "expected a #9 match, got {suggestions:?}"
    );

    // Following the suggestion (stop mixing small and large messages in the
    // SG list) makes the workload healthy without waiting for a fix.
    let mut bypassed = workload.clone();
    bypassed.messages = vec![64 * 1024];
    assert!(!collie::assess_workload(SubsystemId::F, &bypassed).is_anomalous());
}

#[test]
fn debugging_with_mfs_discovered_by_a_real_campaign() {
    // Run a short campaign, then hand its MFS set to the advisor the way an
    // operator would after a night of searching.
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let space = SearchSpace::for_host(&SubsystemId::F.host());
    let config = SearchConfig::collie(31).with_budget(SimDuration::from_secs(2 * 3600));
    let outcome = collie::core::search::run_search(&mut engine, &space, &config);
    assert!(!outcome.discoveries.is_empty());

    let discovered: Vec<Mfs> = outcome.discoveries.iter().map(|d| d.mfs.clone()).collect();
    let advisor = Advisor::for_subsystem(SubsystemId::F).with_discovered(discovered);

    // A workload matching one of the discovered MFSes gets a suggestion
    // naming the cheapest condition to break. (Discoveries whose MFS came
    // out empty — compound-overload points — carry no condition to break,
    // so pick one that has conditions.)
    let discovery = outcome
        .discoveries
        .iter()
        .find(|d| !d.mfs.is_empty())
        .expect("at least one discovery with necessary conditions");
    let suggestions = advisor.diagnose(&discovery.point);
    assert!(
        suggestions
            .iter()
            .any(|s| s.anomaly.starts_with("discovered anomaly")),
        "{suggestions:?}"
    );
    assert!(suggestions
        .iter()
        .any(|s| s.recommendation.contains("break the")));
}

#[test]
fn benign_and_out_of_envelope_workloads_produce_no_noise() {
    let advisor = Advisor::for_subsystem(SubsystemId::F);
    assert!(advisor.diagnose(&SearchPoint::benign()).is_empty());

    // A workload on the Broadcom subsystem is not diagnosed against the
    // ConnectX-6 catalog entries for the other vendor's NIC-specific bugs.
    let advisor_h = Advisor::for_subsystem(SubsystemId::H);
    let anomaly1 = KnownAnomaly::by_id(1).unwrap();
    let suggestions = advisor_h.diagnose(&anomaly1.trigger);
    assert!(
        suggestions.iter().all(|s| !s.anomaly.starts_with("#1 ")),
        "subsystem H's advisor should not cite the CX-6-only anomaly #1: {suggestions:?}"
    );
}
