//! Property-based tests for the generic MFS extractor
//! (`collie_core::search::kernel::MfsExtractor`), exercised through both of
//! its domain bindings: the two-host `monitor::MfsExtractor` and the fabric
//! `fabric::FabricMfsExtractor`.
//!
//! Sampled anomalous points are extracted and three invariants asserted:
//!
//! 1. the MFS always matches the anomalous point it was extracted from;
//! 2. a point that fails one of the MFS's necessary conditions never
//!    matches it (conditions are falsifiable, not vacuous);
//! 3. the MFS is never empty when the anomaly has at least one
//!    *distinguishing feature* — a feature for which every value the
//!    extractor would probe (the first two alternatives of a categorical
//!    feature, the ladder ends of a numeric one) changes the observed
//!    symptom. Such a feature must end up as a necessary condition.
//!
//! Seeds come from the PROPTEST_SEED-pinned proptest driver, so a red CI
//! run reproduces locally with the same one-liner.

use collie::core::fabric::{
    assess_fabric, FabricEngine, FabricEvaluator, FabricMfs, FabricMfsExtractor,
};
use collie::core::monitor::ExtractionOutcome;
use collie::core::space::{Feature, FeatureValue};
use collie::prelude::*;
use collie::sim::rng::SimRng;
use collie_core::eval::Evaluator;
use collie_core::monitor::{FeatureCondition, MfsExtractor};
use proptest::prelude::*;

fn space_f() -> SearchSpace {
    SearchSpace::for_host(&SubsystemId::F.host())
}

fn fabric_space_f() -> FabricSpace {
    FabricSpace::for_host(&SubsystemId::F.host())
}

/// A value of `feature` that violates `condition`, if the space offers one.
fn violating_value(
    alternatives: &[FeatureValue],
    condition: &FeatureCondition,
) -> Option<FeatureValue> {
    alternatives
        .iter()
        .find(|value| !condition.admits(value))
        .cloned()
}

/// True if every probe the extractor would run against `feature` changes
/// the symptom away from `symptom` (see module docs): the feature is
/// observably distinguishing within the extractor's probe budget.
fn two_host_distinguishing(
    engine: &mut WorkloadEngine,
    monitor: &AnomalyMonitor,
    point: &SearchPoint,
    symptom: Symptom,
    feature: Feature,
) -> bool {
    let space = space_f();
    let alternatives = space.alternatives(point, feature);
    if alternatives.is_empty() {
        return false;
    }
    let probed: Vec<FeatureValue> = match point.feature_value(feature) {
        FeatureValue::Number(current) => {
            let rungs: Vec<u64> = alternatives
                .iter()
                .filter_map(|v| match v {
                    FeatureValue::Number(n) => Some(*n),
                    _ => None,
                })
                .collect();
            if rungs.is_empty() {
                return false;
            }
            let lowest = *rungs.iter().min().unwrap();
            let highest = *rungs.iter().max().unwrap();
            [lowest.min(current), highest.max(current)]
                .into_iter()
                .filter(|&v| v != current)
                .map(FeatureValue::Number)
                .collect()
        }
        _ => alternatives.into_iter().take(2).collect(),
    };
    if probed.is_empty() {
        return false;
    }
    probed.iter().all(|value| {
        let mut probe = point.clone();
        probe.apply(feature, value);
        let (_, verdict) = monitor.measure_and_assess(engine, &probe);
        verdict.symptom != Some(symptom)
    })
}

fn extract_two_host(point: &SearchPoint) -> Option<(ExtractionOutcome, Symptom)> {
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let monitor = AnomalyMonitor::new();
    let space = space_f();
    let mut evaluator = Evaluator::new(&mut engine);
    let symptom = evaluator.measure_and_assess(&monitor, point).1.symptom?;
    let mut extractor = MfsExtractor::new(&mut evaluator, &monitor, &space);
    Some((extractor.extract(point, symptom), symptom))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn two_host_mfs_contains_its_origin_and_rejects_condition_breakers(seed in any::<u64>()) {
        let space = space_f();
        let mut rng = SimRng::new(seed);
        let point = space.random_point(&mut rng);
        let Some((outcome, _)) = extract_two_host(&point) else {
            // Benign sample: nothing to extract. The anomaly density of the
            // space keeps enough cases meaningful (see the coverage test
            // below).
            return Ok(());
        };
        let mfs = &outcome.mfs;

        // Invariant 1: the originating anomaly point always matches.
        prop_assert!(mfs.matches(&point), "{} does not cover {point}", mfs.describe());

        // Invariant 2: breaking any necessary condition stops the match.
        for (feature, condition) in &mfs.conditions {
            let alternatives = space.alternatives(&point, *feature);
            if let Some(value) = violating_value(&alternatives, condition) {
                let mut broken = point.clone();
                broken.apply(*feature, &value);
                prop_assert!(
                    !mfs.matches(&broken),
                    "{} still matches after breaking {feature} with {value}",
                    mfs.describe()
                );
            }
        }
        prop_assert!(outcome.experiments > 0);
    }

    #[test]
    fn two_host_mfs_is_nonempty_when_a_distinguishing_feature_exists(seed in any::<u64>()) {
        let space = space_f();
        let mut rng = SimRng::new(seed);
        let point = space.random_point(&mut rng);
        let Some((outcome, symptom)) = extract_two_host(&point) else {
            return Ok(());
        };
        if outcome.mfs.is_empty() {
            // An empty MFS claims no feature is necessary; then no feature
            // may be distinguishing within the extractor's probe budget.
            let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
            let monitor = AnomalyMonitor::new();
            for feature in Feature::ALL {
                prop_assert!(
                    !two_host_distinguishing(&mut engine, &monitor, &point, symptom, feature),
                    "empty MFS but {feature} is distinguishing for {point}"
                );
            }
        }
    }

    #[test]
    fn fabric_mfs_contains_its_origin_and_rejects_condition_breakers(seed in any::<u64>()) {
        let space = fabric_space_f();
        let mut rng = SimRng::new(seed);
        let point = space.random_point(&mut rng);
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let verdict = assess_fabric(&monitor, &engine.measure(&point));
        let Some(symptom) = verdict.symptom else {
            return Ok(());
        };
        let mut evaluator = FabricEvaluator::new(&mut engine);
        let mut extractor = FabricMfsExtractor::new(&mut evaluator, &monitor, &space);
        let outcome = extractor.extract(&point, symptom, verdict.cross_host);
        let mfs: &FabricMfs = &outcome.mfs;

        prop_assert!(mfs.matches(&point), "{} does not cover {point}", mfs.describe());
        prop_assert_eq!(mfs.symptom, symptom);
        prop_assert_eq!(mfs.cross_host, verdict.cross_host);

        for (feature, condition) in &mfs.conditions {
            let alternatives = space.alternatives(&point, *feature);
            if let Some(value) = violating_value(&alternatives, condition) {
                let mut broken = point.clone();
                broken.apply(*feature, &value);
                prop_assert!(
                    !mfs.matches(&broken),
                    "{} still matches after breaking {feature} with {value}",
                    mfs.describe()
                );
            }
        }
    }
}

#[test]
fn sampled_spaces_offer_enough_anomalous_points_for_the_properties() {
    // The proptest cases above skip benign samples; this guards against the
    // properties silently running on (almost) nothing if the space or the
    // engine drifts towards benignity.
    let space = space_f();
    let anomalous = (0..48)
        .filter(|&seed| {
            let mut rng = SimRng::new(seed);
            extract_two_host(&space.random_point(&mut rng)).is_some()
        })
        .count();
    assert!(
        anomalous >= 8,
        "only {anomalous}/48 sampled two-host points are anomalous"
    );

    let fabric_space = fabric_space_f();
    let mut engine = FabricEngine::for_catalog(SubsystemId::F);
    let monitor = AnomalyMonitor::new();
    let fabric_anomalous = (0..48)
        .filter(|&seed| {
            let mut rng = SimRng::new(seed);
            let point = fabric_space.random_point(&mut rng);
            assess_fabric(&monitor, &engine.measure(&point)).is_anomalous()
        })
        .count();
    assert!(
        fabric_anomalous >= 8,
        "only {fabric_anomalous}/48 sampled fabric points are anomalous"
    );

    // And at least one sampled extraction carries conditions, so the
    // condition-breaking half of the properties is exercised.
    let with_conditions = (0..48)
        .filter(|&seed| {
            let mut rng = SimRng::new(seed);
            extract_two_host(&space.random_point(&mut rng))
                .map(|(o, _)| !o.mfs.is_empty())
                .unwrap_or(false)
        })
        .count();
    assert!(
        with_conditions >= 4,
        "only {with_conditions} non-empty MFSes"
    );
}
