//! Differential suite for incremental flow-model evaluation.
//!
//! The incremental contract (DESIGN.md §11) is the same shape as the
//! speculation contract: the per-flow and per-direction delta caches are a
//! pure execution optimisation, so a warm incremental engine walking a
//! mutation chain must produce measurements *byte-identical* to a fresh
//! engine evaluating each point from scratch. "Byte-identical" is asserted
//! twice per step — structural equality of the `Measurement` (which
//! compares every f64 exactly) and equality of the canonical JSON
//! encoding, which additionally pins counter names, ordering, and the
//! serialised shape the golden fixtures rely on.
//!
//! The chains are seeded single-knob mutation walks — each point differs
//! from its predecessor in exactly one coordinate — because that is both
//! the access pattern a campaign's proposal stream produces and the
//! adversarial case for delta caching (maximal reuse, so a stale or
//! mis-keyed cache entry has the best chance to leak). Both search domains
//! are covered. Seeds come from the PROPTEST_SEED-pinned proptest driver,
//! so a red CI run reproduces locally with the same one-liner.

use collie::core::fabric::FabricEngine;
use collie::prelude::*;
use collie::sim::rng::SimRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    #[test]
    fn incremental_two_host_chains_match_fresh_engines(
        seed in any::<u64>(),
        steps in 5usize..40,
    ) {
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let mut rng = SimRng::new(seed);
        let mut warm = WorkloadEngine::for_catalog(SubsystemId::F);
        warm.set_incremental(true);

        let mut point = SearchPoint::benign();
        for step in 0..steps {
            point = space.mutate(&point, &mut rng);
            let incremental = warm.measure(&point);
            // The baseline is a fresh engine per point: nothing can carry
            // over, so this is the from-scratch meaning of the measurement.
            let mut fresh = WorkloadEngine::for_catalog(SubsystemId::F);
            let scratch = fresh.measure(&point);
            prop_assert!(
                incremental == scratch,
                "measurement diverged at step {step} (seed {seed}): \
                 incremental {incremental:?}, scratch {scratch:?}"
            );
            let incremental_json = serde_json::to_string(&incremental)
                .expect("measurement serialises");
            let scratch_json = serde_json::to_string(&scratch)
                .expect("measurement serialises");
            prop_assert!(
                incremental_json == scratch_json,
                "serialised measurement diverged at step {step} (seed {seed})"
            );
        }
    }

    #[test]
    fn incremental_fabric_chains_match_fresh_engines(
        seed in any::<u64>(),
        steps in 5usize..40,
    ) {
        let space = FabricSpace::for_host(&SubsystemId::F.host());
        let mut rng = SimRng::new(seed);
        let mut warm = FabricEngine::for_catalog(SubsystemId::F);
        warm.set_incremental(true);

        let mut point = FabricPoint::benign();
        for step in 0..steps {
            point = space.mutate(&point, &mut rng);
            let incremental = warm.measure(&point);
            let mut fresh = FabricEngine::for_catalog(SubsystemId::F);
            let scratch = fresh.measure(&point);
            prop_assert!(
                incremental == scratch,
                "fabric measurement diverged at step {step} (seed {seed}): \
                 incremental {incremental:?}, scratch {scratch:?}"
            );
            let incremental_json = serde_json::to_string(&incremental)
                .expect("fabric measurement serialises");
            let scratch_json = serde_json::to_string(&scratch)
                .expect("fabric measurement serialises");
            prop_assert!(
                incremental_json == scratch_json,
                "serialised fabric measurement diverged at step {step} (seed {seed})"
            );
        }
    }
}
