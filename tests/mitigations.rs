//! Integration test: the documented vendor fixes and workload bypasses.
//!
//! Section 7.1 reports that seven of the eighteen anomalies were fixed
//! after being reported (firmware upgrades or configuration changes), and
//! §7.3 describes how the remaining ones are bypassed by changing the
//! application workload. These tests exercise `collie::core::mitigation`
//! end-to-end against the simulated subsystems.

use collie::prelude::*;

fn verdict_on(engine: &mut WorkloadEngine, point: &SearchPoint) -> AnomalyVerdict {
    let monitor = AnomalyMonitor::new();
    let (_, verdict) = monitor.measure_and_assess(engine, point);
    verdict
}

#[test]
fn the_paper_reports_seven_fixed_anomalies() {
    assert_eq!(
        Mitigation::paper_fixed_anomalies(),
        vec![3, 9, 10, 11, 12, 17, 18]
    );
}

#[test]
fn each_fix_removes_its_own_anomaly() {
    // Per-anomaly check at the ground-truth level: after applying exactly
    // the documented fix for anomaly #N, the concrete trigger no longer
    // maps to rule collie/N. (The same workload may still fall into a
    // *different* anomaly — the #12 trigger is the #9 workload with GPU
    // memory — which is why the end-to-end health check below applies the
    // full remediation set instead.)
    for id in Mitigation::paper_fixed_anomalies() {
        let anomaly = KnownAnomaly::by_id(id).unwrap();
        let plan = RemediationPlan::for_anomaly(&anomaly);
        assert!(plan.has_fix(), "#{id} is reported fixed");

        let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
        assert!(
            verdict_on(&mut engine, &anomaly.trigger).is_anomalous(),
            "#{id} must reproduce before the fix"
        );
        assert!(engine
            .ground_truth(&anomaly.trigger)
            .iter()
            .any(|r| *r == anomaly.rule));

        plan.apply_subsystem_side(engine.subsystem_mut());
        let mut workload = anomaly.trigger.clone();
        plan.apply_workload_side(&mut workload);
        let rules = engine.ground_truth(&workload);
        assert!(
            !rules.iter().any(|r| *r == anomaly.rule),
            "#{id} should no longer map to {} after {:?}, still maps to {rules:?}",
            anomaly.rule,
            plan.mitigations
        );
    }
}

#[test]
fn fully_remediated_subsystem_is_healthy_for_every_fixed_trigger() {
    // Apply every documented fix the way the paper's deployment eventually
    // did (relaxed ordering + ACS + registers + firmware), then replay the
    // seven fixed anomalies with their workload-side adjustments: all of
    // them must be healthy end to end.
    for id in Mitigation::paper_fixed_anomalies() {
        let anomaly = KnownAnomaly::by_id(id).unwrap();
        let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
        for m in Mitigation::ALL {
            if m.counted_as_fixed() {
                m.apply_to_subsystem(engine.subsystem_mut());
            }
        }
        let mut workload = anomaly.trigger.clone();
        for m in Mitigation::for_anomaly(id) {
            m.apply_to_workload(&mut workload);
        }
        let after = verdict_on(&mut engine, &workload);
        assert!(
            !after.is_anomalous(),
            "#{id} should be healthy on a fully remediated subsystem: {after:?}"
        );
    }
}

#[test]
fn fixes_are_targeted_not_global() {
    // Applying the Broadcom register fix must not silence the CX-6
    // anomalies, and vice versa: the relaxed-ordering fix for #9 must not
    // silence the Broadcom #17.
    let anomaly1 = KnownAnomaly::by_id(1).unwrap();
    let mut engine_f = WorkloadEngine::for_catalog(SubsystemId::F);
    Mitigation::VendorRegisterFix.apply_to_subsystem(engine_f.subsystem_mut());
    assert!(
        verdict_on(&mut engine_f, &anomaly1.trigger).is_anomalous(),
        "#1 has no fix; the register fix must not affect it"
    );

    let anomaly17 = KnownAnomaly::by_id(17).unwrap();
    let mut engine_h = WorkloadEngine::for_catalog(SubsystemId::H);
    Mitigation::ForceRelaxedOrdering.apply_to_subsystem(engine_h.subsystem_mut());
    assert!(
        verdict_on(&mut engine_h, &anomaly17.trigger).is_anomalous(),
        "#17 is unaffected by relaxed ordering; only the register fix clears it"
    );
}

#[test]
fn anomaly_9_fix_matches_the_paper_narrative() {
    // The paper's §2.2 war story: bidirectional mixed-size traffic on a
    // strict-ordering AMD platform generated pause storms; configuring the
    // RNIC as a forced relaxed-ordering device fixed it.
    let anomaly = KnownAnomaly::by_id(9).unwrap();
    let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);

    let before = verdict_on(&mut engine, &anomaly.trigger);
    assert_eq!(before.symptom, Some(Symptom::PauseStorm));

    Mitigation::ForceRelaxedOrdering.apply_to_subsystem(engine.subsystem_mut());
    let after = verdict_on(&mut engine, &anomaly.trigger);
    assert!(!after.is_anomalous());
    assert!(
        after.pause_ratio <= 0.001,
        "pause frames should stop once ordering stalls are gone"
    );
}

#[test]
fn anomaly_3_is_fixed_by_raising_the_mtu_not_by_other_knobs() {
    let anomaly = KnownAnomaly::by_id(3).unwrap();
    let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);

    // Subsystem-side mitigations alone do not help (it is a deployment MTU
    // decision).
    let plan = RemediationPlan::for_anomaly(&anomaly);
    plan.apply_subsystem_side(engine.subsystem_mut());
    assert!(verdict_on(&mut engine, &anomaly.trigger).is_anomalous());

    // Raising the MTU does.
    let mut workload = anomaly.trigger.clone();
    Mitigation::RaiseMtu.apply_to_workload(&mut workload);
    assert_eq!(workload.mtu, 4096);
    assert!(!verdict_on(&mut engine, &workload).is_anomalous());
}

#[test]
fn unfixed_anomalies_have_no_remediation_other_than_avoiding_the_mfs() {
    // #1, #2, #4–#8, #14–#16 had no documented fix at publication time.
    for id in [1u32, 2, 4, 5, 6, 7, 8, 14, 15, 16] {
        let anomaly = KnownAnomaly::by_id(id).unwrap();
        let plan = RemediationPlan::for_anomaly(&anomaly);
        assert!(
            plan.mitigations.is_empty(),
            "#{id} should have no documented mitigation, got {:?}",
            plan.mitigations
        );
    }
}

#[test]
fn remediated_subsystem_still_reproduces_unrelated_anomalies() {
    // Applying every subsystem-side fix must leave the unfixed anomalies
    // reproducible — otherwise the simulator would be hiding real problems
    // behind unrelated configuration.
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    for m in Mitigation::ALL {
        m.apply_to_subsystem(engine.subsystem_mut());
    }
    for id in [1u32, 2, 4, 5, 6, 7, 8] {
        let anomaly = KnownAnomaly::by_id(id).unwrap();
        assert!(
            verdict_on(&mut engine, &anomaly.trigger).is_anomalous(),
            "#{id} has no fix and must still reproduce on a fully remediated subsystem"
        );
    }
}

#[test]
fn the_mitigation_loop_closes_end_to_end() {
    // The full §7 loop: a campaign discovers an anomaly, the qualifier
    // verifies the documented mitigation actually clears it, and the
    // verdict survives a trip through the persistent regression catalog.
    let outcome = collie::quick_campaign(SubsystemId::F, 2.0, 11);
    let triggers = outcome.discovered_triggers();
    let discovery = triggers
        .iter()
        .find(|t| t.matched_rules.iter().any(|r| r == "collie/3"))
        .expect("the 2h seed-11 campaign rediscovers anomaly #3");

    let engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let qualifier = Qualifier::for_subsystem(SubsystemId::F);
    let record = qualifier
        .qualify(&engine, &discovery.point, &discovery.matched_rules)
        .expect("the discovery must reproduce on a fresh engine");
    assert_eq!(record.cleared_by, Some(Mitigation::RaiseMtu));
    assert!(record.fixed(), "#3 is fixed by a documented configuration");
    assert_eq!(record.symptom, Symptom::PauseStorm);

    let mut catalog = RegressionCatalog::new();
    catalog.upsert(record.clone());
    let path = std::env::temp_dir().join("collie-mitigation-loop-test.json");
    catalog.save(&path).unwrap();
    let loaded = RegressionCatalog::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, catalog, "the verdict survives disk");
    assert_eq!(loaded.get(&record.identity()), Some(&record));
    assert!(
        loaded.is_known_cleared(&discovery.identity(SubsystemId::F)),
        "a future campaign would skip re-reporting this discovery"
    );
    assert!(loaded.check_regressions().is_empty());

    // Negative half: #4 has no documented mitigation, so its record is an
    // honest "not cleared" that the catalog must never treat as cleared.
    let unfixed = qualifier.qualify_known(&KnownAnomaly::by_id(4).unwrap());
    assert!(!unfixed.cleared());
    let mut catalog = loaded;
    catalog.upsert(unfixed.clone());
    assert!(!catalog.is_known_cleared(&unfixed.identity()));
    assert!(
        catalog.check_regressions().is_empty(),
        "an uncleared record is not a regression"
    );
}

#[test]
fn remediation_descriptions_are_actionable_text() {
    for anomaly in KnownAnomaly::all() {
        let plan = RemediationPlan::for_anomaly(&anomaly);
        for m in &plan.mitigations {
            assert!(m.description().len() > 20, "description too terse: {m}");
            assert!(m.fixes().contains(&anomaly.id));
        }
    }
}
