//! Integration test: the verbs layer over the simulated fabric.
//!
//! Collie's search space is defined entirely in terms of the verbs
//! abstraction (§4, Figure 3), and the workload engine's faithful path sets
//! traffic up through the same calls an application would make:
//! `reg_mr`, `create_qp`, `modify_qp`, `post_send`/`post_recv`, `poll_cq`.
//! These tests drive that surface directly — state machine, capacity
//! limits, completion delivery, and agreement with the flow-level fast
//! path.

use collie::prelude::*;
use collie::sim::units::ByteSize;
use collie::verbs::{
    AccessFlags, CompletionQueue, Fabric, Mtu, QpCaps, QpState, QueuePair, RecvWr, SendWr, Sge,
    VerbsError, WcOpcode, WcStatus, WrOpcode,
};

fn connected_pair(
    fabric: &Fabric,
    transport: Transport,
    mtu: Mtu,
) -> (QueuePair, QueuePair, u32, u32) {
    let ctx_a = fabric.device(0).open();
    let ctx_b = fabric.device(1).open();
    let pd_a = ctx_a.alloc_pd();
    let pd_b = ctx_b.alloc_pd();
    let mr_a = pd_a
        .reg_mr(
            ByteSize::from_kib(256),
            collie::host::memory::MemoryTarget::local_dram(),
            AccessFlags::FULL,
        )
        .unwrap();
    let mr_b = pd_b
        .reg_mr(
            ByteSize::from_kib(256),
            collie::host::memory::MemoryTarget::local_dram(),
            AccessFlags::FULL,
        )
        .unwrap();
    let cq_a = CompletionQueue::new(1024);
    let cq_b = CompletionQueue::new(1024);
    let mut qp_a = QueuePair::create(&pd_a, &cq_a, &cq_a, transport, QpCaps::default()).unwrap();
    let mut qp_b = QueuePair::create(&pd_b, &cq_b, &cq_b, transport, QpCaps::default()).unwrap();
    Fabric::connect(&mut qp_a, &mut qp_b, mtu).unwrap();
    (qp_a, qp_b, mr_a.lkey, mr_b.lkey)
}

#[test]
fn qp_state_machine_follows_reset_init_rtr_rts() {
    let fabric = Fabric::from_catalog(SubsystemId::F);
    let ctx = fabric.device(0).open();
    let pd = ctx.alloc_pd();
    let cq = CompletionQueue::new(16);
    let qp = QueuePair::create(&pd, &cq, &cq, Transport::Rc, QpCaps::default()).unwrap();
    assert_eq!(qp.state(), QpState::Reset);

    // Posting a send before the QP is connected is rejected with the state
    // error an application would get from a real NIC.
    let mut early = qp.clone();
    let err = early
        .post_send(SendWr {
            wr_id: 1,
            opcode: WrOpcode::RdmaWrite,
            sge: vec![Sge::new(1, 0, 64)],
            rkey: 1,
            remote_offset: 0,
            signaled: true,
        })
        .unwrap_err();
    assert!(matches!(err, VerbsError::InvalidQpState { .. }));

    // The full connection handshake lands both QPs in RTS.
    let (qp_a, qp_b, _, _) = connected_pair(&fabric, Transport::Rc, Mtu::Mtu4096);
    assert_eq!(qp_a.state(), QpState::Rts);
    assert_eq!(qp_b.state(), QpState::Rts);
    assert_eq!(qp_a.path_mtu(), Mtu::Mtu4096);
    assert_eq!(qp_a.remote_qp_num(), Some(qp_b.qp_num()));
    assert_eq!(qp_b.remote_host_index(), Some(0));
}

#[test]
fn transport_mismatch_and_zero_depth_are_rejected() {
    let fabric = Fabric::from_catalog(SubsystemId::F);
    let ctx_a = fabric.device(0).open();
    let ctx_b = fabric.device(1).open();
    let pd_a = ctx_a.alloc_pd();
    let pd_b = ctx_b.alloc_pd();
    let cq = CompletionQueue::new(16);

    let mut rc = QueuePair::create(&pd_a, &cq, &cq, Transport::Rc, QpCaps::default()).unwrap();
    let mut ud = QueuePair::create(&pd_b, &cq, &cq, Transport::Ud, QpCaps::default()).unwrap();
    assert!(matches!(
        Fabric::connect(&mut rc, &mut ud, Mtu::Mtu1024).unwrap_err(),
        VerbsError::ConnectionFailed { .. }
    ));

    let bad_caps = QpCaps {
        max_send_wr: 0,
        ..QpCaps::default()
    };
    assert!(matches!(
        QueuePair::create(&pd_a, &cq, &cq, Transport::Rc, bad_caps).unwrap_err(),
        VerbsError::InvalidAttribute { .. }
    ));
}

#[test]
fn invalid_opcode_for_transport_is_rejected_at_post_time() {
    let fabric = Fabric::from_catalog(SubsystemId::F);
    let (mut ud_a, _ud_b, lkey, _) = connected_pair(&fabric, Transport::Ud, Mtu::Mtu2048);
    // UD supports only SEND; READ and WRITE must be rejected.
    for opcode in [WrOpcode::RdmaRead, WrOpcode::RdmaWrite] {
        let err = ud_a
            .post_send(SendWr {
                wr_id: 9,
                opcode,
                sge: vec![Sge::new(lkey, 0, 1024)],
                rkey: 0,
                remote_offset: 0,
                signaled: true,
            })
            .unwrap_err();
        assert!(
            matches!(err, VerbsError::UnsupportedOpcode { .. }),
            "{opcode:?} on UD should be unsupported, got {err:?}"
        );
    }
}

#[test]
fn memory_registration_enforces_size_and_reports_device_limits() {
    let fabric = Fabric::from_catalog(SubsystemId::F);
    let ctx = fabric.device(0).open();
    let pd = ctx.alloc_pd();

    // The paper bounds its search space by the device limits; the simulated
    // device reports the same 20K QP / 200K MR bounds.
    let attr = ctx.query_device();
    assert_eq!(attr.max_qp, 20_000);
    assert_eq!(attr.max_mr, 200_000);
    assert!(ctx.query_port().link_speed.gbps() >= 100.0);

    // Zero-length registrations fail like ibv_reg_mr would.
    assert!(matches!(
        pd.reg_mr(
            ByteSize::ZERO,
            collie::host::memory::MemoryTarget::local_dram(),
            AccessFlags::FULL
        )
        .unwrap_err(),
        VerbsError::RegistrationFailed { .. }
    ));

    // Successful registrations are tracked by the PD.
    let mr = pd
        .reg_mr(
            ByteSize::from_kib(64),
            collie::host::memory::MemoryTarget::local_dram(),
            AccessFlags::FULL,
        )
        .unwrap();
    assert_eq!(pd.mr_count(), 1);
    assert_eq!(pd.pinned_bytes(), ByteSize::from_kib(64));
    assert!(pd.lookup(mr.lkey).is_some());
    pd.dereg_mr(&mr).unwrap();
    assert_eq!(pd.mr_count(), 0);
}

#[test]
fn send_queue_capacity_is_enforced() {
    let fabric = Fabric::from_catalog(SubsystemId::F);
    let ctx_a = fabric.device(0).open();
    let ctx_b = fabric.device(1).open();
    let pd_a = ctx_a.alloc_pd();
    let pd_b = ctx_b.alloc_pd();
    let mr = pd_a
        .reg_mr(
            ByteSize::from_kib(64),
            collie::host::memory::MemoryTarget::local_dram(),
            AccessFlags::FULL,
        )
        .unwrap();
    let cq = CompletionQueue::new(64);
    let caps = QpCaps {
        max_send_wr: 4,
        max_recv_wr: 4,
        max_send_sge: 2,
        max_recv_sge: 2,
    };
    let mut qp_a = QueuePair::create(&pd_a, &cq, &cq, Transport::Rc, caps).unwrap();
    let mut qp_b = QueuePair::create(&pd_b, &cq, &cq, Transport::Rc, caps).unwrap();
    Fabric::connect(&mut qp_a, &mut qp_b, Mtu::Mtu1024).unwrap();

    let wr = |id: u64| SendWr {
        wr_id: id,
        opcode: WrOpcode::RdmaWrite,
        sge: vec![Sge::new(mr.lkey, 0, 4096)],
        rkey: 1,
        remote_offset: 0,
        signaled: true,
    };
    for id in 0..4 {
        qp_a.post_send(wr(id)).unwrap();
    }
    assert!(matches!(
        qp_a.post_send(wr(99)).unwrap_err(),
        VerbsError::QueueFull { .. }
    ));
    assert_eq!(qp_a.pending_send_count(), 4);

    // SG lists beyond the QP capability are rejected too.
    let fat = SendWr {
        wr_id: 100,
        opcode: WrOpcode::RdmaWrite,
        sge: vec![Sge::new(mr.lkey, 0, 64); 3],
        rkey: 1,
        remote_offset: 0,
        signaled: true,
    };
    let mut qp_fresh = QueuePair::create(&pd_a, &cq, &cq, Transport::Rc, caps).unwrap();
    let mut qp_peer = QueuePair::create(&pd_b, &cq, &cq, Transport::Rc, caps).unwrap();
    Fabric::connect(&mut qp_fresh, &mut qp_peer, Mtu::Mtu1024).unwrap();
    assert!(matches!(
        qp_fresh.post_send(fat).unwrap_err(),
        VerbsError::TooManySges { .. }
    ));
}

#[test]
fn running_the_fabric_delivers_completions_and_a_measurement() {
    let mut fabric = Fabric::from_catalog(SubsystemId::F);
    let (mut qp_a, mut qp_b, lkey_a, lkey_b) = connected_pair(&fabric, Transport::Rc, Mtu::Mtu4096);

    // Two-sided exchange: pre-post receives on B, batch sends on A.
    for slot in 0..8u64 {
        qp_b.post_recv(RecvWr {
            wr_id: slot,
            sge: vec![Sge::new(lkey_b, 0, 64 * 1024)],
        })
        .unwrap();
    }
    let batch: Vec<SendWr> = (0..8u64)
        .map(|id| SendWr {
            wr_id: id,
            opcode: WrOpcode::Send,
            sge: vec![Sge::new(lkey_a, 0, 32 * 1024)],
            rkey: 0,
            remote_offset: 0,
            signaled: true,
        })
        .collect();
    qp_a.post_send_batch(batch).unwrap();

    let measurement = fabric.run(&mut [&mut qp_a, &mut qp_b]).unwrap();
    assert!(measurement.total_throughput().gbps() > 0.0);
    assert!(
        measurement.max_pause_ratio() < 0.001,
        "small benign exchange"
    );

    // Send-side completions on A, receive-side completions on B.
    let send_wcs = qp_a.send_cq().poll(64);
    assert_eq!(send_wcs.len(), 8);
    assert!(send_wcs
        .iter()
        .all(|wc| wc.status == WcStatus::Success && wc.opcode == WcOpcode::Send));
    let recv_wcs = qp_b.recv_cq().poll(64);
    assert_eq!(recv_wcs.len(), 8);
    assert!(recv_wcs
        .iter()
        .all(|wc| wc.status == WcStatus::Success && wc.opcode == WcOpcode::Recv));
    assert!(recv_wcs.iter().all(|wc| wc.byte_len == 32 * 1024));

    // Polling again returns nothing: completions are consumed.
    assert!(qp_a.send_cq().poll(64).is_empty());
}

#[test]
fn verbs_traffic_reproduces_an_appendix_a_anomaly() {
    // Build Anomaly #1's workload through the verbs API alone (UD SEND,
    // 64-WQE doorbell batches, 256-deep receive queue) and confirm the
    // fabric measurement shows the pause storm the appendix documents.
    let mut fabric = Fabric::from_catalog(SubsystemId::F);
    let ctx_a = fabric.device(0).open();
    let ctx_b = fabric.device(1).open();
    let pd_a = ctx_a.alloc_pd();
    let pd_b = ctx_b.alloc_pd();
    let mr_a = pd_a
        .reg_mr(
            ByteSize::from_kib(64),
            collie::host::memory::MemoryTarget::local_dram(),
            AccessFlags::FULL,
        )
        .unwrap();
    let mr_b = pd_b
        .reg_mr(
            ByteSize::from_kib(64),
            collie::host::memory::MemoryTarget::local_dram(),
            AccessFlags::FULL,
        )
        .unwrap();
    let caps = QpCaps {
        max_send_wr: 256,
        max_recv_wr: 256,
        max_send_sge: 4,
        max_recv_sge: 4,
    };
    let cq_a = CompletionQueue::new(4096);
    let cq_b = CompletionQueue::new(4096);
    let mut sender = QueuePair::create(&pd_a, &cq_a, &cq_a, Transport::Ud, caps).unwrap();
    let mut receiver = QueuePair::create(&pd_b, &cq_b, &cq_b, Transport::Ud, caps).unwrap();
    Fabric::connect(&mut sender, &mut receiver, Mtu::Mtu2048).unwrap();

    for slot in 0..256u64 {
        receiver
            .post_recv(RecvWr {
                wr_id: slot,
                sge: vec![Sge::new(mr_b.lkey, 0, 2048)],
            })
            .unwrap();
    }
    let batch: Vec<SendWr> = (0..64u64)
        .map(|id| SendWr {
            wr_id: id,
            opcode: WrOpcode::Send,
            sge: vec![Sge::new(mr_a.lkey, 0, 2048)],
            rkey: 0,
            remote_offset: 0,
            signaled: true,
        })
        .collect();
    sender.post_send_batch(batch).unwrap();

    let measurement = fabric.run(&mut [&mut sender, &mut receiver]).unwrap();
    assert!(
        measurement.max_pause_ratio() > 0.001,
        "the UD doorbell-batch workload should produce pause frames, got {:.4}",
        measurement.max_pause_ratio()
    );
}

#[test]
fn derived_workload_groups_identical_qps_into_one_flow() {
    let fabric = Fabric::from_catalog(SubsystemId::F);
    let mut endpoints = Vec::new();
    for _ in 0..4 {
        let (mut a, b, lkey, _) = connected_pair(&fabric, Transport::Rc, Mtu::Mtu4096);
        a.post_send_batch(vec![SendWr {
            wr_id: 0,
            opcode: WrOpcode::RdmaWrite,
            sge: vec![Sge::new(lkey, 0, 65536)],
            rkey: 1,
            remote_offset: 0,
            signaled: true,
        }])
        .unwrap();
        endpoints.push((a, b));
    }
    let mut refs: Vec<&mut QueuePair> = Vec::new();
    for (a, b) in endpoints.iter_mut() {
        refs.push(a);
        refs.push(b);
    }
    let workload = fabric.derive_workload(&refs);
    assert_eq!(workload.flows.len(), 1, "identical QPs group into one flow");
    assert_eq!(workload.flows[0].num_qps, 4);
    assert_eq!(workload.flows[0].transport, Transport::Rc);
    assert_eq!(workload.flows[0].opcode, Opcode::Write);
    assert!(workload.is_valid());
}
