//! Integration test: the counter-guided search end to end (Figures 4–6).
//!
//! These tests run short campaigns (one to three simulated hours instead of
//! the paper's ten) against subsystem F and check the *shape* properties
//! the evaluation section reports:
//!
//! * every strategy respects its time budget and charges the 20–60 s
//!   hardware cost per experiment,
//! * simulated annealing over diagnostic counters (Collie) finds at least
//!   as many distinct catalogued anomalies as the random baseline under the
//!   same budget and seed,
//! * the MFS skip prunes redundant experiments,
//! * the Figure-6 trace is recorded with anomaly markers, and
//! * campaigns are deterministic for a fixed seed.

use collie::prelude::*;

fn subsystem_f_campaign(config: &SearchConfig) -> SearchOutcome {
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let space = SearchSpace::for_host(&SubsystemId::F.host());
    collie::core::search::run_search(&mut engine, &space, config)
}

#[test]
fn every_strategy_respects_its_budget_and_charges_experiment_cost() {
    let budget = SimDuration::from_secs(3600);
    for strategy in [
        SearchStrategy::Random,
        SearchStrategy::Bayesian,
        SearchStrategy::SimulatedAnnealing,
    ] {
        let config = SearchConfig {
            strategy,
            ..SearchConfig::collie(17)
        }
        .with_budget(budget);
        let outcome = subsystem_f_campaign(&config);
        // Budget may be overshot by at most one experiment plus one MFS
        // extraction (an anomaly found just before the deadline is still
        // characterised, exactly as it would be on real hardware).
        assert!(
            outcome.elapsed.as_secs_f64() <= budget.as_secs_f64() + 4500.0,
            "{}: elapsed {} exceeds budget",
            config.label(),
            outcome.elapsed
        );
        // Each experiment costs 20–60 s, so the count is bounded both ways.
        assert!(
            outcome.experiments as f64 >= outcome.elapsed.as_secs_f64() / 60.0 - 1.0,
            "{}: too few experiments for the elapsed time",
            config.label()
        );
        assert!(
            outcome.experiments as f64 <= outcome.elapsed.as_secs_f64() / 20.0 + 1.0,
            "{}: more experiments than the per-experiment cost allows",
            config.label()
        );
    }
}

#[test]
fn collie_finds_at_least_as_many_known_anomalies_as_random() {
    let budget = SimDuration::from_secs(3 * 3600);
    let mut collie_total = 0usize;
    let mut random_total = 0usize;
    for seed in [3u64, 29] {
        let collie_outcome = subsystem_f_campaign(&SearchConfig::collie(seed).with_budget(budget));
        let random_outcome = subsystem_f_campaign(&SearchConfig::random(seed).with_budget(budget));
        collie_total += collie_outcome.distinct_known_anomalies().len();
        random_total += random_outcome.distinct_known_anomalies().len();
    }
    assert!(
        collie_total >= random_total,
        "counter-guided annealing ({collie_total}) should not trail random probing ({random_total})"
    );
    assert!(
        collie_total > 0,
        "Collie must find something in 3 simulated hours"
    );
}

#[test]
fn discovered_mfses_reproduce_and_generalise() {
    let outcome = subsystem_f_campaign(
        &SearchConfig::collie(41).with_budget(SimDuration::from_secs(2 * 3600)),
    );
    assert!(!outcome.discoveries.is_empty());
    for discovery in &outcome.discoveries {
        // The triggering workload itself satisfies its MFS.
        assert!(
            discovery.mfs.matches(&discovery.point),
            "a discovery must match its own MFS: {}",
            discovery.mfs.describe()
        );
        // And the recorded example reproduces the anomaly when re-measured.
        let verdict = collie::assess_workload(SubsystemId::F, &discovery.point);
        assert_eq!(verdict.symptom, Some(discovery.symptom));
    }
}

#[test]
fn mfs_skip_prunes_redundant_experiments() {
    let budget = SimDuration::from_secs(2 * 3600);
    let with_mfs = subsystem_f_campaign(&SearchConfig::collie(7).with_budget(budget));
    let without_mfs =
        subsystem_f_campaign(&SearchConfig::collie(7).with_mfs(false).with_budget(budget));
    assert_eq!(without_mfs.skipped_by_mfs, 0, "the ablation must not skip");
    // With the skip enabled the campaign either skipped something or simply
    // never revisited a known region; both are acceptable, but the counter
    // must only ever be non-zero when the skip is on.
    assert!(with_mfs.skipped_by_mfs >= without_mfs.skipped_by_mfs);
}

#[test]
fn figure6_trace_is_recorded_with_anomaly_markers() {
    let outcome = subsystem_f_campaign(
        &SearchConfig::collie(13).with_budget(SimDuration::from_secs(2 * 3600)),
    );
    assert!(!outcome.trace.is_empty());
    // Every discovery leaves an anomaly marker; repeated sightings of an
    // already-characterised anomaly add markers without adding discoveries.
    assert!(!outcome.trace.anomaly_samples().is_empty());
    assert!(
        outcome.trace.anomaly_samples().len() >= outcome.discoveries.len(),
        "markers ({}) cannot be fewer than discoveries ({})",
        outcome.trace.anomaly_samples().len(),
        outcome.discoveries.len()
    );
    // The normalised trace (what Figure 6 plots) stays within [0, 1].
    let normalized = outcome.trace.normalized();
    assert!(normalized
        .samples()
        .iter()
        .all(|s| (0.0..=1.0).contains(&s.value)));
    // Samples are in non-decreasing time order.
    let samples = outcome.trace.samples();
    assert!(samples.windows(2).all(|w| w[0].at <= w[1].at));
}

#[test]
fn campaigns_are_deterministic_for_a_fixed_seed() {
    let config = SearchConfig::collie(97).with_budget(SimDuration::from_secs(3600));
    let a = subsystem_f_campaign(&config);
    let b = subsystem_f_campaign(&config);
    assert_eq!(a.experiments, b.experiments);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.distinct_known_anomalies(), b.distinct_known_anomalies());
    assert_eq!(a.discoveries.len(), b.discoveries.len());

    // A different seed explores differently.
    let c =
        subsystem_f_campaign(&SearchConfig::collie(98).with_budget(SimDuration::from_secs(3600)));
    assert!(
        c.experiments != a.experiments || c.discoveries.len() != a.discoveries.len(),
        "different seeds should not replay the identical campaign"
    );
}

#[test]
fn milestones_and_time_to_find_are_consistent() {
    let outcome = subsystem_f_campaign(
        &SearchConfig::collie(53).with_budget(SimDuration::from_secs(2 * 3600)),
    );
    let milestones = outcome.milestones();
    // Milestones are monotone in both time and count.
    assert!(milestones
        .windows(2)
        .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    // time_to_find agrees with the milestone list.
    for (at, count) in &milestones {
        let t = outcome.time_to_find(*count).expect("reached this count");
        assert!(
            t <= *at,
            "time_to_find({count}) = {t} should be <= milestone {at}"
        );
    }
    // An unreachable count returns None.
    assert_eq!(outcome.time_to_find(1000), None);
}

#[test]
fn restricted_search_space_stays_inside_the_envelope() {
    // The §7.3 prevention workflow runs the same search over a restricted
    // space; every experiment must stay inside the envelope.
    let restriction = SpaceRestriction::rpc_library();
    let space = SearchSpace::for_host(&SubsystemId::F.host()).restricted(restriction.clone());
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let config = SearchConfig::collie(19).with_budget(SimDuration::from_secs(3600));
    let outcome = collie::core::search::run_search(&mut engine, &space, &config);
    for discovery in &outcome.discoveries {
        assert!(
            restriction.allows(&discovery.point),
            "restricted search left the envelope: {}",
            discovery.point
        );
    }
}
