//! Integration test: behaviour across all eight Table-1 subsystems.
//!
//! The paper evaluates Collie on eight subsystems spanning three RNIC
//! generations, two vendors, Intel and AMD hosts, and 25–200 Gbps links.
//! These tests check the catalog is faithful to Table 1 and that the
//! anomaly surface differs across subsystems the way the paper describes
//! (anomalies found on other subsystems are subsets of those found on F;
//! the Broadcom subsystem has its own family).

use collie::prelude::*;
use collie::rnic::spec::RnicVendor;

#[test]
fn table1_metadata_matches_the_paper() {
    let rows: Vec<_> = SubsystemId::ALL.iter().map(|id| id.info()).collect();
    assert_eq!(rows.len(), 8);

    // Speeds per row (Table 1).
    let speeds: Vec<&str> = rows.iter().map(|r| r.speed.as_str()).collect();
    assert_eq!(
        speeds,
        vec![
            "25 Gbps", "100 Gbps", "100 Gbps", "100 Gbps", "200 Gbps", "200 Gbps", "200 Gbps",
            "100 Gbps"
        ]
    );

    // Vendor split: only H is Broadcom.
    for id in SubsystemId::ALL {
        let vendor = id.rnic_model().vendor();
        if id == SubsystemId::H {
            assert_eq!(vendor, RnicVendor::Broadcom);
        } else {
            assert_eq!(vendor, RnicVendor::Mellanox);
        }
    }

    // GPU column: C, E, F have GPUs.
    for id in SubsystemId::ALL {
        let has_gpu = id.info().gpu != "-";
        assert_eq!(
            has_gpu,
            matches!(id, SubsystemId::C | SubsystemId::E | SubsystemId::F),
            "GPU column mismatch for {id}"
        );
    }

    // PCIe 4.0 only on the 200 Gbps rows.
    for id in SubsystemId::ALL {
        let info = id.info();
        let gen4 = info.pcie.starts_with("4.0");
        assert_eq!(
            gen4,
            info.speed == "200 Gbps",
            "PCIe column mismatch for {id}"
        );
    }
}

#[test]
fn line_rate_traffic_saturates_every_subsystem_without_anomalies() {
    // A Perftest-style large-message WRITE must hit the spec bound on every
    // subsystem (that is how operators verify the spec numbers, §5.2).
    for id in SubsystemId::ALL {
        let mut engine = WorkloadEngine::for_catalog(id);
        let measurement = engine.measure(&SearchPoint::benign());
        let spec_gbps = engine.subsystem().rnic.line_rate.gbps();
        let achieved = measurement.total_throughput().gbps();
        assert!(
            achieved >= 0.8 * spec_gbps,
            "{id}: benign workload reaches only {achieved:.0} of {spec_gbps:.0} Gbps"
        );
        assert!(
            measurement.max_pause_ratio() < 0.001,
            "{id}: unexpected pause frames"
        );
    }
}

#[test]
fn anomalies_found_on_other_mellanox_subsystems_are_subsets_of_f() {
    // §7.1: "We only present those found on subsystem F and H because
    // anomalies found on other subsystems are subsets of those found on F."
    // The catalogued CX-6 triggers that do not depend on platform quirks
    // still reproduce on F; on the slower CX-5 subsystems fewer of them do.
    let f_engine = WorkloadEngine::for_catalog(SubsystemId::F);
    for other in [SubsystemId::B, SubsystemId::D, SubsystemId::E] {
        let other_engine = WorkloadEngine::for_catalog(other);
        for anomaly in KnownAnomaly::for_subsystem(SubsystemId::F) {
            let on_other = other_engine
                .ground_truth(&anomaly.trigger)
                .iter()
                .any(|r| *r == anomaly.rule);
            let on_f = f_engine
                .ground_truth(&anomaly.trigger)
                .iter()
                .any(|r| *r == anomaly.rule);
            assert!(
                !on_other || on_f,
                "anomaly #{} reproduces on {other} but not on F",
                anomaly.id
            );
        }
    }
}

#[test]
fn the_cx5_subsystems_do_not_exhibit_the_cx6_specific_anomalies() {
    // The CX-6-specific rules (#1–#10) are tied to that silicon generation;
    // subsystem B (CX-5) must not reproduce them.
    let engine_b = WorkloadEngine::for_catalog(SubsystemId::B);
    for id in 1u32..=10 {
        let anomaly = KnownAnomaly::by_id(id).unwrap();
        let rules = engine_b.ground_truth(&anomaly.trigger);
        assert!(
            !rules.iter().any(|r| *r == anomaly.rule),
            "CX-6 anomaly #{id} unexpectedly reproduces on the CX-5 subsystem B ({rules:?})"
        );
    }
}

#[test]
fn platform_anomalies_follow_the_platform_not_the_nic() {
    // #11 (cross-socket) requires a chiplet-based host: it reproduces on F
    // (chiplet quirk), but not on the monolithic Intel subsystem B even
    // with the same cross-socket memory placement.
    let anomaly11 = KnownAnomaly::by_id(11).unwrap();
    for (id, expected) in [(SubsystemId::F, true), (SubsystemId::B, false)] {
        let engine = WorkloadEngine::for_catalog(id);
        let reproduces = engine
            .ground_truth(&anomaly11.trigger)
            .iter()
            .any(|r| *r == anomaly11.rule);
        assert_eq!(reproduces, expected, "anomaly #11 on {id}");
    }

    // On the AMD NPS-2 subsystem G the catalogued trigger's NUMA node 1
    // stays on socket 0 (two NUMA domains per socket), so the anomaly only
    // appears once the destination really moves to the remote socket.
    let engine_g = WorkloadEngine::for_catalog(SubsystemId::G);
    assert!(!engine_g
        .ground_truth(&anomaly11.trigger)
        .iter()
        .any(|r| *r == anomaly11.rule));
    let mut cross_socket = anomaly11.trigger.clone();
    cross_socket.dst_memory = collie::host::memory::MemoryTarget::HostDram { numa_node: 2 };
    assert!(engine_g
        .ground_truth(&cross_socket)
        .iter()
        .any(|r| *r == anomaly11.rule));

    // #13 (loopback incast) is NIC-generation independent: it reproduces on
    // the Broadcom subsystem H as well.
    let anomaly13 = KnownAnomaly::by_id(13).unwrap();
    let engine_h = WorkloadEngine::for_catalog(SubsystemId::H);
    assert!(engine_h
        .ground_truth(&anomaly13.trigger)
        .iter()
        .any(|r| *r == anomaly13.rule));
}

#[test]
fn subsystem_speeds_scale_measured_throughput() {
    // The same benign workload measures ~25 Gbps on subsystem A and
    // ~200 Gbps on subsystem F: the spec, not the workload, is the limit.
    let mut engine_a = WorkloadEngine::for_catalog(SubsystemId::A);
    let mut engine_f = WorkloadEngine::for_catalog(SubsystemId::F);
    let a = engine_a
        .measure(&SearchPoint::benign())
        .total_throughput()
        .gbps();
    let f = engine_f
        .measure(&SearchPoint::benign())
        .total_throughput()
        .gbps();
    assert!(a <= 25.0 * 1.001);
    assert!(
        f > 4.0 * a,
        "subsystem F ({f:.0} Gbps) should be far faster than A ({a:.0} Gbps)"
    );
}

#[test]
fn a_short_campaign_runs_on_every_subsystem() {
    // Collie is a tool operators point at whatever subsystem they are
    // qualifying; a short campaign must work on every Table-1 row.
    for id in SubsystemId::ALL {
        let outcome = collie::quick_campaign(id, 0.5, 5);
        assert!(outcome.experiments > 5, "{id}: campaign barely ran");
        assert!(
            outcome.elapsed <= SimDuration::from_secs(3600 + 4500),
            "{id}: budget ignored"
        );
    }
}
