//! Property-based tests for speculative campaign execution.
//!
//! The speculation contract (DESIGN.md §9) is not "usually equal": for any
//! strategy, seed, lookahead depth, budget, and cache mode, a speculative
//! campaign must commit exactly the serial stream. These properties sample
//! that whole configuration space and assert bit-level equality of the
//! public outcome (discoveries, experiments, MFS skips, elapsed time,
//! trace) *and* of the evaluator's cache statistics — the statistics are
//! the leak detector: a mis-speculated draw that touched the campaign's
//! evaluator would show up as an extra hit or miss even if it never
//! changed a discovery. (The measured-point log itself is crate-private;
//! its equality is pinned by the kernel's unit tests.)
//!
//! Seeds come from the PROPTEST_SEED-pinned proptest driver, so a red CI
//! run reproduces locally with the same one-liner.

use collie::core::fabric::{run_fabric_search_with_stats, FabricEngine};
use collie::core::search::run_search_with_stats;
use collie::prelude::*;
use proptest::prelude::*;

const STRATEGIES: [SearchStrategy; 3] = [
    SearchStrategy::Random,
    SearchStrategy::SimulatedAnnealing,
    SearchStrategy::Bayesian,
];

/// A short campaign configuration drawn from the property inputs. The
/// budget stays in the tens of simulated minutes so a proptest case is a
/// real campaign (discoveries, MFS extractions, restarts) without the
/// ten-hour grids' runtime.
fn config(
    strategy_pick: usize,
    seed: u64,
    budget_minutes: u64,
    memoize: bool,
    speculation: Option<usize>,
) -> SearchConfig {
    SearchConfig {
        strategy: STRATEGIES[strategy_pick % STRATEGIES.len()],
        ..SearchConfig::collie(seed)
    }
    .with_budget(SimDuration::from_secs(60 * budget_minutes))
    .with_memoization(memoize)
    .with_speculation(speculation)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn speculative_two_host_campaigns_commit_the_serial_stream(
        seed in any::<u64>(),
        strategy_pick in 0usize..3,
        lookahead in 1usize..9,
        budget_minutes in 10u64..40,
        memoize in any::<bool>(),
    ) {
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let serial_config = config(strategy_pick, seed, budget_minutes, memoize, None);
        let mut serial_engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let serial = run_search_with_stats(&mut serial_engine, &space, &serial_config);
        prop_assert!(
            serial.0.experiments > 0,
            "vacuous case: the serial campaign ran no experiments"
        );

        let spec_config = serial_config.clone().with_speculation(Some(lookahead));
        let mut spec_engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let speculative = run_search_with_stats(&mut spec_engine, &space, &spec_config);

        prop_assert!(
            serial.0 == speculative.0,
            "outcome diverged (strategy {:?}, lookahead {}, memoize {})",
            serial_config.strategy, lookahead, memoize
        );
        prop_assert!(
            serial.1 == speculative.1,
            "mis-speculated work leaked into the evaluator statistics \
             (strategy {:?}, lookahead {}, memoize {}): serial {:?}, speculative {:?}",
            serial_config.strategy, lookahead, memoize, serial.1, speculative.1
        );
    }

    #[test]
    fn speculative_fabric_campaigns_commit_the_serial_stream(
        seed in any::<u64>(),
        strategy_pick in 0usize..3,
        lookahead in 1usize..9,
        budget_minutes in 10u64..40,
        memoize in any::<bool>(),
    ) {
        let space = FabricSpace::for_host(&SubsystemId::F.host());
        let serial_config = config(strategy_pick, seed, budget_minutes, memoize, None);
        let mut serial_engine = FabricEngine::for_catalog(SubsystemId::F);
        let serial = run_fabric_search_with_stats(&mut serial_engine, &space, &serial_config);
        prop_assert!(
            serial.0.experiments > 0,
            "vacuous case: the serial campaign ran no experiments"
        );

        let spec_config = serial_config.clone().with_speculation(Some(lookahead));
        let mut spec_engine = FabricEngine::for_catalog(SubsystemId::F);
        let speculative = run_fabric_search_with_stats(&mut spec_engine, &space, &spec_config);

        prop_assert!(
            serial.0 == speculative.0,
            "outcome diverged (strategy {:?}, lookahead {}, memoize {})",
            serial_config.strategy, lookahead, memoize
        );
        prop_assert!(
            serial.1 == speculative.1,
            "mis-speculated work leaked into the evaluator statistics \
             (strategy {:?}, lookahead {}, memoize {}): serial {:?}, speculative {:?}",
            serial_config.strategy, lookahead, memoize, serial.1, speculative.1
        );
    }
}
