//! Integration: multi-host fabric campaigns end to end.
//!
//! The acceptance property of the fabric layer: a campaign over a fleet of
//! at least three hosts discovers a *cross-host* pause-storm anomaly — the
//! victim-flow gauge breaches the throughput threshold while the culprit
//! host's own throughput stays healthy — extracts its minimal feature set,
//! and the discovery replays deterministically on a fresh engine.

use collie::core::fabric::{assess_fabric, run_fabric_search, FabricEngine};
use collie::core::space::FabricFeature;
use collie::prelude::*;

fn campaign(seed: u64, hours: u64) -> FabricOutcome {
    let mut engine = FabricEngine::for_catalog(SubsystemId::F);
    let space = FabricSpace::for_host(&SubsystemId::F.host());
    let config = SearchConfig::collie(seed).with_budget(SimDuration::from_secs(hours * 3600));
    run_fabric_search(&mut engine, &space, &config)
}

#[test]
fn fabric_campaign_discovers_a_cross_host_pause_storm_and_replays_it() {
    // Seed 5 lands on the cross-host band within 4 simulated hours; the
    // engine is deterministic, so the discovery is pinned.
    let outcome = campaign(5, 4);
    let cross_host = outcome.cross_host_discoveries();
    assert!(
        !cross_host.is_empty(),
        "no cross-host discovery in {} discoveries",
        outcome.discoveries.len()
    );
    let discovery = cross_host[0];

    // The anomaly is the paper's cross-host hallmark: pause frames plus a
    // collapsed victim, on a fleet of at least three hosts, while the
    // culprit still looks healthy from its own seat.
    assert_eq!(discovery.symptom, Symptom::PauseStorm);
    let shape = discovery.point.shape().normalized();
    assert!(shape.host_count >= 3, "{shape:?}");

    // An MFS was extracted and the triggering point satisfies it.
    assert!(!discovery.mfs.is_empty());
    assert!(discovery.mfs.matches(&discovery.point));
    assert!(discovery.mfs.cross_host);

    // Replay on a fresh engine: bit-identical gauges, same verdict.
    let monitor = AnomalyMonitor::new();
    let mut replay_a = FabricEngine::for_catalog(SubsystemId::F);
    let mut replay_b = FabricEngine::for_catalog(SubsystemId::F);
    let measurement_a = replay_a.measure(&discovery.point);
    let measurement_b = replay_b.measure(&discovery.point);
    assert_eq!(
        measurement_a, measurement_b,
        "fabric replay must be bit-identical across engines"
    );
    let verdict = assess_fabric(&monitor, &measurement_a);
    assert_eq!(verdict.symptom, Some(discovery.symptom));
    assert!(verdict.cross_host);
    assert!(verdict.victim_frac < 0.8, "{verdict:?}");
    assert!(verdict.culprit_frac >= 0.8, "{verdict:?}");

    // The MFS names the fabric scale as a necessary condition: on the
    // two-host testbed there is no victim, so the cross-host signature
    // needs the fleet.
    assert!(
        discovery
            .mfs
            .conditions
            .contains_key(&FabricFeature::HostCount),
        "{}",
        discovery.mfs.describe()
    );
    let mut two_host = discovery.point.clone();
    two_host.host_count = 2;
    assert!(!discovery.mfs.matches(&two_host));
}

#[test]
fn fabric_campaigns_respect_budget_and_charge_per_host_setup_cost() {
    let outcome = campaign(9, 1);
    // Budget may be overshot by at most one experiment plus one extraction.
    assert!(outcome.elapsed.as_secs_f64() <= 3600.0 + 5400.0);
    // Fabric experiments cost 20–90 s each.
    assert!(outcome.experiments as f64 >= outcome.elapsed.as_secs_f64() / 90.0 - 1.0);
    assert!(outcome.experiments as f64 <= outcome.elapsed.as_secs_f64() / 20.0 + 1.0);
}

#[test]
fn fabric_discoveries_reproduce_through_the_public_facade() {
    let outcome = campaign(5, 2);
    assert!(!outcome.discoveries.is_empty());
    for discovery in &outcome.discoveries {
        let verdict = collie::assess_fabric_workload(SubsystemId::F, &discovery.point);
        assert_eq!(verdict.symptom, Some(discovery.symptom));
        assert_eq!(verdict.cross_host, discovery.cross_host);
    }
}
