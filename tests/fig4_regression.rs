//! Regression: the empty-MFS dedup fix, pinned end to end.
//!
//! An MFS with no conditions matches every point vacuously; before the
//! `!is_empty()` guard, one degenerate extraction marked every later
//! anomaly a "redundant sighting" and silenced the rest of the campaign —
//! fig4's per-seed discovery counts read 8/4/4 instead of 8/8/8. These
//! tests pin the fixed behaviour on both campaign flavours: the original
//! two-host fig4 grid and the new fabric engine.

use collie::prelude::*;
use collie_bench::{run_campaign_matrix, run_fabric_campaign_matrix, CampaignSpec, DEFAULT_SEEDS};

/// The fig4 Random row: every seed keeps discovering for the whole
/// 10-simulated-hour budget and ends at 8 distinct catalogued anomalies —
/// the value EXPERIMENTS.md records. A seed collapsing back to 4 means the
/// dedup guard regressed.
#[test]
fn fig4_random_per_seed_discovery_counts_stay_at_eight() {
    let config = SearchConfig::random(0);
    let cells: Vec<CampaignSpec> = DEFAULT_SEEDS
        .iter()
        .map(|&seed| CampaignSpec::seeded(SubsystemId::F, &config, seed))
        .collect();
    let matrix = run_campaign_matrix(&cells, cells.len());
    let counts: Vec<usize> = matrix
        .iter()
        .map(|(outcome, _)| outcome.distinct_known_anomalies().len())
        .collect();
    assert_eq!(
        counts,
        vec![8, 8, 8],
        "fig4 Random per-seed counts must stay 8/8/8 (empty-MFS suppression?)"
    );
}

/// The same guarantee under the fabric engine: campaigns keep producing
/// discoveries across their whole budget instead of stalling after the
/// first extraction. (Exact per-seed counts live in EXPERIMENTS.md's
/// fabric grid; this asserts the no-suppression floor.)
#[test]
fn fabric_random_campaigns_keep_discovering_for_the_whole_budget() {
    let config = SearchConfig::random(0);
    let cells: Vec<CampaignSpec> = DEFAULT_SEEDS
        .iter()
        .map(|&seed| CampaignSpec::seeded(SubsystemId::F, &config, seed))
        .collect();
    let matrix = run_fabric_campaign_matrix(&cells, cells.len());
    for (cell, (outcome, _)) in cells.iter().zip(&matrix) {
        assert!(
            outcome.discoveries.len() >= 5,
            "seed {}: only {} fabric discoveries in 10 simulated hours — \
             an early degenerate MFS may be suppressing the campaign",
            cell.config.seed,
            outcome.discoveries.len()
        );
        // Anomalous sightings outnumber discoveries (redundant sightings
        // of characterised anomalies keep being measured and marked).
        assert!(
            outcome.trace.anomaly_samples().len() >= outcome.discoveries.len(),
            "seed {}",
            cell.config.seed
        );
    }
    // The grid as a whole surfaces the cross-host class.
    let cross_host: usize = matrix
        .iter()
        .map(|(o, _)| o.cross_host_discoveries().len())
        .sum();
    assert!(
        cross_host >= 1,
        "the 3-seed fabric grid should contain at least one cross-host discovery"
    );
}
