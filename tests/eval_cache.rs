//! Integration test: the memoized evaluation layer.
//!
//! The acceptance property of the evaluation cache is that it is *free* at
//! the semantics level: a `SearchConfig::collie` campaign on subsystem F
//! with memoization on produces a bit-identical `SearchOutcome` — same
//! discoveries, same milestones, same elapsed simulated time, same trace —
//! as the uncached reference path, while answering a substantial share of
//! its measurements from the cache instead of the flow model.

use collie::prelude::*;
use std::time::Instant;

fn campaign(memoize: bool) -> (SearchOutcome, collie::core::eval::EvalStats, f64) {
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let space = SearchSpace::for_host(&SubsystemId::F.host());
    let config = SearchConfig::collie(17)
        .with_budget(SimDuration::from_secs(2 * 3600))
        .with_memoization(memoize);
    let started = Instant::now();
    let (outcome, stats) =
        collie::core::search::run_search_with_stats(&mut engine, &space, &config);
    (outcome, stats, started.elapsed().as_secs_f64())
}

#[test]
fn memoized_campaign_is_bit_identical_to_the_uncached_path() {
    let (cached, cached_stats, cached_wall) = campaign(true);
    let (uncached, uncached_stats, uncached_wall) = campaign(false);

    // Bit-identical outcome: memoization only skips the flow-model
    // recompute, never the simulated cost accounting or the search path.
    assert_eq!(cached, uncached);

    // The cache did real work: the collie campaign revisits points (the
    // extractor re-measures each anomalous point, annealing re-proposes
    // recent neighbours), so hits must show up...
    assert!(
        cached_stats.hits > 0,
        "memoized campaign never hit the cache: {cached_stats:?}"
    );
    // ...and every hit is one flow-model evaluation the uncached path paid.
    assert_eq!(uncached_stats.hits, 0);
    assert_eq!(
        uncached_stats.misses,
        cached_stats.hits + cached_stats.misses,
        "both paths must issue the same measurement sequence"
    );

    // Wall-clock is logged, not asserted (debug builds and CI noise make a
    // timing assertion flaky); EXPERIMENTS.md records the release numbers.
    eprintln!(
        "eval cache: {} hits / {} misses ({:.0}% hit rate); wall-clock {:.3} s memoized vs {:.3} s uncached",
        cached_stats.hits,
        cached_stats.misses,
        cached_stats.hit_rate() * 100.0,
        cached_wall,
        uncached_wall,
    );
}

/// The PR 6 extension of the same guarantee: routing the memoized
/// evaluator through the sharded concurrent cache (the speculation tier)
/// changes neither the outcome nor the evaluator's statistics. The local
/// per-evaluator cache stays authoritative for hit/miss accounting, so the
/// shared tier is invisible at the semantics level even while worker
/// threads fill it concurrently.
#[test]
fn speculative_campaign_matches_the_serial_memoized_path() {
    let (serial, serial_stats, _) = campaign(true);
    for lookahead in [2usize, 8] {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig::collie(17)
            .with_budget(SimDuration::from_secs(2 * 3600))
            .with_memoization(true)
            .with_speculation(Some(lookahead));
        let (speculative, spec_stats) =
            collie::core::search::run_search_with_stats(&mut engine, &space, &config);
        assert_eq!(serial, speculative, "lookahead {lookahead}");
        assert_eq!(
            serial_stats, spec_stats,
            "the sharded shared cache leaked into the evaluator statistics \
             (lookahead {lookahead})"
        );
    }
}

#[test]
fn memoization_is_on_by_default_for_paper_configs() {
    // The constructor default honours the COLLIE_MEMOIZE override CI uses
    // to run the whole suite uncached, so derive the expectation from the
    // one parser instead of hard-coding `true`.
    let expected = SearchConfig::default_memoize();
    assert_eq!(SearchConfig::collie(1).memoize, expected);
    assert_eq!(SearchConfig::random(1).memoize, expected);
    assert_eq!(SearchConfig::bayesian(1).memoize, expected);
    // Explicit pins always win over the default.
    assert!(!SearchConfig::collie(1).with_memoization(false).memoize);
    assert!(SearchConfig::collie(1).with_memoization(true).memoize);
}

fn fabric_campaign(memoize: bool) -> (FabricOutcome, collie::core::eval::EvalStats) {
    let mut engine = FabricEngine::for_catalog(SubsystemId::F);
    let space = FabricSpace::for_host(&SubsystemId::F.host());
    let config = SearchConfig::collie(17)
        .with_budget(SimDuration::from_secs(2 * 3600))
        .with_memoization(memoize);
    collie::core::fabric::run_fabric_search_with_stats(&mut engine, &space, &config)
}

/// The PR 2 guarantee, extended to the fabric path: a fabric campaign's
/// outcome — discoveries, fabric MFSes, gauges in the trace, elapsed
/// simulated time — is bit-identical with memoization on and off, while
/// the memoized run answers a substantial share of measurements from the
/// cache.
#[test]
fn memoized_fabric_campaign_is_bit_identical_to_the_uncached_path() {
    let (cached, cached_stats) = fabric_campaign(true);
    let (uncached, uncached_stats) = fabric_campaign(false);

    assert_eq!(cached, uncached);

    assert!(
        cached_stats.hits > 0,
        "memoized fabric campaign never hit the cache: {cached_stats:?}"
    );
    assert_eq!(uncached_stats.hits, 0);
    assert_eq!(
        uncached_stats.misses,
        cached_stats.hits + cached_stats.misses,
        "both paths must issue the same measurement sequence"
    );
}

/// Same seed + same point ⇒ bit-identical gauges, memoized or not (the
/// property the whole fabric cache rests on, checked at the single-
/// measurement level across distinct engines).
#[test]
fn fabric_gauges_are_bit_identical_across_engines_and_cache_modes() {
    let space = FabricSpace::for_host(&SubsystemId::F.host());
    let mut rng = collie::sim::rng::SimRng::new(99);
    for _ in 0..10 {
        let point = space.random_point(&mut rng);
        let mut engine_a = FabricEngine::for_catalog(SubsystemId::F);
        let mut engine_b = FabricEngine::for_catalog(SubsystemId::F);
        let mut cached = collie::core::fabric::FabricEvaluator::new(&mut engine_a);
        let mut uncached = collie::core::fabric::FabricEvaluator::uncached(&mut engine_b);
        let a = cached.measure(&point);
        let a_repeat = cached.measure(&point);
        let b = uncached.measure(&point);
        assert_eq!(a, a_repeat, "{point}");
        assert_eq!(a, b, "{point}");
    }
}
