//! Integration test: the memoized evaluation layer.
//!
//! The acceptance property of the evaluation cache is that it is *free* at
//! the semantics level: a `SearchConfig::collie` campaign on subsystem F
//! with memoization on produces a bit-identical `SearchOutcome` — same
//! discoveries, same milestones, same elapsed simulated time, same trace —
//! as the uncached reference path, while answering a substantial share of
//! its measurements from the cache instead of the flow model.

use collie::prelude::*;
use std::time::Instant;

fn campaign(memoize: bool) -> (SearchOutcome, collie::core::eval::EvalStats, f64) {
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let space = SearchSpace::for_host(&SubsystemId::F.host());
    let config = SearchConfig::collie(17)
        .with_budget(SimDuration::from_secs(2 * 3600))
        .with_memoization(memoize);
    let started = Instant::now();
    let (outcome, stats) =
        collie::core::search::run_search_with_stats(&mut engine, &space, &config);
    (outcome, stats, started.elapsed().as_secs_f64())
}

#[test]
fn memoized_campaign_is_bit_identical_to_the_uncached_path() {
    let (cached, cached_stats, cached_wall) = campaign(true);
    let (uncached, uncached_stats, uncached_wall) = campaign(false);

    // Bit-identical outcome: memoization only skips the flow-model
    // recompute, never the simulated cost accounting or the search path.
    assert_eq!(cached, uncached);

    // The cache did real work: the collie campaign revisits points (the
    // extractor re-measures each anomalous point, annealing re-proposes
    // recent neighbours), so hits must show up...
    assert!(
        cached_stats.hits > 0,
        "memoized campaign never hit the cache: {cached_stats:?}"
    );
    // ...and every hit is one flow-model evaluation the uncached path paid.
    assert_eq!(uncached_stats.hits, 0);
    assert_eq!(
        uncached_stats.misses,
        cached_stats.hits + cached_stats.misses,
        "both paths must issue the same measurement sequence"
    );

    // Wall-clock is logged, not asserted (debug builds and CI noise make a
    // timing assertion flaky); EXPERIMENTS.md records the release numbers.
    eprintln!(
        "eval cache: {} hits / {} misses ({:.0}% hit rate); wall-clock {:.3} s memoized vs {:.3} s uncached",
        cached_stats.hits,
        cached_stats.misses,
        cached_stats.hit_rate() * 100.0,
        cached_wall,
        uncached_wall,
    );
}

/// The PR 6 extension of the same guarantee: routing the memoized
/// evaluator through the sharded concurrent cache (the speculation tier)
/// changes neither the outcome nor the evaluator's statistics. The local
/// per-evaluator cache stays authoritative for hit/miss accounting, so the
/// shared tier is invisible at the semantics level even while worker
/// threads fill it concurrently.
#[test]
fn speculative_campaign_matches_the_serial_memoized_path() {
    let (serial, serial_stats, _) = campaign(true);
    for lookahead in [2usize, 8] {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig::collie(17)
            .with_budget(SimDuration::from_secs(2 * 3600))
            .with_memoization(true)
            .with_speculation(Some(lookahead));
        let (speculative, spec_stats) =
            collie::core::search::run_search_with_stats(&mut engine, &space, &config);
        assert_eq!(serial, speculative, "lookahead {lookahead}");
        assert_eq!(
            serial_stats, spec_stats,
            "the sharded shared cache leaked into the evaluator statistics \
             (lookahead {lookahead})"
        );
    }
}

#[test]
fn memoization_is_on_by_default_for_paper_configs() {
    // The constructor default honours the COLLIE_MEMOIZE override CI uses
    // to run the whole suite uncached, so derive the expectation from the
    // one parser instead of hard-coding `true`.
    let expected = SearchConfig::default_memoize();
    assert_eq!(SearchConfig::collie(1).memoize, expected);
    assert_eq!(SearchConfig::random(1).memoize, expected);
    assert_eq!(SearchConfig::bayesian(1).memoize, expected);
    // Explicit pins always win over the default.
    assert!(!SearchConfig::collie(1).with_memoization(false).memoize);
    assert!(SearchConfig::collie(1).with_memoization(true).memoize);
}

fn fabric_campaign(memoize: bool) -> (FabricOutcome, collie::core::eval::EvalStats) {
    let mut engine = FabricEngine::for_catalog(SubsystemId::F);
    let space = FabricSpace::for_host(&SubsystemId::F.host());
    let config = SearchConfig::collie(17)
        .with_budget(SimDuration::from_secs(2 * 3600))
        .with_memoization(memoize);
    collie::core::fabric::run_fabric_search_with_stats(&mut engine, &space, &config)
}

/// The PR 2 guarantee, extended to the fabric path: a fabric campaign's
/// outcome — discoveries, fabric MFSes, gauges in the trace, elapsed
/// simulated time — is bit-identical with memoization on and off, while
/// the memoized run answers a substantial share of measurements from the
/// cache.
#[test]
fn memoized_fabric_campaign_is_bit_identical_to_the_uncached_path() {
    let (cached, cached_stats) = fabric_campaign(true);
    let (uncached, uncached_stats) = fabric_campaign(false);

    assert_eq!(cached, uncached);

    assert!(
        cached_stats.hits > 0,
        "memoized fabric campaign never hit the cache: {cached_stats:?}"
    );
    assert_eq!(uncached_stats.hits, 0);
    assert_eq!(
        uncached_stats.misses,
        cached_stats.hits + cached_stats.misses,
        "both paths must issue the same measurement sequence"
    );
}

/// The PR 7 satellite: the shared cache can be bounded, with deterministic
/// FIFO (publication-order) eviction and exact computed/served/evicted
/// counters — a fleet-size matrix cannot grow the matrix cache without
/// bound, and an evicted key simply recomputes.
#[test]
fn bounded_shared_cache_pins_computed_served_and_evicted_counters() {
    use collie::core::eval::{CacheTotals, SharedCache};
    let cache: SharedCache<u32, u32> = SharedCache::bounded(2);
    // Publish three keys into a two-slot cache: the oldest is evicted.
    for key in [1u32, 2, 3] {
        assert_eq!(*cache.get_or_compute(&key, || key + 100), key + 100);
    }
    assert_eq!(
        cache.totals(),
        CacheTotals {
            computed: 3,
            served: 0,
            evicted: 1
        }
    );
    // Resident keys serve; the evicted key recomputes (and its
    // re-publication evicts the new oldest resident, key 2).
    assert_eq!(*cache.get_or_compute(&3, || unreachable!("resident")), 103);
    assert_eq!(*cache.get_or_compute(&1, || 101), 101);
    assert_eq!(
        cache.totals(),
        CacheTotals {
            computed: 4,
            served: 1,
            evicted: 2
        }
    );
    assert!(cache.peek(&2).is_none());
    assert!(cache.peek(&1).is_some() && cache.peek(&3).is_some());
}

/// The PR 7 tentpole's acceptance property, from the harness's point of
/// view: the same 2-cell matrix run twice — shared matrix cache on and off
/// — produces identical discoveries and MFSes per cell, and the shared run
/// serves strictly more measurements from cache than the per-cell
/// baseline (which, having no shared tier, serves none).
#[test]
fn cross_cell_sharing_preserves_outcomes_and_strictly_raises_served_counts() {
    use collie_bench::{run_campaign_matrix_report, CampaignSpec, MatrixOptions};

    // A repeated-strategy grid: two cells with the same strategy and seed
    // ask for identical point streams, the best case for sharing — and the
    // case where any cross-cell contamination of outcomes would also be
    // most visible. The execution mode is pinned (not the constructor
    // defaults): memoization on, because sharing rides on the local cache
    // (the served>0 assertion must hold under the COLLIE_MEMOIZE=0 CI leg),
    // and speculation off, because lookahead workers publish into a
    // campaign-private shared cache even with matrix sharing off, which
    // would make the baseline's zero-shared-use assertion timing-dependent
    // (the speculation × sharing interplay is pinned by the golden replay
    // suite instead).
    let config = SearchConfig::collie(17)
        .with_budget(SimDuration::from_secs(2 * 3600))
        .with_memoization(true)
        .with_speculation(None);
    let cells = [
        CampaignSpec::seeded(SubsystemId::F, &config, 17),
        CampaignSpec::seeded(SubsystemId::F, &config, 17),
    ];
    let shared = run_campaign_matrix_report(&cells, &MatrixOptions::new(2));
    let solo = run_campaign_matrix_report(&cells, &MatrixOptions::new(2).without_shared_cache());

    for (with, without) in shared.cells.iter().zip(&solo.cells) {
        assert_eq!(
            with.outcome.discoveries, without.outcome.discoveries,
            "sharing changed the discoveries"
        );
        assert_eq!(with.outcome, without.outcome, "sharing changed the outcome");
        assert_eq!(with.stats, without.stats, "sharing leaked into EvalStats");
        // The per-cell baseline has no shared tier at all.
        assert_eq!(without.shared.computed + without.shared.served, 0);
    }
    // Per-cell computed/served splits depend on thread timing, but the
    // sums are bounded below deterministically: every local miss asks the
    // shared cache, so the matrix totals must cover the cells' asks. (Under
    // COLLIE_SPECULATION the lookahead workers also publish and wait on the
    // same cache, so the totals can legitimately exceed the cells' own
    // counters — hence >=, not ==.)
    let served: u64 = shared.cells.iter().map(|cell| cell.shared.served).sum();
    let asks: u64 = shared
        .cells
        .iter()
        .map(|cell| cell.shared.computed + cell.shared.served)
        .sum();
    assert!(served > 0, "twin cells shared nothing: {:?}", shared.cache);
    assert!(shared.cache.computed + shared.cache.served >= asks);
    assert!(shared.cache.served >= served);
    eprintln!(
        "cross-cell sharing: {} of {asks} shared-cache asks served by a sibling's compute \
         (totals {:?})",
        served, shared.cache
    );
}

/// Same seed + same point ⇒ bit-identical gauges, memoized or not (the
/// property the whole fabric cache rests on, checked at the single-
/// measurement level across distinct engines).
#[test]
fn fabric_gauges_are_bit_identical_across_engines_and_cache_modes() {
    let space = FabricSpace::for_host(&SubsystemId::F.host());
    let mut rng = collie::sim::rng::SimRng::new(99);
    for _ in 0..10 {
        let point = space.random_point(&mut rng);
        let mut engine_a = FabricEngine::for_catalog(SubsystemId::F);
        let mut engine_b = FabricEngine::for_catalog(SubsystemId::F);
        let mut cached = collie::core::fabric::FabricEvaluator::new(&mut engine_a);
        let mut uncached = collie::core::fabric::FabricEvaluator::uncached(&mut engine_b);
        let a = cached.measure(&point);
        let a_repeat = cached.measure(&point);
        let b = uncached.measure(&point);
        assert_eq!(a, a_repeat, "{point}");
        assert_eq!(a, b, "{point}");
    }
}
