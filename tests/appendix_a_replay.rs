//! Integration test: replay every Appendix-A concrete trigger setting.
//!
//! Table 2 / Appendix A of the paper list eighteen anomalies together with
//! a simplified concrete workload that reproduces each one. These tests
//! drive the full stack — search-point → workload engine → subsystem model
//! → anomaly monitor — and check that:
//!
//! * every concrete trigger reproduces the documented symptom on its
//!   documented subsystem (the Table-2 "Symptom" column),
//! * breaking a necessary condition makes the anomaly disappear (which is
//!   what makes the MFS of §5.2 meaningful), and
//! * the three "old" anomalies and the fifteen new ones are partitioned the
//!   way the paper reports.

use collie::prelude::*;

fn assess(subsystem: SubsystemId, point: &SearchPoint) -> AnomalyVerdict {
    collie::assess_workload(subsystem, point)
}

#[test]
fn all_eighteen_triggers_reproduce_their_symptom() {
    for anomaly in KnownAnomaly::all() {
        let verdict = assess(anomaly.subsystem, &anomaly.trigger);
        assert_eq!(
            verdict.symptom,
            Some(anomaly.symptom),
            "anomaly #{} on subsystem {}: expected {:?}, observed {:?} \
             (pause ratio {:.4}, spec fraction {:.2})",
            anomaly.id,
            anomaly.subsystem,
            anomaly.symptom,
            verdict.symptom,
            verdict.pause_ratio,
            verdict.spec_fraction
        );
    }
}

#[test]
fn pause_storm_anomalies_exceed_the_pause_threshold_low_throughput_ones_do_not() {
    for anomaly in KnownAnomaly::all() {
        let verdict = assess(anomaly.subsystem, &anomaly.trigger);
        match anomaly.symptom {
            Symptom::PauseStorm => {
                assert!(
                    verdict.pause_ratio > 0.001,
                    "#{}: pause storm should exceed the 0.1% threshold, got {:.5}",
                    anomaly.id,
                    verdict.pause_ratio
                );
            }
            Symptom::LowThroughput => {
                assert!(
                    verdict.pause_ratio <= 0.001,
                    "#{}: low-throughput anomalies must not emit pause frames, got {:.5}",
                    anomaly.id,
                    verdict.pause_ratio
                );
                assert!(
                    verdict.spec_fraction < 0.8,
                    "#{}: throughput should sit >20% below spec, got {:.2}",
                    anomaly.id,
                    verdict.spec_fraction
                );
            }
        }
    }
}

#[test]
fn the_ground_truth_oracle_matches_each_trigger_to_its_rule() {
    for anomaly in KnownAnomaly::all() {
        let engine = WorkloadEngine::for_catalog(anomaly.subsystem);
        let rules = engine.ground_truth(&anomaly.trigger);
        assert!(
            rules.iter().any(|r| *r == anomaly.rule),
            "anomaly #{}: ground truth {:?} does not contain {}",
            anomaly.id,
            rules,
            anomaly.rule
        );
    }
}

#[test]
fn old_and_new_anomalies_are_partitioned_as_in_the_paper() {
    let all = KnownAnomaly::all();
    assert_eq!(all.len(), 18, "Table 2 lists 18 anomalies");
    let old: Vec<u32> = all.iter().filter(|a| !a.new).map(|a| a.id).collect();
    let new_count = all.iter().filter(|a| a.new).count();
    assert_eq!(old, vec![9, 12, 13], "three previously known anomalies");
    assert_eq!(new_count, 15, "fifteen anomalies newly found by Collie");
    // Subsystem split: #1–#13 on F (ConnectX-6), #14–#18 on H (P2100G).
    assert!(all
        .iter()
        .all(|a| (a.id <= 13) == (a.subsystem == SubsystemId::F)));
    assert!(all
        .iter()
        .all(|a| (a.id >= 14) == (a.subsystem == SubsystemId::H)));
}

/// For a selection of anomalies whose Table-2 row names a specific
/// necessary condition, breaking that condition alone must make the
/// anomaly disappear.
#[test]
fn breaking_a_documented_necessary_condition_untriggers_the_anomaly() {
    /// A mutation that breaks one necessary condition of an anomaly.
    type ConditionBreaker = Box<dyn Fn(&mut SearchPoint)>;
    // (anomaly id, mutation that breaks one necessary condition)
    let break_one: Vec<(u32, ConditionBreaker)> = vec![
        // #1: WQE batch >= 64 is necessary.
        (1, Box::new(|p: &mut SearchPoint| p.wqe_batch = 4)),
        // #2: work queue >= 1024 is necessary.
        (2, Box::new(|p: &mut SearchPoint| p.recv_queue_depth = 128)),
        // #3: MTU <= 1024 is necessary (the documented fix raises it).
        (3, Box::new(|p: &mut SearchPoint| p.mtu = 4096)),
        // #4: bidirectional traffic is necessary.
        (4, Box::new(|p: &mut SearchPoint| p.bidirectional = false)),
        // #5: message sizes in 2KB..8KB are necessary.
        (
            5,
            Box::new(|p: &mut SearchPoint| p.messages = vec![64 * 1024]),
        ),
        // #6: >= ~32 QPs are necessary.
        (6, Box::new(|p: &mut SearchPoint| p.num_qps = 2)),
        // #7: >= ~480 QPs are necessary.
        (7, Box::new(|p: &mut SearchPoint| p.num_qps = 16)),
        // #8: >= ~12K MRs are necessary.
        (8, Box::new(|p: &mut SearchPoint| p.mrs_per_qp = 1)),
        // #9: the small/large message mix is necessary.
        (
            9,
            Box::new(|p: &mut SearchPoint| p.messages = vec![64 * 1024]),
        ),
        // #10: WQE batch >= 64 is necessary.
        (10, Box::new(|p: &mut SearchPoint| p.wqe_batch = 8)),
        // #11: the cross-socket memory placement is necessary.
        (
            11,
            Box::new(|p: &mut SearchPoint| {
                p.dst_memory = collie::host::memory::MemoryTarget::local_dram()
            }),
        ),
        // #12: GPU memory is necessary.
        (
            12,
            Box::new(|p: &mut SearchPoint| {
                p.src_memory = collie::host::memory::MemoryTarget::local_dram();
                p.dst_memory = collie::host::memory::MemoryTarget::local_dram();
            }),
        ),
        // #13: the loopback flow is necessary.
        (13, Box::new(|p: &mut SearchPoint| p.with_loopback = false)),
        // #14: the large MTU is necessary (unusually, lowering it fixes it).
        (14, Box::new(|p: &mut SearchPoint| p.mtu = 1024)),
        // #15: >= ~32 QPs are necessary.
        (15, Box::new(|p: &mut SearchPoint| p.num_qps = 4)),
        // #16: the small MTU is necessary.
        (16, Box::new(|p: &mut SearchPoint| p.mtu = 4096)),
        // #17: messages <= 1KB are necessary.
        (
            17,
            Box::new(|p: &mut SearchPoint| p.messages = vec![256 * 1024]),
        ),
        // #18: bidirectional traffic is necessary.
        (18, Box::new(|p: &mut SearchPoint| p.bidirectional = false)),
    ];
    assert_eq!(break_one.len(), 18);

    for (id, break_condition) in break_one {
        let anomaly = KnownAnomaly::by_id(id).unwrap();
        let verdict = assess(anomaly.subsystem, &anomaly.trigger);
        assert!(
            verdict.is_anomalous(),
            "#{id} must trigger before the break"
        );

        let mut broken = anomaly.trigger.clone();
        break_condition(&mut broken);

        // The broken workload no longer maps to this anomaly.
        let engine = WorkloadEngine::for_catalog(anomaly.subsystem);
        let rules = engine.ground_truth(&broken);
        assert!(
            !rules.iter().any(|r| *r == anomaly.rule),
            "#{id}: breaking a necessary condition should stop the workload from \
             mapping to {} (still maps to {rules:?})",
            anomaly.rule
        );

        // When it maps to no catalogued anomaly at all, the end-to-end
        // symptom disappears too. (A broken trigger may still fall inside a
        // *different* anomaly — e.g. removing GPU memory from the #12
        // trigger leaves exactly the #9 workload — in which case the
        // subsystem legitimately stays anomalous.)
        if rules.is_empty() {
            let verdict = assess(anomaly.subsystem, &broken);
            assert_ne!(
                verdict.symptom,
                Some(anomaly.symptom),
                "#{id}: no catalogued anomaly applies, yet the symptom persists \
                 (pause {:.4}, spec {:.2})",
                verdict.pause_ratio,
                verdict.spec_fraction
            );
        }
    }
}

/// The anomalies are subsystem-specific: the Broadcom triggers do not
/// reproduce on the ConnectX-6 subsystem and vice versa (with the exception
/// of the host-topology anomalies #11–#13, which the paper attributes to
/// the platform rather than the NIC, and generic overload cases).
#[test]
fn nic_specific_triggers_do_not_cross_vendors() {
    // Broadcom register-fix anomalies are NIC-specific.
    for id in [17u32, 18] {
        let anomaly = KnownAnomaly::by_id(id).unwrap();
        let engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let rules = engine.ground_truth(&anomaly.trigger);
        assert!(
            !rules.iter().any(|r| *r == anomaly.rule),
            "#{id} is a Broadcom anomaly and must not map to the same rule on subsystem F"
        );
    }
    // The CX-6 UD pause storm (#1) does not map to the same rule on the
    // Broadcom subsystem.
    let anomaly1 = KnownAnomaly::by_id(1).unwrap();
    let engine_h = WorkloadEngine::for_catalog(SubsystemId::H);
    let rules = engine_h.ground_truth(&anomaly1.trigger);
    assert!(!rules.iter().any(|r| *r == anomaly1.rule));
}

/// A benign Perftest-style workload stays healthy on every subsystem of
/// Table 1 — the anomaly definition must not flag ordinary traffic.
#[test]
fn benign_workload_is_healthy_on_every_table1_subsystem() {
    for id in SubsystemId::ALL {
        let verdict = assess(id, &SearchPoint::benign());
        assert!(
            !verdict.is_anomalous(),
            "benign workload flagged on subsystem {id}: {verdict:?}"
        );
    }
}
