//! Quickstart: point Collie at a subsystem and let it hunt.
//!
//! This is the "operator about to deploy new hardware" flow: build the
//! subsystem under test (here the paper's subsystem F — a 200 Gbps
//! ConnectX-6 class NIC in a GPU server), give Collie a testing budget, and
//! read the report: which anomalous workloads were found, what their
//! symptoms are, and which minimal feature set reproduces each one.
//!
//! Run with: `cargo run --example quickstart`

use collie::prelude::*;

fn main() {
    let subsystem = SubsystemId::F;
    println!(
        "Collie quickstart on subsystem {subsystem} ({})",
        subsystem.info().rnic
    );
    println!(
        "Search space: ~1e{:.0} nominal workloads\n",
        SearchSpace::for_host(&subsystem.host())
            .nominal_cardinality()
            .log10()
    );

    // Two simulated hours of testing (each experiment costs 20-60 s of
    // simulated hardware time, exactly like the paper's setup).
    let outcome = collie::quick_campaign(subsystem, 2.0, 42);

    println!(
        "Ran {} experiments in {:.1} simulated minutes ({} skipped as redundant by MFS matching).",
        outcome.experiments,
        outcome.elapsed.as_secs_f64() / 60.0,
        outcome.skipped_by_mfs
    );
    println!(
        "Discovered {} anomalous workloads covering {} distinct catalogued anomalies.\n",
        outcome.discoveries.len(),
        outcome.distinct_known_anomalies().len()
    );

    for (i, discovery) in outcome.discoveries.iter().enumerate() {
        println!(
            "#{:<2} at {:>6.1} min  [{}]  {}",
            i + 1,
            discovery.at.as_secs_f64() / 60.0,
            discovery.symptom,
            discovery.point
        );
        println!("     minimal feature set: {}", discovery.mfs.describe());
        if !discovery.matched_rules.is_empty() {
            println!(
                "     matches paper anomaly rule(s): {}",
                discovery.matched_rules.join(", ")
            );
        }
        println!();
    }

    // Every discovery's example still reproduces — the MFS is actionable.
    let monitor = AnomalyMonitor::new();
    let mut engine = WorkloadEngine::for_catalog(subsystem);
    let confirmed = outcome
        .discoveries
        .iter()
        .filter(|d| {
            let (_, verdict) = monitor.measure_and_assess(&mut engine, &d.point);
            verdict.is_anomalous()
        })
        .count();
    println!(
        "{confirmed}/{} discoveries re-confirmed on replay.",
        outcome.discoveries.len()
    );
}
