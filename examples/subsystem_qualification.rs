//! Qualify new hardware before deployment by comparing anomaly surfaces.
//!
//! The paper's motivation (§1, §2.2): integration testing has to be done by
//! the data-center operator, per subsystem, before the hardware carries
//! production traffic — vendor unit tests cannot see the interactions. This
//! example plays that role for two candidate 200 Gbps platforms (the
//! paper's subsystems E and F) plus the Broadcom alternative (H): run the
//! same Collie budget against each, then compare what was found, how fast,
//! and what an application team would have to avoid on each platform.
//!
//! Run with: `cargo run --example subsystem_qualification`

use collie::prelude::*;
use std::collections::BTreeSet;

struct Qualification {
    subsystem: SubsystemId,
    outcome: SearchOutcome,
}

fn qualify(subsystem: SubsystemId, budget_hours: f64, seed: u64) -> Qualification {
    let outcome = collie::quick_campaign(subsystem, budget_hours, seed);
    Qualification { subsystem, outcome }
}

fn main() {
    let budget_hours = 3.0;
    let seed = 7;
    let candidates = [SubsystemId::E, SubsystemId::F, SubsystemId::H];

    println!(
        "Qualifying {} candidate subsystems with {budget_hours} simulated hours each:\n",
        candidates.len()
    );

    let reports: Vec<Qualification> = candidates
        .iter()
        .map(|&id| qualify(id, budget_hours, seed))
        .collect();

    println!(
        "{:<4} {:<10} {:<12} {:>12} {:>10} {:>12} {:>14}",
        "sub", "RNIC", "speed", "experiments", "skipped", "discoveries", "known anomalies"
    );
    for report in &reports {
        let info = report.subsystem.info();
        println!(
            "{:<4} {:<10} {:<12} {:>12} {:>10} {:>12} {:>14}",
            report.subsystem.to_string(),
            info.rnic,
            info.speed,
            report.outcome.experiments,
            report.outcome.skipped_by_mfs,
            report.outcome.discoveries.len(),
            report.outcome.distinct_known_anomalies().len()
        );
    }

    // What does each platform expose that the others do not?
    println!("\nAnomaly surface comparison (catalogued rules hit per subsystem):");
    let sets: Vec<(SubsystemId, BTreeSet<String>)> = reports
        .iter()
        .map(|r| (r.subsystem, r.outcome.distinct_known_anomalies()))
        .collect();
    for (id, rules) in &sets {
        let unique: Vec<&String> = rules
            .iter()
            .filter(|r| {
                sets.iter()
                    .filter(|(o, s)| o != id && s.contains(*r))
                    .count()
                    == 0
            })
            .collect();
        println!(
            "  {id}: {} rules ({} unique to this platform)",
            rules.len(),
            unique.len()
        );
        for rule in rules {
            let marker = if unique.contains(&rule) { "*" } else { " " };
            println!("     {marker} {rule}");
        }
    }

    // Which platform lets the flagship application ship sooner? Check the
    // reachable anomalies under the application's envelope and whether each
    // has a documented fix.
    println!("\nFlagship application envelope (RC-only RPC library) per platform:");
    let restriction = SpaceRestriction::rpc_library();
    for report in &reports {
        let advisor = Advisor::for_subsystem(report.subsystem);
        let reachable = advisor.reachable_anomalies(&restriction);
        let fixed: usize = reachable
            .iter()
            .filter(|a| RemediationPlan::for_anomaly(a).has_fix())
            .count();
        println!(
            "  {}: {} reachable anomalies, {} of them already have a vendor fix",
            report.subsystem,
            reachable.len(),
            fixed
        );
        for anomaly in reachable {
            let plan = RemediationPlan::for_anomaly(anomaly);
            println!(
                "     #{:<2} {:<16} {}",
                anomaly.id,
                format!("({})", anomaly.symptom),
                if plan.has_fix() {
                    "fix available"
                } else {
                    "must be designed around"
                }
            );
        }
    }

    // Time-to-first-find is the operational question: how long does the
    // qualification run need to be before it starts paying off?
    println!("\nTime to the first three distinct catalogued anomalies (simulated minutes):");
    for report in &reports {
        let times: Vec<String> = (1..=3)
            .map(|n| match report.outcome.time_to_find(n) {
                Some(t) => format!("{:.0}", t.as_secs_f64() / 60.0),
                None => "-".to_string(),
            })
            .collect();
        println!("  {}: {}", report.subsystem, times.join(" / "));
    }
}
