//! §7.3 case study 1: designing an RDMA RPC library around the anomalies.
//!
//! The paper's team was building a CPU-efficient RPC library that would use
//! only Reliable Connections (RC) and run on subsystems B/C and later F.
//! Before writing code they restricted Collie's search space to the
//! workloads the library could possibly generate and asked which anomalies
//! were still reachable — Collie pointed at the bidirectional READ anomaly
//! (#4) and the RC SEND receive-queue anomaly (#5), and the library was
//! designed to (1) move bulk data with WRITE batches instead of READ and
//! (2) size its SEND/RECV control-message receive queues carefully.
//!
//! Run with: `cargo run --example rpc_library_design`

use collie::core::advisor::Advisor;
use collie::prelude::*;

fn main() {
    let subsystem = SubsystemId::F;

    // The envelope the RPC library's developers can guarantee: RC only, no
    // GPU memory, no collocated loopback peers, at most a few hundred
    // connections per host.
    let envelope = SpaceRestriction::rpc_library();
    println!("RPC library design review on subsystem {subsystem}");
    println!(
        "Envelope: RC transport only, <= {} QPs, no GPU memory, no loopback.\n",
        envelope.max_qps.unwrap_or(0)
    );

    // Step 1: which catalogued anomalies are still reachable inside the
    // envelope? (The "anomaly prevention" workflow.)
    let advisor = Advisor::for_subsystem(subsystem);
    let report = advisor.prevention_report(&envelope);
    println!("Reachable anomalies within the envelope: {}", report.len());
    for suggestion in &report {
        println!(
            "  {} — conditions: {}",
            suggestion.anomaly,
            suggestion.matched_conditions.join("; ")
        );
    }

    // Step 2: run a restricted search campaign to confirm the reachable set
    // empirically — this is what "run Collie over the restricted space"
    // means in the paper.
    let mut engine = WorkloadEngine::for_catalog(subsystem);
    let space = SearchSpace::for_host(&subsystem.host()).restricted(envelope);
    let config = SearchConfig::collie(7).with_budget(SimDuration::from_secs(2 * 3600));
    let outcome = run_search(&mut engine, &space, &config);
    println!(
        "\nRestricted search: {} experiments, {} anomalous workloads found, rules hit: {:?}",
        outcome.experiments,
        outcome.discoveries.len(),
        outcome.distinct_known_anomalies()
    );

    // Step 3: turn the findings into design guidance, mirroring the paper's
    // two concrete suggestions.
    println!("\nDesign guidance for the RPC library:");
    println!("  * Bulk data path: avoid bidirectional RC READ with large WQE batches and long SG");
    println!("    lists (anomaly #4) — use RDMA WRITE batches for data transmission instead.");
    println!("  * Control path: SEND/RECV for small control messages is fine, but do not");
    println!("    configure extremely deep receive queues by default (anomaly #5) — size the");
    println!("    receive queue to the expected in-flight control-message count.");

    // Step 4: sanity-check the guidance: the WRITE-based bulk path the
    // library shipped with does not trigger anything.
    let mut write_based_bulk = SearchPoint::benign();
    write_based_bulk.opcode = Opcode::Write;
    write_based_bulk.bidirectional = true;
    write_based_bulk.num_qps = 64;
    write_based_bulk.wqe_batch = 32;
    write_based_bulk.messages = vec![64 * 1024];
    let verdict = collie::assess_workload(subsystem, &write_based_bulk);
    println!(
        "\nShipped design check (bidirectional WRITE batches, 64 QPs): anomalous = {}",
        verdict.is_anomalous()
    );
}
