//! Replay a catalogued anomaly and inspect everything Collie knows about it.
//!
//! This is the "vendor escalation" flow from §7.1: once Collie has found an
//! anomaly, the operator replays its concrete trigger setting, captures the
//! measurement and the hardware counters, extracts the minimal feature set,
//! and attaches the documented remediation plan to the ticket.
//!
//! Run with: `cargo run --example anomaly_replay -- <anomaly-number>`
//! (defaults to anomaly #4, the bidirectional RC READ pause storm).

use collie::core::monitor::MfsExtractor;
use collie::prelude::*;
use collie::rnic::counters::{diag, perf};

fn main() {
    let id: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let Some(anomaly) = KnownAnomaly::by_id(id) else {
        eprintln!("anomaly #{id} is not in the Table-2 catalog (valid ids: 1-18)");
        std::process::exit(1);
    };

    println!(
        "Anomaly #{} ({}) on subsystem {} — {}",
        anomaly.id,
        if anomaly.new {
            "new, found by Collie"
        } else {
            "previously known"
        },
        anomaly.subsystem,
        anomaly.symptom,
    );
    println!("Table-2 conditions: {}", anomaly.conditions.join("; "));
    println!("Concrete trigger:   {}\n", anomaly.trigger);

    // --- Replay the trigger and report what the monitor sees. -------------
    let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
    let monitor = AnomalyMonitor::new();
    let (measurement, verdict) = monitor.measure_and_assess(&mut engine, &anomaly.trigger);

    println!(
        "Measurement over a {}-second window:",
        measurement.window.as_secs_f64()
    );
    for dir in &measurement.directions {
        println!(
            "  {:<12} offered {:>8.1} Gbps   achieved {:>8.1} Gbps   {:>7.2} Mpps",
            dir.direction.to_string(),
            dir.offered.gbps(),
            dir.throughput.gbps(),
            dir.packet_rate.mpps()
        );
    }
    println!(
        "  pause-duration ratio: host A {:.2}%  host B {:.2}%",
        measurement.pause_ratio[0] * 100.0,
        measurement.pause_ratio[1] * 100.0
    );
    println!(
        "  verdict: {}  (best spec fraction {:.0}%)\n",
        verdict
            .symptom
            .map(|s| s.to_string())
            .unwrap_or_else(|| "healthy".to_string()),
        verdict.spec_fraction * 100.0
    );

    println!("Hardware counters (what the vendor monitor would show):");
    for name in perf::ALL {
        if let Some(value) = measurement.counters.value(name) {
            println!("  {name:<40} {value:>14.0}");
        }
    }
    for name in diag::ALL {
        if let Some(value) = measurement.counters.value(name) {
            if value > 0.0 {
                println!("  {name:<40} {value:>14.0}");
            }
        }
    }

    // --- Extract the minimal feature set. ----------------------------------
    let space = SearchSpace::for_host(&anomaly.subsystem.host());
    let outcome = {
        let mut evaluator = collie::core::eval::Evaluator::new(&mut engine);
        let mut extractor = MfsExtractor::new(&mut evaluator, &monitor, &space);
        extractor.extract(&anomaly.trigger, anomaly.symptom)
    };
    println!(
        "\nMinimal feature set ({} probe experiments, {:.0} simulated seconds):",
        outcome.experiments,
        outcome.elapsed.as_secs_f64()
    );
    println!("  {}", outcome.mfs.describe());

    // --- Remediation plan. --------------------------------------------------
    let plan = RemediationPlan::for_anomaly(&anomaly);
    if plan.mitigations.is_empty() {
        println!(
            "\nNo documented fix; avoid the anomaly by breaking one of the MFS conditions above."
        );
    } else {
        println!(
            "\nDocumented remediation ({}):",
            if plan.has_fix() {
                "fix available"
            } else {
                "bypass only"
            }
        );
        for m in &plan.mitigations {
            println!("  - {m}");
        }
        // Show the fix actually working.
        plan.apply_subsystem_side(engine.subsystem_mut());
        let mut adjusted = anomaly.trigger.clone();
        plan.apply_workload_side(&mut adjusted);
        let after = collie::core::monitor::AnomalyMonitor::new();
        let (_, verdict_after) = after.measure_and_assess(&mut engine, &adjusted);
        println!(
            "  after applying it the same workload reports: {}",
            verdict_after
                .symptom
                .map(|s| s.to_string())
                .unwrap_or_else(|| "healthy".to_string())
        );
    }
}
