//! §7.3 case study 2: helping a distributed-ML application bypass an
//! anomaly before the vendor fix exists.
//!
//! The paper's BytePS-based training framework hit Anomaly #9 after moving
//! to a new 200 Gbps AMD platform: its parameter-server traffic sends each
//! tensor as one work request whose scatter/gather list mixes tiny metadata
//! entries with large tensor payloads, in both directions — and on a host
//! whose RNIC is not configured as a relaxed-ordering PCIe device that
//! combination triggers a pause-frame storm. Collie's MFS told the
//! developers which feature to break while the platform fix (forced relaxed
//! ordering) was still weeks away.
//!
//! This example reproduces that debugging session end to end, driving the
//! traffic through the verbs API the way the real application would.
//!
//! Run with: `cargo run --example dml_bypass`

use collie::core::advisor::Advisor;
use collie::host::memory::MemoryTarget;
use collie::prelude::*;
use collie::sim::units::ByteSize;
use collie::verbs::{
    AccessFlags, CompletionQueue, Fabric, Mtu, QpCaps, QueuePair, SendWr, Sge, WrOpcode,
};

/// The tensor-push pattern of the framework: a small header, the tensor
/// payload, and a small trailer in one scatter/gather list.
fn tensor_push_wr(lkey: u32, wr_id: u64, tensor_bytes: u64) -> SendWr {
    SendWr {
        wr_id,
        opcode: WrOpcode::RdmaWrite,
        sge: vec![
            Sge::new(lkey, 0, 128),                   // metadata header
            Sge::new(lkey, 128, tensor_bytes),        // tensor payload
            Sge::new(lkey, 128 + tensor_bytes, 1024), // trailer / keys
        ],
        rkey: 0,
        remote_offset: 0,
        signaled: true,
    }
}

fn run_training_iteration(
    subsystem: SubsystemId,
    tensor_bytes: u64,
    split_sg_list: bool,
) -> (f64, f64) {
    let mut fabric = Fabric::from_catalog(subsystem);
    let worker_ctx = fabric.device(0).open();
    let server_ctx = fabric.device(1).open();

    let mut qps: Vec<(QueuePair, QueuePair)> = Vec::new();
    for _ in 0..8 {
        // Each worker/server pair gets its own PD, MR, and QP in both
        // directions (push and pull), like the real framework.
        for (ctx_a, ctx_b) in [(&worker_ctx, &server_ctx), (&server_ctx, &worker_ctx)] {
            let pd_a = ctx_a.alloc_pd();
            let pd_b = ctx_b.alloc_pd();
            let mr_a = pd_a
                .reg_mr(
                    ByteSize::from_mib(4),
                    MemoryTarget::local_dram(),
                    AccessFlags::FULL,
                )
                .expect("register send MR");
            pd_b.reg_mr(
                ByteSize::from_mib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .expect("register recv MR");
            let cq_a = CompletionQueue::new(1024);
            let cq_b = CompletionQueue::new(1024);
            let mut push = QueuePair::create(&pd_a, &cq_a, &cq_a, Transport::Rc, QpCaps::default())
                .expect("create qp");
            let mut sink = QueuePair::create(&pd_b, &cq_b, &cq_b, Transport::Rc, QpCaps::default())
                .expect("create qp");
            Fabric::connect(&mut push, &mut sink, Mtu::Mtu4096).expect("connect");

            let batch: Vec<SendWr> = (0..8)
                .flat_map(|i| {
                    if split_sg_list {
                        // The bypass: send metadata and payload as separate
                        // uniform work requests instead of one mixed SG list.
                        vec![
                            SendWr {
                                wr_id: i * 2,
                                opcode: WrOpcode::RdmaWrite,
                                sge: vec![Sge::new(mr_a.lkey, 0, 1152)],
                                rkey: 0,
                                remote_offset: 0,
                                signaled: true,
                            },
                            SendWr {
                                wr_id: i * 2 + 1,
                                opcode: WrOpcode::RdmaWrite,
                                sge: vec![Sge::new(mr_a.lkey, 0, tensor_bytes)],
                                rkey: 0,
                                remote_offset: 0,
                                signaled: true,
                            },
                        ]
                    } else {
                        vec![tensor_push_wr(mr_a.lkey, i, tensor_bytes)]
                    }
                })
                .collect();
            push.post_send_batch(batch).expect("post tensor batch");
            qps.push((push, sink));
        }
    }

    let mut refs: Vec<&mut QueuePair> = Vec::new();
    for (a, b) in qps.iter_mut() {
        refs.push(a);
        refs.push(b);
    }
    let measurement = fabric.run(&mut refs).expect("run measurement window");
    (
        measurement.total_throughput().gbps(),
        measurement.max_pause_ratio(),
    )
}

fn main() {
    // Subsystem F carries the strict-ordering platform quirk the paper
    // attributes to its anomalous 200 Gbps servers.
    let subsystem = SubsystemId::F;
    let tensor_bytes = 64 * 1024;

    println!("Distributed training traffic on subsystem {subsystem} (strict-ordering platform)\n");

    // 1. The original framework traffic: mixed-size SG lists, bidirectional.
    let (gbps, pause) = run_training_iteration(subsystem, tensor_bytes, false);
    println!(
        "Original tensor pattern:  {gbps:>6.1} Gbps total, pause duration ratio {:.1}%",
        pause * 100.0
    );

    // 2. Describe the same workload as a search point and ask the advisor
    //    which known anomaly it matches.
    let mut workload = SearchPoint::benign();
    workload.bidirectional = true;
    workload.num_qps = 8;
    workload.wqe_batch = 8;
    workload.sge_per_wqe = 3;
    workload.messages = vec![128, tensor_bytes, 1024];
    let advisor = Advisor::for_subsystem(subsystem);
    println!("\nAdvisor diagnosis:");
    for suggestion in advisor.diagnose(&workload) {
        println!(
            "  matches {} — {}",
            suggestion.anomaly, suggestion.recommendation
        );
    }

    // 3. Apply the bypass the paper's developers chose: stop mixing small
    //    and large elements in one SG list.
    let (gbps_fixed, pause_fixed) = run_training_iteration(subsystem, tensor_bytes, true);
    println!(
        "\nBypassed tensor pattern:  {gbps_fixed:>6.1} Gbps total, pause duration ratio {:.1}%",
        pause_fixed * 100.0
    );

    // 4. And the eventual platform fix: forced relaxed ordering makes the
    //    original pattern safe again.
    let mut fixed_subsystem = subsystem.build();
    fixed_subsystem.host_a.pcie_settings.relaxed_ordering = true;
    fixed_subsystem.host_b.pcie_settings.relaxed_ordering = true;
    let mut engine = WorkloadEngine::new(fixed_subsystem);
    let monitor = AnomalyMonitor::new();
    let (_, verdict) = monitor.measure_and_assess(&mut engine, &workload);
    println!(
        "\nAfter the vendor fix (forced relaxed ordering): anomalous = {} (pause {:.1}%)",
        verdict.is_anomalous(),
        verdict.pause_ratio * 100.0
    );
}
