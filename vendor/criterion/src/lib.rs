//! Offline Criterion shim for the Collie workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the Criterion authoring API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! deliberately small measurement core: a fixed warm-up pass followed by a
//! timed batch, reporting mean wall-clock time per iteration. It produces
//! no HTML reports and does no statistical analysis; its purpose is to keep
//! `cargo bench` working (and the bench targets compiling under
//! `cargo test`) with believable relative numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed iterations the shim runs per benchmark (after one
/// warm-up iteration). Kept small: the workspace's campaign benches run
/// multi-second simulated searches per iteration.
const DEFAULT_TIMED_ITERS: u64 = 10;

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    timed_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            timed_iters: DEFAULT_TIMED_ITERS,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.timed_iters, &mut f);
        self
    }
}

/// A group of related benchmarks, as returned by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the target sample count. The shim only uses it to cap its timed
    /// iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let iters = self
            .sample_size
            .map(|n| (n as u64).min(self.criterion.timed_iters))
            .unwrap_or(self.criterion.timed_iters)
            .max(1);
        let full = format!("{}/{}", self.name, id);
        run_one(&full, iters, &mut |b| f(b, input));
        self
    }

    /// Run a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iters = self
            .sample_size
            .map(|n| (n as u64).min(self.criterion.timed_iters))
            .unwrap_or(self.criterion.timed_iters)
            .max(1);
        let full = format!("{}/{}", self.name, id);
        run_one(&full, iters, &mut f);
        self
    }

    /// Finish the group (a no-op in the shim; exists for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    total_iters: u64,
}

impl Bencher {
    /// Time `routine`, running it once to warm up and then `iters` times
    /// under the clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.total_iters += self.iters;
    }
}

fn run_one<F>(id: &str, iters: u64, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
        total_iters: 0,
    };
    f(&mut bencher);
    if bencher.total_iters == 0 {
        println!("{id:<40} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.total_iters as f64;
    println!(
        "{id:<40} {:>12.3} us/iter ({} iters)",
        per_iter * 1e6,
        bencher.total_iters
    );
}

/// Collect benchmark functions into a runnable group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("shim/test", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // One warm-up + DEFAULT_TIMED_ITERS timed iterations.
        assert_eq!(runs, DEFAULT_TIMED_ITERS + 1);
    }

    #[test]
    fn groups_respect_sample_size_cap() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &2u64, |b, &two| {
            b.iter(|| {
                runs += two;
                black_box(runs)
            })
        });
        group.finish();
        assert_eq!(runs, 2 * 4); // warm-up + 3 timed iterations
    }
}
