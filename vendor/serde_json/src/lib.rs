//! Offline `serde_json` shim for the Collie workspace.
//!
//! Provides the subset of the real crate's API the workspace uses —
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`json!`] and
//! [`Value`] — on top of the offline `serde` shim's `Value` tree. The text
//! format is standard JSON: objects keep field declaration order, numbers
//! that are mathematically integral print without a decimal point, and
//! strings are escaped per RFC 8259.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// Error raised by JSON rendering or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Convert any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Render a serialisable value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render a serialisable value as pretty JSON (two-space indent, like the
/// real `serde_json`).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserialisable value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Build a [`Value`] literal. Supports the shapes the workspace uses:
/// `json!(null)`, `json!([_, …])` with expression elements, and
/// `json!({"key": expr, …})` with string-literal keys and serialisable
/// expression values (nest by passing another `json!` call as the value).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$element)),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $((::std::string::String::from($key), $crate::to_value(&$value))),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // Real serde_json refuses non-finite numbers; `null` is the
        // conventional lossy stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{literal}` at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let c = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: per RFC 8259 it must be
                                // followed by an escaped low surrogate.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error::new(
                                        "unpaired high surrogate in \\u escape",
                                    ));
                                }
                                let low = self.parse_hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::new("invalid low surrogate in \\u escape"));
                                }
                                self.pos += 6;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Read the four hex digits of a `\u` escape starting at `start`.
    fn parse_hex4(&self, start: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut int_digits = 0usize;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            int_digits += 1;
        }
        if int_digits == 0 {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac_digits = 0usize;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac_digits += 1;
            }
            // RFC 8259 requires at least one digit after the decimal point
            // (`1.` is not valid JSON even though Rust's f64 parser takes it).
            if frac_digits == 0 {
                return Err(Error::new(format!("invalid number at byte {start}")));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let mut exp_digits = 0usize;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp_digits += 1;
            }
            if exp_digits == 0 {
                return Err(Error::new(format!("invalid number at byte {start}")));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_round_trip() {
        let value = Value::Object(vec![
            (
                "name".to_string(),
                Value::String("collie \"dog\"".to_string()),
            ),
            ("count".to_string(), Value::Number(3.0)),
            ("ratio".to_string(), Value::Number(0.25)),
            (
                "tags".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string_pretty(&value).unwrap();
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("0.25"));
        let parsed: Value = from_str(&text).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u64, "b": "text", "ok": true });
        assert_eq!(v.get("a"), Some(&Value::Number(1.0)));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("text"));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_surrogate_pairs_and_rejects_lone_surrogates() {
        let parsed: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(parsed, Value::String("\u{1F600}".to_string()));
        assert!(from_str::<Value>(r#""\ud83d""#).is_err());
        assert!(from_str::<Value>(r#""\ud83dx""#).is_err());
        assert!(from_str::<Value>(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn rejects_non_rfc8259_numbers() {
        assert!(from_str::<Value>("1.").is_err());
        assert!(from_str::<Value>("1.e5").is_err());
        assert!(from_str::<Value>("1e").is_err());
        assert!(from_str::<Value>("-").is_err());
        assert!(from_str::<Value>(".5").is_err());
        assert_eq!(from_str::<Value>("1.5e+3").unwrap(), Value::Number(1500.0));
    }

    #[test]
    fn rejects_out_of_range_integers() {
        assert!(from_str::<u32>("-5").is_err());
        assert!(from_str::<u32>("1e20").is_err());
        assert!(from_str::<i8>("200").is_err());
        // 2^64: beyond f64's exact range; saturating casts must not let it
        // false-pass as u64::MAX.
        assert!(from_str::<u64>("18446744073709551616").is_err());
        assert_eq!(
            from_str::<u64>("9007199254740992").unwrap(),
            9007199254740992u64
        );
        assert_eq!(from_str::<u32>("7").unwrap(), 7);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn parses_escapes_and_exponents() {
        let parsed: Value = from_str(r#"{"s": "a\nbA", "n": 1.5e3}"#).unwrap();
        assert_eq!(parsed.get("s").and_then(Value::as_str), Some("a\nbA"));
        assert_eq!(parsed.get("n"), Some(&Value::Number(1500.0)));
    }
}
