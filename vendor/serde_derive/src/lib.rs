//! Derive macros for the offline serde shim.
//!
//! The build environment has no access to crates.io, so `syn`/`quote` are
//! unavailable; this crate parses the derive input directly from the raw
//! `proc_macro::TokenStream` and emits impl blocks as source text. It
//! supports exactly the shapes the Collie workspace uses:
//!
//! * structs with named fields → JSON objects in declaration order;
//! * tuple structs with one field (newtypes) → transparent, like serde;
//! * tuple structs with several fields → JSON arrays;
//! * enums → externally tagged, like serde's default representation
//!   (`"Variant"` for unit variants, `{"Variant": …}` for data variants).
//!
//! Generic types are intentionally not supported, and the only
//! `#[serde(...)]` attribute implemented is `#[serde(skip)]` on a named
//! field (the field is omitted from serialization and rebuilt with
//! `Default::default()` on deserialization, like upstream serde). The
//! derive panics with a clear message if it meets anything else.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim): generates a `to_value` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` (shim): generates a `from_value` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// A tiny item parser over the raw token stream.
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

struct NamedField {
    name: String,
    /// `#[serde(skip)]`: absent from the serialized form, rebuilt with
    /// `Default::default()` on deserialization.
    skip: bool,
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "type name");
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Kind::Struct(Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde shim derive: enum `{name}` has no body"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Input { name, kind }
}

/// Advance past attributes and visibility, reporting whether a
/// `#[serde(skip)]` was among the attributes. Any other `#[serde(...)]`
/// attribute carries semantics this shim does not implement — fail the
/// build loudly rather than let the generated impl silently ignore it.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]`: the attribute body is the next (bracket) group.
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if matches!(
                        inner.first(),
                        Some(TokenTree::Ident(id)) if id.to_string() == "serde"
                    ) {
                        if is_serde_skip(&inner) {
                            skip = true;
                        } else {
                            panic!(
                                "serde shim derive: the only #[serde(...)] attribute \
                                 supported by the offline shim is #[serde(skip)] on a \
                                 named field (vendor/serde_derive)"
                            );
                        }
                    }
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` / `pub(super)`
                    }
                }
            }
            _ => break,
        }
    }
    skip
}

/// True iff an attribute body (the tokens inside `#[...]`) is exactly
/// `serde(skip)`.
fn is_serde_skip(inner: &[TokenTree]) -> bool {
    if inner.len() != 2 {
        return false;
    }
    match &inner[1] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
            let args: Vec<TokenTree> = g.stream().into_iter().collect();
            args.len() == 1 && matches!(&args[0], TokenTree::Ident(id) if id.to_string() == "skip")
        }
        _ => false,
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected {what}, found {other:?}"),
    }
}

/// Parse `name: Type, ...` out of a brace group, returning the field names
/// and their `#[serde(skip)]` markers. Commas inside angle brackets
/// (`BTreeMap<K, V>`) are not separators.
fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let skip = skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "field name");
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(NamedField { name, skip });
    }
    fields
}

/// Advance past one type, stopping after the field-separating comma (or at
/// the end of the stream). Tracks angle-bracket depth so commas inside
/// generic arguments don't end the field.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i64 = 0;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Count the fields of a tuple struct/variant body (the parenthesised
/// group's stream).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth: i64 = 0;
    let mut commas = 0;
    let mut trailing_comma = false;
    for token in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        let _ = skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "variant name");
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_type_until_comma(&tokens, &mut i);
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then reparsed).
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let entries = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(vec![{entries}])")
        }
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(vec![{items}])")
        }
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vname}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds = (0..*n)
                            .map(|i| format!("__f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::Value::Array(vec![{items}])")
                        };
                        format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vname}\"), {inner})]),"
                        )
                    }
                    Fields::Named(fnames) => {
                        // Skipped fields still need a pattern binding;
                        // `_` keeps the generated match arm warning-free.
                        let binds = fnames
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let entries = fnames
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(vec![{entries}]))]),"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    \
         fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let inits = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default(),", f.name)
                    } else {
                        let f = &f.name;
                        format!("{f}: ::serde::get_field(__fields, \"{f}\", \"{name}\")?,")
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!(
                "let __fields = value.expect_object(\"{name}\")?;\n        \
                 Ok({name} {{\n            {inits}\n        }})"
            )
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __items = value.expect_array(\"{name}\", Some({n}))?;\n        \
                 Ok({name}({items}))"
            )
        }
        Kind::Struct(Fields::Unit) => format!(
            "match value {{\n            \
             ::serde::Value::Null => Ok({name}),\n            \
             __other => Err(::serde::Error::type_mismatch(\"{name}\", \"null\", __other)),\n        \
             }}"
        ),
        Kind::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
                .collect::<Vec<_>>()
                .join("\n                ");
            let data_arms = variants
                .iter()
                .filter_map(|(vname, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        Some(format!(
                            "\"{vname}\" => {{\n                        \
                             let __items = __inner.expect_array(\"{name}::{vname}\", Some({n}))?;\n                        \
                             Ok({name}::{vname}({items}))\n                    }}"
                        ))
                    }
                    Fields::Named(fnames) => {
                        let inits = fnames
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::std::default::Default::default(),", f.name)
                                } else {
                                    let f = &f.name;
                                    format!(
                                        "{f}: ::serde::get_field(__vfields, \"{f}\", \
                                         \"{name}::{vname}\")?,"
                                    )
                                }
                            })
                            .collect::<Vec<_>>()
                            .join(" ");
                        Some(format!(
                            "\"{vname}\" => {{\n                        \
                             let __vfields = __inner.expect_object(\"{name}::{vname}\")?;\n                        \
                             Ok({name}::{vname} {{ {inits} }})\n                    }}"
                        ))
                    }
                })
                .collect::<Vec<_>>()
                .join("\n                    ");
            format!(
                "match value {{\n            \
                 ::serde::Value::String(__s) => match __s.as_str() {{\n                \
                 {unit_arms}\n                \
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant `{{}}`\", __other))),\n            \
                 }},\n            \
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n                \
                 let (__tag, __inner) = &__entries[0];\n                \
                 let _ = __inner;\n                \
                 match __tag.as_str() {{\n                    \
                 {data_arms}\n                    \
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant `{{}}`\", __other))),\n                \
                 }}\n            }}\n            \
                 __other => Err(::serde::Error::custom(format!(\
                 \"{name}: expected string or single-key object, got {{}}\", __other.kind()))),\n        \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    \
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        \
         {body}\n    }}\n}}\n"
    )
}
