//! Offline serde shim for the Collie workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the serde surface the workspace actually uses — `Serialize` /
//! `Deserialize` traits, the two derive macros, and a JSON-shaped [`Value`]
//! tree — implemented from scratch with no dependencies. The companion
//! `serde_json` shim renders and parses [`Value`] as JSON text.
//!
//! The data model is deliberately simple: serialisation goes through
//! [`Serialize::to_value`], deserialisation through
//! [`Deserialize::from_value`]. The derive macros (in `serde_derive`)
//! generate exactly those impls, with real serde's externally-tagged enum
//! representation and transparent newtype structs, so the JSON produced
//! here matches what real serde would produce for the same types.
//!
//! Known deviations from real serde, stated per the workspace's shim
//! rules (see `DESIGN.md` §5): numbers are stored as `f64`, so integers
//! above 2^53 are rejected at serialisation time (an assert) instead of
//! being preserved exactly; `#[serde(...)]` attributes and generic types
//! fail the build instead of being honoured.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate form every `Serialize` /
/// `Deserialize` impl converts through.
///
/// Object entries preserve insertion order (fields serialise in declaration
/// order, like real serde).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`, like `serde_json` with default
    /// features when reading arbitrary numbers).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for the value's JSON type, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object entries, or a type error naming `context`.
    pub fn expect_object(&self, context: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(entries) => Ok(entries),
            other => Err(Error::type_mismatch(context, "object", other)),
        }
    }

    /// The array elements (checked against `len` when given), or a type
    /// error naming `context`.
    pub fn expect_array(&self, context: &str, len: Option<usize>) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => {
                if let Some(expected) = len {
                    if items.len() != expected {
                        return Err(Error::custom(format!(
                            "{context}: expected an array of {expected} elements, got {}",
                            items.len()
                        )));
                    }
                }
                Ok(items)
            }
            other => Err(Error::type_mismatch(context, "array", other)),
        }
    }
}

/// Serialisation/deserialisation error: a message, as in `serde::de::Error`.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }

    /// Build a "wrong JSON type" error.
    pub fn type_mismatch(context: &str, expected: &str, got: &Value) -> Error {
        Error::custom(format!(
            "{context}: expected {expected}, got {}",
            got.kind()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can convert itself into a [`Value`].
pub trait Serialize {
    /// Convert `self` into the JSON-shaped intermediate form.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from the JSON-shaped intermediate form.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Deserialize one named field out of an object's entries; used by the
/// derive-generated code.
pub fn get_field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::custom(format!("{context}.{name}: {e}")))
        }
        None => Err(Error::custom(format!("{context}: missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                // `Value` stores numbers as f64, so integers above 2^53
                // cannot be represented exactly (real serde_json preserves
                // full 64-bit precision). Nothing in this workspace
                // serialises values that large; fail loudly rather than
                // silently corrupt if that ever changes. The bound is an
                // explicit magnitude check — a round-trip comparison would
                // false-pass at the type extremes, where the widening
                // rounds up and the narrowing cast saturates back.
                assert!(
                    (*self as i128).unsigned_abs() <= 1u128 << 53,
                    "serde shim: {} value {} exceeds f64's exact integer range",
                    stringify!($ty),
                    self
                );
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    // The magnitude bound rejects numbers beyond f64's
                    // exact integer range before the round-trip check
                    // (whose saturating casts would otherwise false-pass
                    // at the type extremes); the round-trip check then
                    // rejects negatives for unsigned types and values
                    // outside the type's own range, matching real serde's
                    // behaviour of erroring instead of silently coercing.
                    Value::Number(n)
                        if n.fract() == 0.0
                            && n.abs() <= (1u64 << 53) as f64
                            && (*n as $ty) as f64 == *n =>
                    {
                        Ok(*n as $ty)
                    }
                    Value::Number(n) => Err(Error::custom(format!(
                        "{}: number {n} out of range",
                        stringify!($ty)
                    ))),
                    other => Err(Error::type_mismatch(stringify!($ty), "integer", other)),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(*n),
            other => Err(Error::type_mismatch("f64", "number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(*n as f32),
            other => Err(Error::type_mismatch("f32", "number", other)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", "boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("String", "string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::type_mismatch(
                "char",
                "single-character string",
                other,
            )),
        }
    }
}

/// Deserialising into `&'static str` leaks the parsed string. The workspace
/// only does this for small rule/counter identifiers in test round-trips,
/// so the leak is bounded and acceptable for an offline shim.
impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::type_mismatch("&str", "string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("Vec", "array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.expect_array("array", Some(N))?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.expect_array("tuple", Some(2))?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.expect_array("tuple", Some(3))?;
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

/// Render a map key: string keys pass through; any other serialisable key
/// uses its JSON text (matching `serde_json`'s requirement that object keys
/// be strings, with unit-enum keys rendering as their variant name).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    // Try the string form first (unit enums, String); fall back to numeric
    // and boolean parses for integer/bool keys.
    let as_string = Value::String(key.to_string());
    if let Ok(k) = K::from_value(&as_string) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Number(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot parse map key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.expect_object("BTreeMap")?;
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, as serde_json's "preserve_order"
        // users expect at least stability.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.expect_object("HashMap")?;
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::type_mismatch("()", "null", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        let round: Vec<u64> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        let round: BTreeMap<String, f64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(round, m);

        let o: Option<u32> = None;
        assert_eq!(o.to_value(), Value::Null);
        let round: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(round, None);
    }

    #[test]
    fn type_errors_name_the_context() {
        let err = u64::from_value(&Value::String("x".into())).unwrap_err();
        assert!(err.to_string().contains("u64"));
    }
}
