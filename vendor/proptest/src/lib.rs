//! Offline proptest shim for the Collie workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the proptest authoring surface the workspace's property
//! tests use — the `proptest!` macro with `#![proptest_config(...)]`,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()` and integer-range
//! strategies — on a deliberately simple engine: cases are sampled from a
//! deterministic per-test RNG (seeded from the test's name, so failures
//! reproduce across runs) and there is no shrinking; a failing case
//! panics with the sampled inputs attached.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Per-block test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many cases to sample and run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The failure payload produced by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from any message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A deterministic split-mix RNG: every test gets its own stream seeded
/// from the test name, so a failing case reproduces on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the RNG from a test name (FNV-1a, fixed offsets — stable
    /// across processes, unlike `std`'s randomised hasher).
    ///
    /// When the `PROPTEST_SEED` environment variable is set to a u64, it
    /// is folded into the stream: every test still gets its own stream
    /// (derived from its name), but CI can pin — or deliberately rotate —
    /// the whole suite's case sample by exporting one number, and a
    /// failure reproduces locally by exporting the same value.
    /// Unparsable values are ignored.
    pub fn deterministic(name: &str) -> TestRng {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        TestRng::deterministic_with_seed(name, env_seed)
    }

    /// The stream [`TestRng::deterministic`] produces for `name` under an
    /// explicit seed (`None` = the unseeded default). Split out so the
    /// seeding logic is testable without mutating process environment —
    /// sibling tests read `PROPTEST_SEED` concurrently.
    pub fn deterministic_with_seed(name: &str, seed: Option<u64>) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        if let Some(seed) = seed {
            hash ^= seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A source of sampled values, mirroring `proptest::strategy::Strategy`
/// (without shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "sample anything" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing unconstrained values of `T`, mirroring
/// `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }

        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A single always-the-same-value strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            )));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __left
            )));
        }
    }};
}

/// Define property tests, mirroring `proptest::proptest!`. Each `fn` inside
/// the block becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__error) = __result {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}\n  inputs: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __error,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn explicit_seed_shifts_every_stream_reproducibly() {
        // Exercises the seeding path without touching PROPTEST_SEED —
        // mutating process env would race the sibling tests, which read
        // the variable from parallel threads.
        let base = TestRng::deterministic_with_seed("env-seed-probe", None).next_u64();
        let seeded_a =
            TestRng::deterministic_with_seed("env-seed-probe", Some(20_260_730)).next_u64();
        let seeded_b =
            TestRng::deterministic_with_seed("env-seed-probe", Some(20_260_730)).next_u64();
        let other_seed =
            TestRng::deterministic_with_seed("env-seed-probe", Some(20_260_731)).next_u64();
        assert_eq!(seeded_a, seeded_b, "same seed, same stream");
        assert_ne!(base, seeded_a, "the seed must actually shift the stream");
        assert_ne!(seeded_a, other_seed, "different seeds, different streams");
        // `deterministic` folds the parsed env seed in (or None when absent
        // or unparsable), so it always lands on one of the streams above.
        let via_env = TestRng::deterministic("env-seed-probe").next_u64();
        let expected = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|seed| TestRng::deterministic_with_seed("env-seed-probe", Some(seed)).next_u64())
            .unwrap_or(base);
        assert_eq!(via_env, expected);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32 })]

        #[test]
        fn ranges_stay_in_bounds(v in 5u32..=9) {
            prop_assert!((5..=9).contains(&v));
        }

        #[test]
        fn any_u64_samples_vary(seed in any::<u64>()) {
            let _ = seed;
            prop_assert_eq!(1 + 1, 2);
        }
    }
}
