//! Offline shim for the subset of `parking_lot` the Collie workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the same `Mutex`/`RwLock` surface (infallible `lock`/`read`/`write`) on
//! top of `std::sync`, recovering from poisoning instead of panicking —
//! which matches `parking_lot`'s behaviour of having no poisoning at all.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual exclusion primitive with `parking_lot`'s infallible API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(inner) => inner,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s infallible API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(inner) => inner,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
