//! Offline shim for the subset of `crossbeam` the Collie workspace uses:
//! `crossbeam::thread::scope` for structured fork/join parallelism.
//!
//! The build environment has no access to crates.io, so this crate adapts
//! `std::thread::scope` (stable since Rust 1.63) to crossbeam's calling
//! convention: the scope closure returns a `Result`, and spawn closures
//! receive a scope argument (which callers here ignore as `|_|`).

#![forbid(unsafe_code)]

/// Scoped-thread primitives mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// The error payload of a panicked scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A handle passed to every spawned closure. The real crossbeam passes
    /// `&Scope` so that threads can spawn siblings; the Collie workspace
    /// never does, so the shim passes this placeholder instead.
    #[derive(Debug, Clone, Copy)]
    pub struct NestedScope;

    /// A scope in which child threads can be spawned; created by [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned permission to join a scoped thread, as returned by
    /// [`Scope::spawn`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result, or the
        /// panic payload if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a child thread that may borrow from the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(NestedScope)),
            }
        }
    }

    /// Create a scope for spawning threads that borrow from the caller's
    /// stack. Unlike `std::thread::scope`, the crossbeam version returns a
    /// `Result`; with the underlying std implementation every child is
    /// joined (and unjoined panics propagate), so this shim always returns
    /// `Ok` with the closure's value.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_spawned_threads() {
        let data = vec![1u64, 2, 3];
        let total = super::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &x in &data {
                handles.push(scope.spawn(move |_| x * 10));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("thread ok"))
                .sum::<u64>()
        })
        .expect("scope ok");
        assert_eq!(total, 60);
    }
}
