//! # collie
//!
//! A from-scratch Rust reproduction of *Collie: Finding Performance
//! Anomalies in RDMA Subsystems* (NSDI 2022).
//!
//! Collie searches the space of RDMA application workloads for
//! configurations that trigger performance anomalies — PFC pause-frame
//! storms and throughput collapses — in an RDMA subsystem, using only the
//! hardware counters every commodity deployment exposes. Because real RNIC
//! hardware is not available to this reproduction, the workspace also
//! contains a behavioural model of the whole subsystem (host topology,
//! PCIe, RNIC internals, verbs API); see `DESIGN.md` for the substitution
//! argument and the per-experiment index.
//!
//! This facade crate re-exports the workspace layers and offers a couple of
//! one-call conveniences for the common flows.
//!
//! ```
//! use collie::prelude::*;
//!
//! // Run a short Collie campaign against the paper's subsystem F.
//! let outcome = collie::quick_campaign(SubsystemId::F, 1.0, 7);
//! assert!(outcome.experiments > 0);
//! ```
//!
//! Layers (each is its own crate, usable independently):
//!
//! * [`sim`] — deterministic simulation substrate (time, events, RNG,
//!   counters, statistics).
//! * [`host`] — host hardware model (PCIe, NUMA, GPUs, DDIO, switch) and
//!   the Table-1 host presets.
//! * [`rnic`] — the RNIC behavioural model, counters, bottleneck rules and
//!   the Table-1 subsystem catalog.
//! * [`verbs`] — a verbs-style API (MR/QP/CQ/WQE) over the simulated
//!   subsystem.
//! * [`core`] — Collie itself: search space, workload engine, anomaly
//!   monitor, MFS extraction, and the counter-guided search.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use collie_core as core;
pub use collie_host as host;
pub use collie_rnic as rnic;
pub use collie_sim as sim;
pub use collie_verbs as verbs;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use collie_core::advisor::{Advisor, Suggestion};
    pub use collie_core::catalog::KnownAnomaly;
    pub use collie_core::engine::WorkloadEngine;
    pub use collie_core::fabric::{run_fabric_search, FabricEngine, FabricOutcome, FabricVerdict};
    pub use collie_core::mitigation::{Mitigation, MitigationKind, RemediationPlan};
    pub use collie_core::monitor::{AnomalyMonitor, AnomalyVerdict, Mfs, Symptom};
    pub use collie_core::remedy::{
        DiscoveredTrigger, MitigationStep, QualificationRecord, Qualifier, RegressionCatalog,
        RegressionFlag, Verdict,
    };
    pub use collie_core::search::{
        run_search, SearchConfig, SearchOutcome, SearchStrategy, SignalMode,
    };
    pub use collie_core::space::{
        FabricPoint, FabricSpace, SearchPoint, SearchSpace, SpaceRestriction,
    };
    pub use collie_rnic::fabric::TrafficPattern;
    pub use collie_rnic::subsystems::SubsystemId;
    pub use collie_rnic::workload::{Direction, Opcode, Transport};
    pub use collie_sim::time::SimDuration;
}

use prelude::*;

/// Run a Collie campaign (simulated annealing over diagnostic counters,
/// with the MFS skip) against one of the Table-1 subsystems for
/// `budget_hours` of simulated testing time.
pub fn quick_campaign(subsystem: SubsystemId, budget_hours: f64, seed: u64) -> SearchOutcome {
    let mut engine = WorkloadEngine::for_catalog(subsystem);
    let space = SearchSpace::for_host(&subsystem.host());
    let config =
        SearchConfig::collie(seed).with_budget(SimDuration::from_secs_f64(budget_hours * 3600.0));
    run_search(&mut engine, &space, &config)
}

/// Check one workload description against a subsystem: measure it and
/// return the anomaly verdict (the "is this workload safe to ship?" call an
/// application developer makes).
pub fn assess_workload(subsystem: SubsystemId, workload: &SearchPoint) -> AnomalyVerdict {
    let mut engine = WorkloadEngine::for_catalog(subsystem);
    let monitor = AnomalyMonitor::new();
    let (_, verdict) = monitor.measure_and_assess(&mut engine, workload);
    verdict
}

/// Run a fabric campaign (counter-guided search over the multi-host
/// space) against a homogeneous fleet of one subsystem's hosts for
/// `budget_hours` of simulated testing time.
pub fn quick_fabric_campaign(
    subsystem: SubsystemId,
    budget_hours: f64,
    seed: u64,
) -> FabricOutcome {
    let mut engine = FabricEngine::for_catalog(subsystem);
    let space = FabricSpace::for_host(&subsystem.host());
    let config =
        SearchConfig::collie(seed).with_budget(SimDuration::from_secs_f64(budget_hours * 3600.0));
    run_fabric_search(&mut engine, &space, &config)
}

/// Check one fabric point against a subsystem's fleet: measure it and
/// return the fabric verdict (pause on a victim port, cross-host
/// hallmark).
pub fn assess_fabric_workload(subsystem: SubsystemId, point: &FabricPoint) -> FabricVerdict {
    let mut engine = FabricEngine::for_catalog(subsystem);
    let measurement = engine.measure(point);
    collie_core::fabric::assess_fabric(&AnomalyMonitor::new(), &measurement)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_runs_and_discovers() {
        let outcome = quick_campaign(SubsystemId::F, 1.0, 3);
        assert!(outcome.experiments > 10);
        // A campaign may overshoot its budget by at most one experiment plus
        // one MFS extraction (an anomaly discovered just before the deadline
        // is still characterised, as on real hardware).
        assert!(outcome.elapsed.as_secs_f64() <= 3600.0 + 4500.0);
    }

    #[test]
    fn assess_workload_flags_known_triggers_and_passes_benign_ones() {
        assert!(!assess_workload(SubsystemId::F, &SearchPoint::benign()).is_anomalous());
        let anomaly = KnownAnomaly::by_id(1).unwrap();
        assert!(assess_workload(SubsystemId::F, &anomaly.trigger).is_anomalous());
    }

    #[test]
    fn quick_fabric_campaign_runs_within_budget() {
        let outcome = quick_fabric_campaign(SubsystemId::F, 0.5, 3);
        assert!(outcome.experiments > 5);
        assert!(outcome.elapsed.as_secs_f64() <= 1800.0 + 4500.0);
    }

    #[test]
    fn assess_fabric_workload_passes_a_benign_fleet() {
        let verdict = assess_fabric_workload(SubsystemId::F, &FabricPoint::benign());
        assert!(!verdict.is_anomalous(), "{verdict:?}");
    }
}
