//! The discovery → remediation → verification pipeline (§7).
//!
//! Finding an anomaly is half of Collie's pitch; the other half is the
//! qualification service around it: a vendor or operator applies a
//! documented fix, Collie *re-runs the trigger under the mitigated
//! configuration* and records whether the anomaly actually cleared, and the
//! deployment keeps replaying previously-cleared triggers so a firmware or
//! configuration rollback is caught as a regression instead of rediscovered
//! weeks later by a fresh campaign.
//!
//! This module owns that loop:
//!
//! * [`Qualifier`] takes a trigger (a campaign discovery or a catalogued
//!   anomaly), collects the matching [`RemediationPlan`]s from the
//!   [`Advisor`] and the anomaly catalog, and applies their mitigations
//!   **cumulatively, one at a time, in plan order** — not all at once the
//!   way [`RemediationPlan::apply_subsystem_side`] does. After each
//!   mitigation the trigger is re-measured through the standard memoized
//!   [`Evaluator`] on a fresh engine fork, and a per-mitigation [`Verdict`]
//!   records whether the symptom cleared, what residual symptom remains,
//!   and how the counters moved. One mitigation at a time matters: #12's
//!   trigger also falls into #9's bottleneck, so the ACS fix alone leaves a
//!   residual pause storm that an all-at-once application would hide.
//! * [`QualificationRecord`] is the durable result: the trigger, the
//!   mitigation steps in order, and which mitigation (if any) cleared it.
//!   Anomalies with no documented fix are recorded honestly with an empty
//!   step list and `cleared_by: None`.
//! * [`RegressionCatalog`] persists the records as versioned JSON. Future
//!   campaigns load it to skip re-reporting known-cleared anomalies under a
//!   mitigated fixture, and [`RegressionCatalog::check_regressions`]
//!   replays every cleared record so a trigger that goes anomalous again is
//!   flagged as a [`RegressionFlag`].
//!
//! Every measurement happens on a fork of the engine: the incremental
//! delta caches key on workload features and treat the subsystem
//! configuration as fixed, so a mitigation must never be applied to an
//! engine that has already measured (the fork starts with cold caches and
//! the correct mitigated configuration).

use crate::advisor::Advisor;
use crate::catalog::KnownAnomaly;
use crate::engine::WorkloadEngine;
use crate::eval::Evaluator;
use crate::mitigation::{Mitigation, RemediationPlan};
use crate::monitor::{AnomalyMonitor, Symptom};
use crate::space::SearchPoint;
use collie_rnic::subsystem::Measurement;
use collie_rnic::subsystems::SubsystemId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Format version of the on-disk [`RegressionCatalog`]. Bumped whenever the
/// record schema changes incompatibly; [`RegressionCatalog::from_json`]
/// rejects files written by a different version instead of misreading them.
pub const REGRESSION_CATALOG_VERSION: u32 = 1;

/// The outcome of re-measuring a trigger after one more mitigation was
/// applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// True if the workload is no longer anomalous under the mitigations
    /// applied so far.
    pub cleared: bool,
    /// The symptom still present after this mitigation (`None` when
    /// cleared).
    pub residual_symptom: Option<Symptom>,
    /// How every counter moved relative to the previous measurement of
    /// this qualification (the unmitigated baseline for the first step).
    /// Zero deltas are omitted.
    pub counters_delta: BTreeMap<String, f64>,
}

/// One mitigation of a qualification run and the verdict it earned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationStep {
    /// The mitigation applied at this step (cumulative with all earlier
    /// steps of the same record).
    pub mitigation: Mitigation,
    /// The re-measurement verdict with this mitigation in effect.
    pub verdict: Verdict,
}

/// The durable result of qualifying one trigger: which mitigations were
/// tried, in order, and whether the anomaly cleared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualificationRecord {
    /// The subsystem the trigger was qualified against.
    pub subsystem: SubsystemId,
    /// The catalogued anomalies this trigger maps to (sorted, deduped;
    /// empty for an uncatalogued discovery).
    pub anomaly_ids: Vec<u32>,
    /// The symptom of the unmitigated trigger.
    pub symptom: Symptom,
    /// The anomalous workload, as discovered (before any workload-side
    /// mitigation).
    pub trigger: SearchPoint,
    /// The mitigation steps in application order.
    pub steps: Vec<MitigationStep>,
    /// The mitigation whose step cleared the anomaly, if any.
    pub cleared_by: Option<Mitigation>,
}

impl QualificationRecord {
    /// Stable identity used for dedup and catalog lookups: the anomaly ids
    /// when the trigger is catalogued, otherwise the symptom plus a hash of
    /// the trigger itself.
    pub fn identity(&self) -> String {
        trigger_identity(
            self.subsystem,
            self.symptom,
            &self.anomaly_ids,
            &self.trigger,
        )
    }

    /// True if some mitigation step cleared the anomaly.
    pub fn cleared(&self) -> bool {
        self.cleared_by.is_some()
    }

    /// True if the anomaly cleared using documented *fixes* only — the
    /// paper's bar for "fixed". A record cleared by a workload bypass
    /// (e.g. avoiding RDMA loopback for #13) is cleared but not fixed.
    pub fn fixed(&self) -> bool {
        self.cleared() && self.applied().iter().all(|m| m.counted_as_fixed())
    }

    /// The cumulative mitigations in effect when the final verdict was
    /// reached: every step up to and including the clearing one, or every
    /// step if the anomaly never cleared.
    pub fn applied(&self) -> Vec<Mitigation> {
        let upto = match self.cleared_by {
            Some(by) => self
                .steps
                .iter()
                .position(|s| s.mitigation == by)
                .map(|i| i + 1)
                .unwrap_or(self.steps.len()),
            None => self.steps.len(),
        };
        self.steps[..upto].iter().map(|s| s.mitigation).collect()
    }
}

/// Stable identity of a trigger for dedup and catalog lookups. Catalogued
/// triggers are identified by their anomaly-id set (so the same anomaly
/// re-found by different campaigns collapses to one record); uncatalogued
/// ones by symptom plus a hash of the canonical trigger JSON.
pub fn trigger_identity(
    subsystem: SubsystemId,
    symptom: Symptom,
    anomaly_ids: &[u32],
    trigger: &SearchPoint,
) -> String {
    if anomaly_ids.is_empty() {
        let json = serde_json::to_string(trigger).unwrap_or_default();
        format!("{subsystem:?}/{symptom:?}/{:016x}", fnv1a(json.as_bytes()))
    } else {
        let ids: Vec<String> = anomaly_ids.iter().map(|id| format!("#{id}")).collect();
        format!("{subsystem:?}/{}", ids.join("+"))
    }
}

/// The anomaly ids named by a set of ground-truth rule labels
/// (`"collie/9"` → 9), sorted and deduped.
pub fn anomaly_ids_from_rules(rules: &[String]) -> Vec<u32> {
    let mut ids: Vec<u32> = rules
        .iter()
        .filter_map(|rule| rule.strip_prefix("collie/"))
        .filter_map(|id| id.parse().ok())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Counter movement between two measurements, zero deltas omitted.
fn counters_delta(before: &Measurement, after: &Measurement) -> BTreeMap<String, f64> {
    let mut delta = BTreeMap::new();
    for (name, _, value) in after.counters.iter() {
        delta.insert(name.to_string(), value);
    }
    for (name, _, value) in before.counters.iter() {
        *delta.entry(name.to_string()).or_insert(0.0) -= value;
    }
    delta.retain(|_, d| *d != 0.0);
    delta
}

/// A discovery handed to the qualifier: the anomalous workload, its
/// symptom, and the ground-truth rules it matched (used to map it back to
/// catalogued anomalies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveredTrigger {
    /// The anomalous workload.
    pub point: SearchPoint,
    /// Its end-to-end symptom.
    pub symptom: Symptom,
    /// Ground-truth rule labels the discovery matched (may be empty).
    pub matched_rules: Vec<String>,
}

impl DiscoveredTrigger {
    /// The identity this trigger would have in a [`RegressionCatalog`]
    /// qualified against `subsystem`.
    pub fn identity(&self, subsystem: SubsystemId) -> String {
        trigger_identity(
            subsystem,
            self.symptom,
            &anomaly_ids_from_rules(&self.matched_rules),
            &self.point,
        )
    }
}

/// Runs the remediation → verification half of the loop for one subsystem.
#[derive(Debug, Clone)]
pub struct Qualifier {
    subsystem: SubsystemId,
    advisor: Advisor,
}

impl Qualifier {
    /// A qualifier armed with the anomaly catalog of `subsystem`.
    pub fn for_subsystem(subsystem: SubsystemId) -> Qualifier {
        Qualifier {
            subsystem,
            advisor: Advisor::for_subsystem(subsystem),
        }
    }

    /// The subsystem this qualifier verifies against.
    pub fn subsystem(&self) -> SubsystemId {
        self.subsystem
    }

    /// The ordered, deduped mitigation sequence to try for a trigger: the
    /// plans of the anomalies it maps to by ground truth, then the plans of
    /// every catalogued anomaly the advisor says the workload resembles.
    fn mitigation_sequence(&self, trigger: &SearchPoint, anomaly_ids: &[u32]) -> Vec<Mitigation> {
        let mut plans: Vec<RemediationPlan> = anomaly_ids
            .iter()
            .filter_map(|id| KnownAnomaly::by_id(*id))
            .map(|a| RemediationPlan::for_anomaly(&a))
            .collect();
        for plan in self.advisor.remediation_plans(trigger) {
            if !plans.iter().any(|p| p.anomaly_id == plan.anomaly_id) {
                plans.push(plan);
            }
        }
        let mut sequence = Vec::new();
        for plan in &plans {
            for m in &plan.mitigations {
                if !sequence.contains(m) {
                    sequence.push(*m);
                }
            }
        }
        sequence
    }

    /// Qualify one trigger: measure the unmitigated baseline, then apply
    /// the mitigation sequence cumulatively — one mitigation per step, each
    /// step re-measured through a memoized [`Evaluator`] on a fresh fork of
    /// `engine` — stopping at the first step that clears the anomaly.
    ///
    /// Returns `None` if the trigger is not anomalous on `engine` to begin
    /// with (nothing to remediate). A trigger with no documented
    /// mitigations yields a record with an empty step list and
    /// `cleared_by: None` — the honest "no fix exists" entry.
    pub fn qualify(
        &self,
        engine: &WorkloadEngine,
        trigger: &SearchPoint,
        matched_rules: &[String],
    ) -> Option<QualificationRecord> {
        let monitor = AnomalyMonitor::new();
        let mut baseline_engine = engine.fork();
        let (baseline, verdict) =
            Evaluator::new(&mut baseline_engine).measure_and_assess(&monitor, trigger);
        let symptom = verdict.symptom?;

        let anomaly_ids = anomaly_ids_from_rules(matched_rules);
        let sequence = self.mitigation_sequence(trigger, &anomaly_ids);

        let mut steps = Vec::new();
        let mut cleared_by = None;
        let mut applied: Vec<Mitigation> = Vec::new();
        let mut workload = trigger.clone();
        let mut previous = baseline;
        for mitigation in sequence {
            applied.push(mitigation);
            mitigation.apply_to_workload(&mut workload);
            // Fresh fork per step: the delta caches assume a fixed
            // subsystem configuration, so the cumulative mitigations are
            // applied before the fork ever measures.
            let mut stepped = engine.fork();
            for m in &applied {
                m.apply_to_subsystem(stepped.subsystem_mut());
            }
            let (measurement, verdict) =
                Evaluator::new(&mut stepped).measure_and_assess(&monitor, &workload);
            let cleared = !verdict.is_anomalous();
            steps.push(MitigationStep {
                mitigation,
                verdict: Verdict {
                    cleared,
                    residual_symptom: verdict.symptom,
                    counters_delta: counters_delta(&previous, &measurement),
                },
            });
            previous = measurement;
            if cleared {
                cleared_by = Some(mitigation);
                break;
            }
        }

        Some(QualificationRecord {
            subsystem: self.subsystem,
            anomaly_ids,
            symptom,
            trigger: trigger.clone(),
            steps,
            cleared_by,
        })
    }

    /// Qualify a catalogued anomaly against a fresh engine for its own
    /// subsystem. Panics if the catalogued trigger does not reproduce —
    /// that is a broken catalog, not a qualification outcome.
    pub fn qualify_known(&self, anomaly: &KnownAnomaly) -> QualificationRecord {
        let engine = WorkloadEngine::for_catalog(anomaly.subsystem);
        self.qualify(
            &engine,
            &anomaly.trigger,
            std::slice::from_ref(&anomaly.rule),
        )
        .unwrap_or_else(|| {
            panic!(
                "catalogued trigger of #{} did not reproduce on {:?}",
                anomaly.id, anomaly.subsystem
            )
        })
    }
}

/// One previously-cleared trigger that is anomalous again under its
/// recorded mitigations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionFlag {
    /// Identity of the regressed record (see
    /// [`QualificationRecord::identity`]).
    pub identity: String,
    /// The subsystem the record was qualified against.
    pub subsystem: SubsystemId,
    /// The catalogued anomalies involved.
    pub anomaly_ids: Vec<u32>,
    /// The symptom observed on replay.
    pub residual_symptom: Symptom,
}

/// The persistent, versioned result set of qualification runs.
///
/// Serialised as pretty JSON (`{"version": 1, "records": [...]}`); the
/// version gate makes a schema change a load error instead of silent
/// misreads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionCatalog {
    /// Format version; must equal [`REGRESSION_CATALOG_VERSION`] to load.
    pub version: u32,
    /// The qualification records, in insertion order.
    pub records: Vec<QualificationRecord>,
}

impl Default for RegressionCatalog {
    fn default() -> Self {
        RegressionCatalog::new()
    }
}

impl RegressionCatalog {
    /// An empty catalog at the current format version.
    pub fn new() -> RegressionCatalog {
        RegressionCatalog {
            version: REGRESSION_CATALOG_VERSION,
            records: Vec::new(),
        }
    }

    /// Insert or replace a record by identity.
    pub fn upsert(&mut self, record: QualificationRecord) {
        let identity = record.identity();
        match self.records.iter_mut().find(|r| r.identity() == identity) {
            Some(existing) => *existing = record,
            None => self.records.push(record),
        }
    }

    /// Look up a record by identity.
    pub fn get(&self, identity: &str) -> Option<&QualificationRecord> {
        self.records.iter().find(|r| r.identity() == identity)
    }

    /// True if the catalog already records this identity as cleared — the
    /// "skip re-reporting under a mitigated fixture" predicate campaigns
    /// consult.
    pub fn is_known_cleared(&self, identity: &str) -> bool {
        self.get(identity).is_some_and(|r| r.cleared())
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parse from JSON, rejecting version mismatches.
    pub fn from_json(text: &str) -> Result<RegressionCatalog, String> {
        let catalog: RegressionCatalog =
            serde_json::from_str(text).map_err(|e| format!("malformed regression catalog: {e}"))?;
        if catalog.version != REGRESSION_CATALOG_VERSION {
            return Err(format!(
                "regression catalog version {} is not the supported version {}",
                catalog.version, REGRESSION_CATALOG_VERSION
            ));
        }
        Ok(catalog)
    }

    /// Write the catalog to `path` as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load a catalog from `path`, failing on parse or version errors.
    pub fn load(path: &Path) -> io::Result<RegressionCatalog> {
        let text = std::fs::read_to_string(path)?;
        RegressionCatalog::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Replay every cleared record under its recorded mitigations on a
    /// fresh engine and flag the ones that are anomalous again — the
    /// "previously-cleared trigger went anomalous" half of the regression
    /// watch.
    pub fn check_regressions(&self) -> Vec<RegressionFlag> {
        let monitor = AnomalyMonitor::new();
        let mut flags = Vec::new();
        for record in self.records.iter().filter(|r| r.cleared()) {
            let mut engine = WorkloadEngine::for_catalog(record.subsystem);
            let mut workload = record.trigger.clone();
            for m in record.applied() {
                m.apply_to_subsystem(engine.subsystem_mut());
                m.apply_to_workload(&mut workload);
            }
            let (_, verdict) = Evaluator::new(&mut engine).measure_and_assess(&monitor, &workload);
            if let Some(symptom) = verdict.symptom {
                flags.push(RegressionFlag {
                    identity: record.identity(),
                    subsystem: record.subsystem,
                    anomaly_ids: record.anomaly_ids.clone(),
                    residual_symptom: symptom,
                });
            }
        }
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualify_known_clears_anomaly_3_with_raise_mtu_alone() {
        let anomaly = KnownAnomaly::by_id(3).unwrap();
        let qualifier = Qualifier::for_subsystem(anomaly.subsystem);
        let record = qualifier.qualify_known(&anomaly);
        assert_eq!(record.cleared_by, Some(Mitigation::RaiseMtu));
        assert!(record.fixed());
        assert_eq!(record.anomaly_ids, vec![3]);
        assert_eq!(record.identity(), "F/#3");
        let step = record.steps.last().unwrap();
        assert!(step.verdict.cleared);
        assert_eq!(step.verdict.residual_symptom, None);
        assert!(
            !step.verdict.counters_delta.is_empty(),
            "raising the MTU must move counters"
        );
    }

    #[test]
    fn anomaly_12_needs_both_the_acs_fix_and_relaxed_ordering() {
        // #12's trigger also sits in #9's bottleneck: the ACS fix alone
        // must be recorded as "not cleared" with a residual pause storm,
        // and the cumulative relaxed-ordering step then clears it. This is
        // exactly what all-at-once application would hide.
        let anomaly = KnownAnomaly::by_id(12).unwrap();
        let qualifier = Qualifier::for_subsystem(anomaly.subsystem);
        let record = qualifier.qualify_known(&anomaly);
        assert_eq!(
            record.steps[0].mitigation,
            Mitigation::FixAcsConfiguration,
            "{record:?}"
        );
        assert!(!record.steps[0].verdict.cleared);
        assert_eq!(
            record.steps[0].verdict.residual_symptom,
            Some(Symptom::PauseStorm)
        );
        assert_eq!(record.cleared_by, Some(Mitigation::ForceRelaxedOrdering));
        assert!(record.fixed(), "both steps are documented fixes");
        assert_eq!(
            record.applied(),
            vec![
                Mitigation::FixAcsConfiguration,
                Mitigation::ForceRelaxedOrdering
            ]
        );
    }

    #[test]
    fn bypass_only_anomaly_13_is_cleared_but_not_fixed() {
        let anomaly = KnownAnomaly::by_id(13).unwrap();
        let qualifier = Qualifier::for_subsystem(anomaly.subsystem);
        let record = qualifier.qualify_known(&anomaly);
        assert_eq!(record.cleared_by, Some(Mitigation::AvoidLoopbackViaIpc));
        assert!(record.cleared());
        assert!(!record.fixed(), "a workload bypass is not a fix");
    }

    #[test]
    fn unfixable_anomaly_is_recorded_honestly() {
        let anomaly = KnownAnomaly::by_id(4).unwrap();
        let qualifier = Qualifier::for_subsystem(anomaly.subsystem);
        let record = qualifier.qualify_known(&anomaly);
        assert!(record.steps.is_empty(), "#4 has no documented mitigation");
        assert_eq!(record.cleared_by, None);
        assert!(!record.cleared());
    }

    #[test]
    fn benign_points_do_not_qualify() {
        let qualifier = Qualifier::for_subsystem(SubsystemId::F);
        let engine = WorkloadEngine::for_catalog(SubsystemId::F);
        assert_eq!(
            qualifier.qualify(&engine, &SearchPoint::benign(), &[]),
            None
        );
    }

    #[test]
    fn catalog_round_trips_and_rejects_version_drift() {
        let anomaly = KnownAnomaly::by_id(3).unwrap();
        let qualifier = Qualifier::for_subsystem(anomaly.subsystem);
        let mut catalog = RegressionCatalog::new();
        catalog.upsert(qualifier.qualify_known(&anomaly));
        let back = RegressionCatalog::from_json(&catalog.to_json()).unwrap();
        assert_eq!(back, catalog);
        assert!(back.is_known_cleared("F/#3"));
        assert!(!back.is_known_cleared("F/#4"));

        let mut drifted = catalog.clone();
        drifted.version += 1;
        let err = RegressionCatalog::from_json(&drifted.to_json()).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn upsert_replaces_by_identity() {
        let anomaly = KnownAnomaly::by_id(3).unwrap();
        let qualifier = Qualifier::for_subsystem(anomaly.subsystem);
        let record = qualifier.qualify_known(&anomaly);
        let mut catalog = RegressionCatalog::new();
        catalog.upsert(record.clone());
        catalog.upsert(record);
        assert_eq!(catalog.records.len(), 1);
    }

    #[test]
    fn regression_check_passes_honest_records_and_flags_stale_claims() {
        let qualifier = Qualifier::for_subsystem(SubsystemId::F);
        let mut catalog = RegressionCatalog::new();
        catalog.upsert(qualifier.qualify_known(&KnownAnomaly::by_id(3).unwrap()));
        catalog.upsert(qualifier.qualify_known(&KnownAnomaly::by_id(4).unwrap()));
        assert_eq!(catalog.check_regressions(), vec![]);

        // A record claiming #3 cleared with no mitigation applied is what a
        // rollback looks like: the replay must flag it.
        let mut stale = catalog.get("F/#3").unwrap().clone();
        stale.steps.clear();
        stale.cleared_by = Some(Mitigation::RaiseMtu);
        catalog.upsert(stale);
        let flags = catalog.check_regressions();
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert_eq!(flags[0].identity, "F/#3");
        assert_eq!(flags[0].anomaly_ids, vec![3]);
    }

    #[test]
    fn identities_distinguish_catalogued_and_uncatalogued_triggers() {
        let anomaly = KnownAnomaly::by_id(9).unwrap();
        assert_eq!(
            trigger_identity(SubsystemId::F, anomaly.symptom, &[9], &anomaly.trigger),
            "F/#9"
        );
        assert_eq!(
            trigger_identity(SubsystemId::F, anomaly.symptom, &[9, 12], &anomaly.trigger),
            "F/#9+#12"
        );
        let unc = trigger_identity(SubsystemId::F, anomaly.symptom, &[], &anomaly.trigger);
        assert!(unc.starts_with("F/PauseStorm/"), "{unc}");
        assert_eq!(
            anomaly_ids_from_rules(&["collie/12".into(), "collie/9".into()]),
            vec![9, 12]
        );
    }
}
