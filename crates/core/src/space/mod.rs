//! The workload search space (§4 of the paper).
//!
//! Collie constructs its search space from the developer's point of view:
//! every RDMA workload is a combination of verbs-level decisions, grouped
//! into four dimensions —
//!
//! 1. **host topology** — where traffic originates and lands (NUMA-local
//!    DRAM, remote-socket DRAM, GPU memory), whether traffic runs in both
//!    directions, and whether a collocated (loopback) flow coexists;
//! 2. **memory allocation** — how many MRs are registered and how large
//!    they are;
//! 3. **transport setting** — QP type, opcode, number of QPs, WQE batch
//!    size, SG list length, queue depths, and path MTU;
//! 4. **message pattern** — the repeating vector of request sizes.
//!
//! [`SearchPoint`] is one point in that space, [`SearchSpace`] carries the
//! bounded value ladders and knows how to sample and mutate points, and
//! [`Feature`] names the individual coordinates (the unit the MFS algorithm
//! reasons about).

mod fabric;
mod feature;
mod ladder;
mod point;
mod restrict;

pub use fabric::{FabricFeature, FabricPoint, FabricSpace};
pub use feature::{Dimension, Feature, FeatureValue};
pub use ladder::Ladders;
pub use point::SearchPoint;
pub use restrict::SpaceRestriction;

use collie_host::memory::MemoryTarget;
use collie_host::topology::HostConfig;
use collie_rnic::workload::{Opcode, Transport};
use collie_sim::rng::SimRng;

/// The bounded search space for one subsystem.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Value ladders for the numeric features.
    pub ladders: Ladders,
    /// Memory targets available on the hosts (Dimension 1 candidates).
    pub memory_targets: Vec<MemoryTarget>,
    /// Valid (transport, opcode) combinations.
    pub transports: Vec<(Transport, Opcode)>,
    /// Optional restriction applied by the advisor workflow (§7.3).
    pub restriction: Option<SpaceRestriction>,
}

impl SearchSpace {
    /// The full search space for a subsystem whose hosts look like `host`.
    pub fn for_host(host: &HostConfig) -> SearchSpace {
        let mut transports = Vec::new();
        for t in Transport::ALL {
            for o in Opcode::ALL {
                if o.valid_on(t) {
                    transports.push((t, o));
                }
            }
        }
        SearchSpace {
            ladders: Ladders::default(),
            memory_targets: host.memory_targets(),
            transports,
            restriction: None,
        }
    }

    /// Apply an application-level restriction (anomaly-prevention workflow).
    pub fn restricted(mut self, restriction: SpaceRestriction) -> SearchSpace {
        self.restriction = Some(restriction);
        self
    }

    /// Draw a uniform random point from the space (respecting any
    /// restriction).
    pub fn random_point(&self, rng: &mut SimRng) -> SearchPoint {
        let mut point = self.unrestricted_random_point(rng);
        if let Some(r) = &self.restriction {
            r.clamp(&mut point, self, rng);
        }
        point
    }

    fn unrestricted_random_point(&self, rng: &mut SimRng) -> SearchPoint {
        let (transport, opcode) = *rng.choose(&self.transports);
        let pattern_len = rng.gen_range_u64(1, 4) as usize;
        let messages: Vec<u64> = (0..pattern_len)
            .map(|_| *rng.choose(&self.ladders.message_sizes))
            .collect();
        SearchPoint {
            src_memory: *rng.choose(&self.memory_targets),
            dst_memory: *rng.choose(&self.memory_targets),
            bidirectional: rng.gen_bool(0.5),
            with_loopback: rng.gen_bool(0.2),
            mrs_per_qp: *rng.choose(&self.ladders.mrs_per_qp),
            mr_size_bytes: *rng.choose(&self.ladders.mr_sizes),
            transport,
            opcode,
            num_qps: *rng.choose(&self.ladders.num_qps),
            wqe_batch: *rng.choose(&self.ladders.wqe_batch),
            sge_per_wqe: *rng.choose(&self.ladders.sge_per_wqe),
            send_queue_depth: *rng.choose(&self.ladders.queue_depths),
            recv_queue_depth: *rng.choose(&self.ladders.queue_depths),
            mtu: *rng.choose(&self.ladders.mtus),
            messages,
        }
    }

    /// Mutate one randomly chosen feature of `point`, staying inside the
    /// space (Algorithm 1, line 4: "mutate P_old in one of our search
    /// dimensions").
    pub fn mutate(&self, point: &SearchPoint, rng: &mut SimRng) -> SearchPoint {
        let mut next = point.clone();
        let feature = *rng.choose(&Feature::ALL);
        self.mutate_feature(&mut next, feature, rng);
        if let Some(r) = &self.restriction {
            r.clamp(&mut next, self, rng);
        }
        next
    }

    /// Mutate one specific feature (used by the MFS probing logic as well).
    pub fn mutate_feature(&self, point: &mut SearchPoint, feature: Feature, rng: &mut SimRng) {
        match feature {
            Feature::SrcMemory => point.src_memory = *rng.choose(&self.memory_targets),
            Feature::DstMemory => point.dst_memory = *rng.choose(&self.memory_targets),
            Feature::Bidirectional => point.bidirectional = !point.bidirectional,
            Feature::Loopback => point.with_loopback = !point.with_loopback,
            Feature::MrsPerQp => {
                point.mrs_per_qp = ladder::step(&self.ladders.mrs_per_qp, point.mrs_per_qp, rng)
            }
            Feature::MrSize => {
                point.mr_size_bytes = ladder::step(&self.ladders.mr_sizes, point.mr_size_bytes, rng)
            }
            Feature::Transport => {
                let (t, o) = *rng.choose(&self.transports);
                point.transport = t;
                point.opcode = o;
            }
            Feature::Opcode => {
                let valid: Vec<Opcode> = Opcode::ALL
                    .into_iter()
                    .filter(|o| o.valid_on(point.transport))
                    .collect();
                point.opcode = *rng.choose(&valid);
            }
            Feature::NumQps => {
                point.num_qps = ladder::step(&self.ladders.num_qps, point.num_qps, rng)
            }
            Feature::WqeBatch => {
                point.wqe_batch = ladder::step(&self.ladders.wqe_batch, point.wqe_batch, rng)
            }
            Feature::SgePerWqe => {
                point.sge_per_wqe = ladder::step(&self.ladders.sge_per_wqe, point.sge_per_wqe, rng)
            }
            Feature::SendQueueDepth => {
                point.send_queue_depth =
                    ladder::step(&self.ladders.queue_depths, point.send_queue_depth, rng)
            }
            Feature::RecvQueueDepth => {
                point.recv_queue_depth =
                    ladder::step(&self.ladders.queue_depths, point.recv_queue_depth, rng)
            }
            Feature::Mtu => point.mtu = ladder::step(&self.ladders.mtus, point.mtu, rng),
            Feature::MessagePattern => {
                self.mutate_pattern(point, rng);
            }
        }
    }

    fn mutate_pattern(&self, point: &mut SearchPoint, rng: &mut SimRng) {
        let sizes = &self.ladders.message_sizes;
        match rng.gen_index(3) {
            // Resize one request.
            0 => {
                let idx = rng.gen_index(point.messages.len());
                point.messages[idx] = *rng.choose(sizes);
            }
            // Append a request (bounded by the RNIC request window; we keep
            // the window small since longer windows only repeat patterns).
            1 => {
                if point.messages.len() < 8 {
                    point.messages.push(*rng.choose(sizes));
                } else {
                    let idx = rng.gen_index(point.messages.len());
                    point.messages[idx] = *rng.choose(sizes);
                }
            }
            // Drop a request.
            _ => {
                if point.messages.len() > 1 {
                    let idx = rng.gen_index(point.messages.len());
                    point.messages.remove(idx);
                } else {
                    point.messages[0] = *rng.choose(sizes);
                }
            }
        }
    }

    /// Candidate alternative values for a feature, used by the MFS
    /// algorithm when probing whether a feature is necessary. For numeric
    /// features these are the other rungs of its ladder; for categorical
    /// features, the other categories.
    pub fn alternatives(&self, point: &SearchPoint, feature: Feature) -> Vec<FeatureValue> {
        match feature {
            Feature::SrcMemory => self
                .memory_targets
                .iter()
                .filter(|t| **t != point.src_memory)
                .map(|t| FeatureValue::Memory(*t))
                .collect(),
            Feature::DstMemory => self
                .memory_targets
                .iter()
                .filter(|t| **t != point.dst_memory)
                .map(|t| FeatureValue::Memory(*t))
                .collect(),
            Feature::Bidirectional => vec![FeatureValue::Flag(!point.bidirectional)],
            Feature::Loopback => vec![FeatureValue::Flag(!point.with_loopback)],
            Feature::Transport => self
                .transports
                .iter()
                .filter(|(t, _)| *t != point.transport)
                .map(|(t, o)| FeatureValue::TransportOpcode(*t, *o))
                .collect(),
            Feature::Opcode => Opcode::ALL
                .into_iter()
                .filter(|o| *o != point.opcode && o.valid_on(point.transport))
                .map(|o| FeatureValue::TransportOpcode(point.transport, o))
                .collect(),
            Feature::NumQps => ladder_alternatives(&self.ladders.num_qps, point.num_qps),
            Feature::WqeBatch => ladder_alternatives(&self.ladders.wqe_batch, point.wqe_batch),
            Feature::SgePerWqe => ladder_alternatives(&self.ladders.sge_per_wqe, point.sge_per_wqe),
            Feature::SendQueueDepth => {
                ladder_alternatives(&self.ladders.queue_depths, point.send_queue_depth)
            }
            Feature::RecvQueueDepth => {
                ladder_alternatives(&self.ladders.queue_depths, point.recv_queue_depth)
            }
            Feature::Mtu => ladder_alternatives(&self.ladders.mtus, point.mtu),
            Feature::MrsPerQp => ladder_alternatives(&self.ladders.mrs_per_qp, point.mrs_per_qp),
            Feature::MrSize => ladder_alternatives(&self.ladders.mr_sizes, point.mr_size_bytes),
            Feature::MessagePattern => {
                let uniform_small = FeatureValue::Pattern(vec![1024]);
                let uniform_large = FeatureValue::Pattern(vec![65536]);
                vec![uniform_small, uniform_large]
            }
        }
    }

    /// Size of the discretised space actually explored by the mutation
    /// operators (each feature contributes its ladder length).
    pub fn effective_cardinality(&self) -> f64 {
        let l = &self.ladders;
        let memory = self.memory_targets.len() as f64;
        let pattern = (l.message_sizes.len() as f64).powi(8);
        memory
            * memory
            * 2.0
            * 2.0
            * self.transports.len() as f64
            * l.num_qps.len() as f64
            * l.wqe_batch.len() as f64
            * l.sge_per_wqe.len() as f64
            * l.queue_depths.len() as f64
            * l.queue_depths.len() as f64
            * l.mtus.len() as f64
            * l.mrs_per_qp.len() as f64
            * l.mr_sizes.len() as f64
            * pattern
    }

    /// Size of the nominal search space with the paper's raw bounds (up to
    /// 20 K QPs, 200 K MRs, request sizes discretised into 16 regions over
    /// the request window the mutation operator explores), which is where
    /// the "order of 10^36" figure in §5 comes from.
    pub fn nominal_cardinality(&self) -> f64 {
        let memory = self.memory_targets.len().max(2) as f64;
        let qps = 20_000.0;
        let mrs = 200_000.0;
        let mr_sizes = 1_024.0;
        let transports = self.transports.len() as f64;
        let batches = 128.0;
        let sges = 16.0;
        let depths = 16_384.0;
        let mtus = 5.0;
        // Request sizes discretised by MTU/burst boundaries (16 regions)
        // over the 8-request window the mutation operator explores. (The
        // full `PU × pipeline stages` window of the fastest parts would
        // inflate the bound far beyond the paper's own estimate.)
        let pattern = 16f64.powi(8);
        memory
            * memory
            * transports
            * qps
            * mrs
            * mr_sizes
            * batches
            * sges
            * depths
            * depths
            * mtus
            * pattern
    }
}

pub(crate) fn ladder_alternatives<T: Copy + PartialEq + Into<u64>>(
    ladder: &[T],
    current: T,
) -> Vec<FeatureValue> {
    ladder
        .iter()
        .filter(|v| **v != current)
        .map(|v| FeatureValue::Number((*v).into()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_host::presets;
    use collie_sim::units::ByteSize;

    fn space() -> SearchSpace {
        let host = presets::intel_xeon_gpu_host("t", ByteSize::from_gib(2048), true);
        SearchSpace::for_host(&host)
    }

    #[test]
    fn transports_only_contain_valid_pairs() {
        let s = space();
        assert!(s.transports.contains(&(Transport::Rc, Opcode::Read)));
        assert!(!s.transports.contains(&(Transport::Ud, Opcode::Write)));
        assert!(!s.transports.contains(&(Transport::Uc, Opcode::Read)));
        assert_eq!(s.transports.len(), 6);
    }

    #[test]
    fn random_points_are_valid_and_varied() {
        let s = space();
        let mut rng = SimRng::new(1);
        let mut transports = std::collections::HashSet::new();
        for _ in 0..200 {
            let p = s.random_point(&mut rng);
            assert!(p.is_well_formed(&s), "{p:?}");
            transports.insert(format!("{}-{}", p.transport, p.opcode));
        }
        assert!(transports.len() >= 4, "sampling should cover transports");
    }

    #[test]
    fn mutation_changes_at_most_one_dimension_family() {
        let s = space();
        let mut rng = SimRng::new(7);
        let base = s.random_point(&mut rng);
        for _ in 0..100 {
            let next = s.mutate(&base, &mut rng);
            assert!(next.is_well_formed(&s));
            let differing = Feature::ALL
                .iter()
                .filter(|f| base.feature_value(**f) != next.feature_value(**f))
                .count();
            // Transport mutation may change opcode too; everything else
            // changes a single coordinate.
            assert!(differing <= 2, "mutation changed {differing} features");
        }
    }

    #[test]
    fn memory_targets_include_gpus_when_present() {
        let s = space();
        assert!(s.memory_targets.iter().any(|t| t.is_gpu()));
        let no_gpu_host = presets::intel_xeon_host("t", 2, ByteSize::from_gib(768), false);
        let s2 = SearchSpace::for_host(&no_gpu_host);
        assert!(s2.memory_targets.iter().all(|t| !t.is_gpu()));
    }

    #[test]
    fn cardinalities_are_large() {
        let s = space();
        assert!(s.effective_cardinality() > 1e15);
        let nominal = s.nominal_cardinality();
        assert!(
            nominal > 1e30,
            "nominal cardinality should be on the order of the paper's 10^36, got {nominal:e}"
        );
    }

    #[test]
    fn alternatives_exclude_current_value() {
        let s = space();
        let mut rng = SimRng::new(3);
        let p = s.random_point(&mut rng);
        for f in Feature::ALL {
            for alt in s.alternatives(&p, f) {
                let mut probe = p.clone();
                probe.apply(f, &alt);
                assert_ne!(
                    probe.feature_value(f),
                    p.feature_value(f),
                    "alternative for {f:?} did not change the point"
                );
            }
        }
    }

    #[test]
    fn mutate_feature_hits_every_feature() {
        let s = space();
        let mut rng = SimRng::new(11);
        for f in Feature::ALL {
            let mut p = s.random_point(&mut rng);
            // Mutating a specific feature keeps the point well-formed.
            s.mutate_feature(&mut p, f, &mut rng);
            assert!(p.is_well_formed(&s), "feature {f:?} broke the point");
        }
    }
}
