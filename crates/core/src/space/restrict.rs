//! Application-level space restrictions (§7.3, anomaly prevention).
//!
//! Before an application is implemented, its developers know roughly what
//! workloads it can generate: which transports it will use, how many
//! connections it opens, how large its messages are. Collie lets them
//! restrict the search space to that envelope and then reports whether any
//! anomaly lies inside it. [`SpaceRestriction`] is that envelope.

use super::point::SearchPoint;
use super::SearchSpace;
use collie_rnic::workload::{Opcode, Transport};
use collie_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A developer-supplied envelope of the workloads an application can emit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SpaceRestriction {
    /// Transports the application uses (empty = unrestricted).
    pub transports: Vec<Transport>,
    /// Opcodes the application uses (empty = unrestricted).
    pub opcodes: Vec<Opcode>,
    /// Upper bound on the number of QPs, if known.
    pub max_qps: Option<u32>,
    /// Upper bound on the WQE batch size, if known.
    pub max_wqe_batch: Option<u32>,
    /// Upper bound on the SG list length, if known.
    pub max_sge: Option<u32>,
    /// Upper bound on the receive queue depth, if known.
    pub max_recv_queue_depth: Option<u32>,
    /// Whether the application ever generates bidirectional traffic.
    pub allow_bidirectional: bool,
    /// Whether the application can be collocated with its peer (loopback).
    pub allow_loopback: bool,
    /// Whether the application registers GPU memory.
    pub allow_gpu_memory: bool,
}

impl SpaceRestriction {
    /// An unrestricted envelope (everything allowed).
    pub fn unrestricted() -> Self {
        SpaceRestriction {
            allow_bidirectional: true,
            allow_loopback: true,
            allow_gpu_memory: true,
            ..Default::default()
        }
    }

    /// The envelope of the paper's RC-only RPC library (§7.3): reliable
    /// connections only, no GPU memory, bounded connection counts.
    pub fn rpc_library() -> Self {
        SpaceRestriction {
            transports: vec![Transport::Rc],
            opcodes: vec![Opcode::Send, Opcode::Write, Opcode::Read],
            max_qps: Some(512),
            max_wqe_batch: None,
            max_sge: None,
            max_recv_queue_depth: None,
            allow_bidirectional: true,
            allow_loopback: false,
            allow_gpu_memory: false,
        }
    }

    /// True if `point` lies inside the envelope.
    pub fn allows(&self, point: &SearchPoint) -> bool {
        (self.transports.is_empty() || self.transports.contains(&point.transport))
            && (self.opcodes.is_empty() || self.opcodes.contains(&point.opcode))
            && self.max_qps.map_or(true, |m| point.num_qps <= m)
            && self.max_wqe_batch.map_or(true, |m| point.wqe_batch <= m)
            && self.max_sge.map_or(true, |m| point.sge_per_wqe <= m)
            && self
                .max_recv_queue_depth
                .map_or(true, |m| point.recv_queue_depth <= m)
            && (self.allow_bidirectional || !point.bidirectional)
            && (self.allow_loopback || !point.with_loopback)
            && (self.allow_gpu_memory || (!point.src_memory.is_gpu() && !point.dst_memory.is_gpu()))
    }

    /// Pull a point back inside the envelope (used after random sampling or
    /// mutation so the restricted search never leaves the envelope).
    pub fn clamp(&self, point: &mut SearchPoint, space: &SearchSpace, rng: &mut SimRng) {
        if !self.transports.is_empty() && !self.transports.contains(&point.transport) {
            let candidates: Vec<(Transport, Opcode)> = space
                .transports
                .iter()
                .copied()
                .filter(|(t, _)| self.transports.contains(t))
                .collect();
            if !candidates.is_empty() {
                let (t, o) = *rng.choose(&candidates);
                point.transport = t;
                point.opcode = o;
            }
        }
        if !self.opcodes.is_empty() && !self.opcodes.contains(&point.opcode) {
            let candidates: Vec<Opcode> = self
                .opcodes
                .iter()
                .copied()
                .filter(|o| o.valid_on(point.transport))
                .collect();
            if !candidates.is_empty() {
                point.opcode = *rng.choose(&candidates);
            }
        }
        if let Some(m) = self.max_qps {
            point.num_qps = point.num_qps.min(m);
        }
        if let Some(m) = self.max_wqe_batch {
            point.wqe_batch = point.wqe_batch.min(m);
        }
        if let Some(m) = self.max_sge {
            point.sge_per_wqe = point.sge_per_wqe.min(m);
        }
        if let Some(m) = self.max_recv_queue_depth {
            point.recv_queue_depth = point.recv_queue_depth.min(m);
        }
        if !self.allow_bidirectional {
            point.bidirectional = false;
        }
        if !self.allow_loopback {
            point.with_loopback = false;
        }
        if !self.allow_gpu_memory {
            if point.src_memory.is_gpu() {
                point.src_memory = collie_host::memory::MemoryTarget::local_dram();
            }
            if point.dst_memory.is_gpu() {
                point.dst_memory = collie_host::memory::MemoryTarget::local_dram();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_host::memory::MemoryTarget;
    use collie_host::presets;
    use collie_sim::units::ByteSize;

    fn space() -> SearchSpace {
        SearchSpace::for_host(&presets::intel_xeon_gpu_host(
            "t",
            ByteSize::from_gib(512),
            true,
        ))
    }

    #[test]
    fn rpc_envelope_rejects_ud_and_gpu_points() {
        let r = SpaceRestriction::rpc_library();
        let mut p = SearchPoint::benign();
        assert!(r.allows(&p));
        p.transport = Transport::Ud;
        p.opcode = Opcode::Send;
        assert!(!r.allows(&p));
        p.transport = Transport::Rc;
        p.dst_memory = MemoryTarget::GpuMemory { gpu_id: 0 };
        assert!(!r.allows(&p));
    }

    #[test]
    fn clamp_brings_points_inside() {
        let r = SpaceRestriction::rpc_library();
        let s = space().restricted(r.clone());
        let mut rng = SimRng::new(9);
        for _ in 0..200 {
            let p = s.random_point(&mut rng);
            assert!(r.allows(&p), "restricted sampling left the envelope: {p}");
            let q = s.mutate(&p, &mut rng);
            assert!(r.allows(&q), "restricted mutation left the envelope: {q}");
        }
    }

    #[test]
    fn unrestricted_allows_everything_sampled() {
        let r = SpaceRestriction::unrestricted();
        let s = space();
        let mut rng = SimRng::new(10);
        for _ in 0..100 {
            assert!(r.allows(&s.random_point(&mut rng)));
        }
    }

    #[test]
    fn numeric_bounds_are_enforced() {
        let r = SpaceRestriction {
            max_qps: Some(16),
            max_wqe_batch: Some(4),
            allow_bidirectional: true,
            allow_loopback: true,
            allow_gpu_memory: true,
            ..Default::default()
        };
        let mut p = SearchPoint::benign();
        p.num_qps = 1024;
        p.wqe_batch = 64;
        assert!(!r.allows(&p));
        let s = space();
        let mut rng = SimRng::new(11);
        r.clamp(&mut p, &s, &mut rng);
        assert!(p.num_qps <= 16 && p.wqe_batch <= 4);
        assert!(r.allows(&p));
    }
}
