//! Bounded value ladders for the numeric features.
//!
//! The paper bounds every dimension (at most 20 K QPs, at most 200 K MRs,
//! request sizes discretised by MTU and burst boundaries). Mutation moves a
//! value one rung up or down its ladder, which is what gives simulated
//! annealing a meaningful notion of a "neighbouring" workload.

use collie_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// The value ladders of the numeric features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ladders {
    /// Candidate QP counts (bounded by the 20 K limit of §4).
    pub num_qps: Vec<u32>,
    /// Candidate WQE batch sizes.
    pub wqe_batch: Vec<u32>,
    /// Candidate SG list lengths.
    pub sge_per_wqe: Vec<u32>,
    /// Candidate send/receive queue depths.
    pub queue_depths: Vec<u32>,
    /// Valid RDMA path MTUs.
    pub mtus: Vec<u32>,
    /// Candidate MR counts per QP (bounded so the total stays below 200 K).
    pub mrs_per_qp: Vec<u32>,
    /// Candidate MR sizes in bytes.
    pub mr_sizes: Vec<u64>,
    /// Candidate request sizes in bytes (discretised around MTU and burst
    /// boundaries as §4 describes).
    pub message_sizes: Vec<u64>,
}

impl Default for Ladders {
    fn default() -> Self {
        Ladders {
            num_qps: vec![
                1, 2, 4, 8, 16, 32, 64, 80, 128, 160, 256, 320, 480, 512, 640, 1024, 1536, 2048,
            ],
            wqe_batch: vec![1, 2, 4, 8, 16, 32, 64, 128],
            sge_per_wqe: vec![1, 2, 3, 4, 8, 16],
            queue_depths: vec![16, 32, 64, 128, 256, 512, 1024, 2048],
            mtus: vec![256, 512, 1024, 2048, 4096],
            mrs_per_qp: vec![1, 2, 8, 32, 128, 512, 1024],
            mr_sizes: vec![
                4 * 1024,
                16 * 1024,
                64 * 1024,
                256 * 1024,
                1024 * 1024,
                4 * 1024 * 1024,
            ],
            message_sizes: vec![
                64,
                128,
                256,
                512,
                1024,
                2048,
                4096,
                8192,
                16 * 1024,
                64 * 1024,
                256 * 1024,
                1024 * 1024,
                4 * 1024 * 1024,
            ],
        }
    }
}

/// Move `current` one rung up or down `ladder` (uniformly choosing the
/// direction; at an end of the ladder the move goes inward). If `current`
/// is not exactly on the ladder the nearest rung is used as the starting
/// position.
pub fn step<T>(ladder: &[T], current: T, rng: &mut SimRng) -> T
where
    T: Copy + PartialOrd,
{
    assert!(!ladder.is_empty(), "ladder must not be empty");
    // Find the nearest rung at or above `current` (ladders are ascending).
    let mut idx = ladder
        .iter()
        .position(|v| *v >= current)
        .unwrap_or(ladder.len() - 1);
    if idx > 0 && ladder[idx] > current {
        // `current` sits between rungs; half the time start from the rung
        // below so both neighbours stay reachable.
        if rng.gen_bool(0.5) {
            idx -= 1;
        }
    }
    let up = rng.gen_bool(0.5);
    let next = if up {
        (idx + 1).min(ladder.len() - 1)
    } else {
        idx.saturating_sub(1)
    };
    if next == idx {
        // Bounce off the end of the ladder.
        if up {
            ladder[idx.saturating_sub(1)]
        } else {
            ladder[(idx + 1).min(ladder.len() - 1)]
        }
    } else {
        ladder[next]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_sorted_and_bounded() {
        let l = Ladders::default();
        for ladder in [
            &l.num_qps,
            &l.wqe_batch,
            &l.sge_per_wqe,
            &l.queue_depths,
            &l.mtus,
            &l.mrs_per_qp,
        ] {
            assert!(
                ladder.windows(2).all(|w| w[0] < w[1]),
                "{ladder:?} not ascending"
            );
        }
        assert!(l.num_qps.iter().all(|&q| q <= 20_000));
        assert!(l
            .mrs_per_qp
            .iter()
            .zip(l.num_qps.iter())
            .all(|(&m, &q)| (m as u64) * (q as u64) <= 200_000 * 128));
        assert!(l.mtus == vec![256, 512, 1024, 2048, 4096]);
    }

    #[test]
    fn step_moves_to_adjacent_rung() {
        let l = Ladders::default();
        let mut rng = SimRng::new(5);
        for _ in 0..200 {
            let next = step(&l.wqe_batch, 16, &mut rng);
            assert!(next == 8 || next == 32, "unexpected step target {next}");
        }
    }

    #[test]
    fn step_at_ladder_ends_moves_inward() {
        let l = Ladders::default();
        let mut rng = SimRng::new(6);
        for _ in 0..50 {
            let from_bottom = step(&l.wqe_batch, 1, &mut rng);
            assert_eq!(from_bottom, 2);
            let from_top = step(&l.wqe_batch, 128, &mut rng);
            assert_eq!(from_top, 64);
        }
    }

    #[test]
    fn step_from_off_ladder_value_lands_on_ladder() {
        let l = Ladders::default();
        let mut rng = SimRng::new(7);
        for _ in 0..100 {
            let next = step(&l.num_qps, 100, &mut rng);
            assert!(l.num_qps.contains(&next));
        }
    }
}
