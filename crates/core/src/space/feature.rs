//! Feature names and values.
//!
//! A [`Feature`] is one coordinate of the search space — the unit the MFS
//! algorithm tests for necessity and the unit the mutation operator
//! perturbs. Features group into the paper's four [`Dimension`]s.

use collie_host::memory::MemoryTarget;
use collie_rnic::fabric::TrafficPattern;
use collie_rnic::workload::{Opcode, Transport};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's four search dimensions, plus the fabric dimension the
/// multi-host campaigns add on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dimension {
    /// Dimension 1: where traffic comes from and goes to.
    HostTopology,
    /// Dimension 2: memory-region allocation settings.
    MemoryAllocation,
    /// Dimension 3: transport settings.
    Transport,
    /// Dimension 4: the request-size pattern.
    MessagePattern,
    /// Dimension 5 (this reproduction's multi-host extension): fabric
    /// scale and traffic-matrix shape.
    Fabric,
}

/// One coordinate of a search point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Feature {
    /// Memory device the sender reads payloads from.
    SrcMemory,
    /// Memory device the receiver writes payloads into.
    DstMemory,
    /// Whether traffic runs in both directions.
    Bidirectional,
    /// Whether a collocated (loopback) flow coexists with the remote flow.
    Loopback,
    /// Memory regions registered per QP.
    MrsPerQp,
    /// Size of each memory region.
    MrSize,
    /// QP transport type (mutating it may also change the opcode to stay
    /// valid).
    Transport,
    /// Operation code.
    Opcode,
    /// Number of QPs.
    NumQps,
    /// Work requests posted per doorbell.
    WqeBatch,
    /// Scatter/gather entries per work request.
    SgePerWqe,
    /// Send queue depth.
    SendQueueDepth,
    /// Receive queue depth.
    RecvQueueDepth,
    /// Path MTU.
    Mtu,
    /// The request-size vector.
    MessagePattern,
}

impl Feature {
    /// Every feature, in a stable order.
    pub const ALL: [Feature; 15] = [
        Feature::SrcMemory,
        Feature::DstMemory,
        Feature::Bidirectional,
        Feature::Loopback,
        Feature::MrsPerQp,
        Feature::MrSize,
        Feature::Transport,
        Feature::Opcode,
        Feature::NumQps,
        Feature::WqeBatch,
        Feature::SgePerWqe,
        Feature::SendQueueDepth,
        Feature::RecvQueueDepth,
        Feature::Mtu,
        Feature::MessagePattern,
    ];

    /// Which of the paper's four dimensions this feature belongs to.
    pub fn dimension(self) -> Dimension {
        match self {
            Feature::SrcMemory
            | Feature::DstMemory
            | Feature::Bidirectional
            | Feature::Loopback => Dimension::HostTopology,
            Feature::MrsPerQp | Feature::MrSize => Dimension::MemoryAllocation,
            Feature::Transport
            | Feature::Opcode
            | Feature::NumQps
            | Feature::WqeBatch
            | Feature::SgePerWqe
            | Feature::SendQueueDepth
            | Feature::RecvQueueDepth
            | Feature::Mtu => Dimension::Transport,
            Feature::MessagePattern => Dimension::MessagePattern,
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Feature::SrcMemory => "source memory",
            Feature::DstMemory => "destination memory",
            Feature::Bidirectional => "bidirectional traffic",
            Feature::Loopback => "loopback co-existence",
            Feature::MrsPerQp => "MRs per QP",
            Feature::MrSize => "MR size",
            Feature::Transport => "transport",
            Feature::Opcode => "opcode",
            Feature::NumQps => "number of QPs",
            Feature::WqeBatch => "WQE batch size",
            Feature::SgePerWqe => "SG entries per WQE",
            Feature::SendQueueDepth => "send queue depth",
            Feature::RecvQueueDepth => "receive queue depth",
            Feature::Mtu => "MTU",
            Feature::MessagePattern => "message pattern",
        };
        write!(f, "{name}")
    }
}

/// A concrete value of one feature (the currency of MFS probing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureValue {
    /// A numeric value (QP counts, batch sizes, depths, sizes in bytes).
    Number(u64),
    /// A boolean toggle (bidirectional, loopback).
    Flag(bool),
    /// A memory target.
    Memory(MemoryTarget),
    /// A transport/opcode pair (changed together to remain valid).
    TransportOpcode(Transport, Opcode),
    /// A request-size vector.
    Pattern(Vec<u64>),
    /// A fabric traffic-matrix shape.
    Traffic(TrafficPattern),
}

impl fmt::Display for FeatureValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureValue::Number(n) => write!(f, "{n}"),
            FeatureValue::Flag(b) => write!(f, "{b}"),
            FeatureValue::Memory(m) => write!(f, "{m}"),
            FeatureValue::TransportOpcode(t, o) => write!(f, "{t} {o}"),
            FeatureValue::Pattern(sizes) => write!(f, "{sizes:?}"),
            FeatureValue::Traffic(pattern) => write!(f, "{pattern}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_feature_maps_to_a_dimension() {
        let mut per_dimension = std::collections::HashMap::new();
        for f in Feature::ALL {
            *per_dimension.entry(f.dimension()).or_insert(0usize) += 1;
        }
        assert_eq!(per_dimension.len(), 4, "all four dimensions are populated");
        assert_eq!(per_dimension[&Dimension::HostTopology], 4);
        assert_eq!(per_dimension[&Dimension::MemoryAllocation], 2);
        assert_eq!(per_dimension[&Dimension::Transport], 8);
        assert_eq!(per_dimension[&Dimension::MessagePattern], 1);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Feature::NumQps.to_string(), "number of QPs");
        assert_eq!(FeatureValue::Number(64).to_string(), "64");
        assert_eq!(FeatureValue::Flag(true).to_string(), "true");
        assert_eq!(
            FeatureValue::TransportOpcode(Transport::Rc, Opcode::Read).to_string(),
            "RC READ"
        );
    }
}
