//! One point in the workload search space.

use super::feature::{Feature, FeatureValue};
use super::SearchSpace;
use collie_host::memory::MemoryTarget;
use collie_rnic::workload::{Opcode, Transport};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete workload description in search-space coordinates.
///
/// The workload engine translates a point into the flow-level
/// [`WorkloadSpec`](collie_rnic::workload::WorkloadSpec) the subsystem model
/// evaluates; the MFS algorithm perturbs points one [`Feature`] at a time.
///
/// Points are plain value types (`Eq + Hash`), which is what lets the
/// [`Evaluator`](crate::eval::Evaluator) memoize measurements keyed by the
/// canonical point.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchPoint {
    /// Dimension 1: memory the sender reads payloads from.
    pub src_memory: MemoryTarget,
    /// Dimension 1: memory the receiver writes payloads into.
    pub dst_memory: MemoryTarget,
    /// Dimension 1: whether the same traffic also runs in the reverse
    /// direction.
    pub bidirectional: bool,
    /// Dimension 1: whether a collocated (loopback) copy of the traffic
    /// coexists on host A.
    pub with_loopback: bool,
    /// Dimension 2: MRs registered per QP.
    pub mrs_per_qp: u32,
    /// Dimension 2: size of each MR in bytes.
    pub mr_size_bytes: u64,
    /// Dimension 3: transport type.
    pub transport: Transport,
    /// Dimension 3: opcode.
    pub opcode: Opcode,
    /// Dimension 3: number of QPs per direction.
    pub num_qps: u32,
    /// Dimension 3: work requests posted per doorbell.
    pub wqe_batch: u32,
    /// Dimension 3: scatter/gather entries per work request.
    pub sge_per_wqe: u32,
    /// Dimension 3: send queue depth per QP.
    pub send_queue_depth: u32,
    /// Dimension 3: receive queue depth per QP.
    pub recv_queue_depth: u32,
    /// Dimension 3: path MTU in bytes.
    pub mtu: u32,
    /// Dimension 4: the repeating request-size vector.
    pub messages: Vec<u64>,
}

impl SearchPoint {
    /// A small, deliberately benign workload (a Perftest-like single-QP
    /// large-message WRITE), used as a neutral starting point in tests and
    /// examples.
    pub fn benign() -> SearchPoint {
        SearchPoint {
            src_memory: MemoryTarget::local_dram(),
            dst_memory: MemoryTarget::local_dram(),
            bidirectional: false,
            with_loopback: false,
            mrs_per_qp: 1,
            mr_size_bytes: 64 * 1024,
            transport: Transport::Rc,
            opcode: Opcode::Write,
            num_qps: 8,
            wqe_batch: 16,
            sge_per_wqe: 1,
            send_queue_depth: 128,
            recv_queue_depth: 128,
            mtu: 4096,
            messages: vec![64 * 1024],
        }
    }

    /// Read the current value of one feature.
    pub fn feature_value(&self, feature: Feature) -> FeatureValue {
        match feature {
            Feature::SrcMemory => FeatureValue::Memory(self.src_memory),
            Feature::DstMemory => FeatureValue::Memory(self.dst_memory),
            Feature::Bidirectional => FeatureValue::Flag(self.bidirectional),
            Feature::Loopback => FeatureValue::Flag(self.with_loopback),
            Feature::MrsPerQp => FeatureValue::Number(self.mrs_per_qp as u64),
            Feature::MrSize => FeatureValue::Number(self.mr_size_bytes),
            Feature::Transport | Feature::Opcode => {
                FeatureValue::TransportOpcode(self.transport, self.opcode)
            }
            Feature::NumQps => FeatureValue::Number(self.num_qps as u64),
            Feature::WqeBatch => FeatureValue::Number(self.wqe_batch as u64),
            Feature::SgePerWqe => FeatureValue::Number(self.sge_per_wqe as u64),
            Feature::SendQueueDepth => FeatureValue::Number(self.send_queue_depth as u64),
            Feature::RecvQueueDepth => FeatureValue::Number(self.recv_queue_depth as u64),
            Feature::Mtu => FeatureValue::Number(self.mtu as u64),
            Feature::MessagePattern => FeatureValue::Pattern(self.messages.clone()),
        }
    }

    /// Overwrite one feature with a concrete value (used by MFS probing).
    /// Values of the wrong kind are ignored.
    pub fn apply(&mut self, feature: Feature, value: &FeatureValue) {
        match (feature, value) {
            (Feature::SrcMemory, FeatureValue::Memory(m)) => self.src_memory = *m,
            (Feature::DstMemory, FeatureValue::Memory(m)) => self.dst_memory = *m,
            (Feature::Bidirectional, FeatureValue::Flag(b)) => self.bidirectional = *b,
            (Feature::Loopback, FeatureValue::Flag(b)) => self.with_loopback = *b,
            (Feature::MrsPerQp, FeatureValue::Number(n)) => self.mrs_per_qp = *n as u32,
            (Feature::MrSize, FeatureValue::Number(n)) => self.mr_size_bytes = *n,
            (Feature::Transport, FeatureValue::TransportOpcode(t, o))
            | (Feature::Opcode, FeatureValue::TransportOpcode(t, o)) => {
                self.transport = *t;
                self.opcode = *o;
            }
            (Feature::NumQps, FeatureValue::Number(n)) => self.num_qps = *n as u32,
            (Feature::WqeBatch, FeatureValue::Number(n)) => self.wqe_batch = *n as u32,
            (Feature::SgePerWqe, FeatureValue::Number(n)) => self.sge_per_wqe = *n as u32,
            (Feature::SendQueueDepth, FeatureValue::Number(n)) => self.send_queue_depth = *n as u32,
            (Feature::RecvQueueDepth, FeatureValue::Number(n)) => self.recv_queue_depth = *n as u32,
            (Feature::Mtu, FeatureValue::Number(n)) => self.mtu = *n as u32,
            (Feature::MessagePattern, FeatureValue::Pattern(sizes)) => {
                self.messages = sizes.clone();
            }
            _ => {}
        }
    }

    /// Basic structural validity: the transport/opcode pair is legal, the
    /// categorical values are drawn from the space, and the numeric values
    /// are positive.
    pub fn is_well_formed(&self, space: &SearchSpace) -> bool {
        self.opcode.valid_on(self.transport)
            && space.memory_targets.contains(&self.src_memory)
            && space.memory_targets.contains(&self.dst_memory)
            && self.num_qps > 0
            && self.wqe_batch > 0
            && self.sge_per_wqe > 0
            && self.send_queue_depth > 0
            && self.recv_queue_depth > 0
            && self.mtu >= 256
            && self.mrs_per_qp > 0
            && self.mr_size_bytes > 0
            && !self.messages.is_empty()
            && self.messages.iter().all(|&m| m > 0)
    }

    /// Total MRs this point registers per host.
    pub fn total_mrs(&self) -> u64 {
        self.num_qps as u64 * self.mrs_per_qp as u64
    }

    /// Mean request size in bytes.
    pub fn mean_message_bytes(&self) -> f64 {
        if self.messages.is_empty() {
            0.0
        } else {
            self.messages.iter().sum::<u64>() as f64 / self.messages.len() as f64
        }
    }
}

impl fmt::Display for SearchPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} x{} qps, batch {}, sge {}, wq {}/{}, mtu {}, {} MRs x {}B, msgs {:?}{}{}{}",
            self.transport,
            self.opcode,
            self.num_qps,
            self.wqe_batch,
            self.sge_per_wqe,
            self.send_queue_depth,
            self.recv_queue_depth,
            self.mtu,
            self.mrs_per_qp,
            self.mr_size_bytes,
            self.messages,
            if self.bidirectional {
                ", bidirectional"
            } else {
                ""
            },
            if self.with_loopback {
                ", +loopback"
            } else {
                ""
            },
            if self.src_memory.is_gpu() || self.dst_memory.is_gpu() {
                ", gpu-direct"
            } else {
                ""
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_host::presets;
    use collie_sim::units::ByteSize;

    #[test]
    fn feature_value_roundtrip_through_apply() {
        let host = presets::intel_xeon_gpu_host("t", ByteSize::from_gib(128), true);
        let space = SearchSpace::for_host(&host);
        let mut rng = collie_sim::rng::SimRng::new(2);
        let a = space.random_point(&mut rng);
        let mut b = SearchPoint::benign();
        for f in Feature::ALL {
            b.apply(f, &a.feature_value(f));
        }
        assert_eq!(a, b, "applying every feature value reproduces the point");
    }

    #[test]
    fn apply_ignores_mismatched_value_kinds() {
        let mut p = SearchPoint::benign();
        let before = p.clone();
        p.apply(Feature::NumQps, &FeatureValue::Flag(true));
        p.apply(Feature::Bidirectional, &FeatureValue::Number(3));
        assert_eq!(p, before);
    }

    #[test]
    fn benign_point_is_well_formed() {
        let host = presets::intel_xeon_host("t", 2, ByteSize::from_gib(128), false);
        let space = SearchSpace::for_host(&host);
        assert!(SearchPoint::benign().is_well_formed(&space));
    }

    #[test]
    fn derived_quantities() {
        let mut p = SearchPoint::benign();
        p.num_qps = 10;
        p.mrs_per_qp = 7;
        p.messages = vec![100, 300];
        assert_eq!(p.total_mrs(), 70);
        assert_eq!(p.mean_message_bytes(), 200.0);
    }

    #[test]
    fn display_mentions_key_facts() {
        let mut p = SearchPoint::benign();
        p.bidirectional = true;
        let s = p.to_string();
        assert!(s.contains("RC WRITE"));
        assert!(s.contains("bidirectional"));
    }
}
