//! The fabric search space: the two-host workload space extended with a
//! fifth dimension.
//!
//! A [`FabricPoint`] is an ordinary [`SearchPoint`] (the culprit's
//! workload, four dimensions) plus the fabric coordinates the multi-host
//! campaigns explore: how many hosts share the switch, how many of them
//! gang up on the culprit (incast degree), and what the surrounding
//! traffic matrix looks like. [`FabricFeature`] names every coordinate —
//! workload and fabric alike — so the fabric MFS extractor can reason
//! about necessity uniformly across both layers.

use super::{ladder_alternatives, Dimension, Feature, FeatureValue, SearchPoint, SearchSpace};
use collie_host::topology::HostConfig;
use collie_rnic::fabric::{FabricShape, TrafficPattern};
use collie_sim::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One coordinate of the fabric search space: a workload feature of the
/// culprit's point, or one of the three fabric dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FabricFeature {
    /// A feature of the culprit's workload point.
    Workload(Feature),
    /// Number of hosts attached to the switch.
    HostCount,
    /// Number of senders directing the workload at the culprit.
    IncastDegree,
    /// The traffic-matrix shape around the culprit flow.
    TrafficShape,
}

impl FabricFeature {
    /// Every fabric-space feature, workload features first, in a stable
    /// order.
    pub fn all() -> Vec<FabricFeature> {
        Feature::ALL
            .into_iter()
            .map(FabricFeature::Workload)
            .chain([
                FabricFeature::HostCount,
                FabricFeature::IncastDegree,
                FabricFeature::TrafficShape,
            ])
            .collect()
    }

    /// The search dimension this feature belongs to.
    pub fn dimension(self) -> Dimension {
        match self {
            FabricFeature::Workload(f) => f.dimension(),
            _ => Dimension::Fabric,
        }
    }
}

impl fmt::Display for FabricFeature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricFeature::Workload(feature) => write!(f, "{feature}"),
            FabricFeature::HostCount => write!(f, "host count"),
            FabricFeature::IncastDegree => write!(f, "incast degree"),
            FabricFeature::TrafficShape => write!(f, "traffic shape"),
        }
    }
}

/// A complete multi-host experiment description: the culprit's workload
/// plus the fabric shape it runs inside.
///
/// Like [`SearchPoint`], fabric points are plain value types
/// (`Eq + Hash`), which is what lets the fabric evaluator memoize whole
/// fabric measurements keyed by the canonical point.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FabricPoint {
    /// The culprit's workload (the paper's four dimensions).
    pub workload: SearchPoint,
    /// Dimension 5: hosts attached to the switch.
    pub host_count: u32,
    /// Dimension 5: senders directing the workload at the culprit.
    pub incast_degree: u32,
    /// Dimension 5: traffic-matrix shape.
    pub pattern: TrafficPattern,
}

impl FabricPoint {
    /// A benign point on a small fabric — the neutral starting point.
    pub fn benign() -> FabricPoint {
        FabricPoint {
            workload: SearchPoint::benign(),
            host_count: 3,
            incast_degree: 1,
            pattern: TrafficPattern::Incast,
        }
    }

    /// Wrap a two-host point in the degenerate fabric shape (the paper's
    /// testbed).
    pub fn two_host(workload: SearchPoint) -> FabricPoint {
        let shape = FabricShape::two_host();
        FabricPoint {
            workload,
            host_count: shape.host_count,
            incast_degree: shape.incast_degree,
            pattern: shape.pattern,
        }
    }

    /// The fabric coordinates as a shape (normalization happens at
    /// evaluation time; see [`FabricShape::normalized`]).
    pub fn shape(&self) -> FabricShape {
        FabricShape {
            host_count: self.host_count,
            incast_degree: self.incast_degree,
            pattern: self.pattern,
        }
    }

    /// Read the current value of one feature.
    pub fn feature_value(&self, feature: FabricFeature) -> FeatureValue {
        match feature {
            FabricFeature::Workload(f) => self.workload.feature_value(f),
            FabricFeature::HostCount => FeatureValue::Number(self.host_count as u64),
            FabricFeature::IncastDegree => FeatureValue::Number(self.incast_degree as u64),
            FabricFeature::TrafficShape => FeatureValue::Traffic(self.pattern),
        }
    }

    /// Overwrite one feature with a concrete value (used by fabric MFS
    /// probing). Values of the wrong kind are ignored.
    pub fn apply(&mut self, feature: FabricFeature, value: &FeatureValue) {
        match (feature, value) {
            (FabricFeature::Workload(f), v) => self.workload.apply(f, v),
            (FabricFeature::HostCount, FeatureValue::Number(n)) => self.host_count = *n as u32,
            (FabricFeature::IncastDegree, FeatureValue::Number(n)) => {
                self.incast_degree = *n as u32
            }
            (FabricFeature::TrafficShape, FeatureValue::Traffic(p)) => self.pattern = *p,
            _ => {}
        }
    }

    /// Structural validity: the workload is well-formed and the fabric
    /// coordinates are positive (their upper bounds are enforced by
    /// normalization at evaluation time).
    pub fn is_well_formed(&self, space: &FabricSpace) -> bool {
        self.workload.is_well_formed(&space.workload)
            && self.host_count >= 2
            && self.incast_degree >= 1
    }
}

impl fmt::Display for FabricPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | fabric: {} hosts, incast {}, {}",
            self.workload, self.host_count, self.incast_degree, self.pattern
        )
    }
}

/// The bounded fabric search space: the workload space plus ladders for
/// the fabric coordinates.
#[derive(Debug, Clone)]
pub struct FabricSpace {
    /// The culprit-workload space (Dimensions 1–4).
    pub workload: SearchSpace,
    /// Candidate host counts. Includes the two-host rung so MFS probing
    /// can discover that an anomaly *needs* a third host (the cross-host
    /// signature).
    pub host_counts: Vec<u32>,
    /// Candidate incast degrees (clamped to `host_count - 1` at
    /// evaluation time).
    pub incast_degrees: Vec<u32>,
    /// Candidate traffic-matrix shapes.
    pub patterns: Vec<TrafficPattern>,
}

impl FabricSpace {
    /// The fabric space for a homogeneous fleet of hosts like `host`.
    pub fn for_host(host: &HostConfig) -> FabricSpace {
        FabricSpace {
            workload: SearchSpace::for_host(host),
            host_counts: vec![2, 3, 4, 6, 8],
            incast_degrees: vec![1, 2, 3, 4, 6],
            patterns: TrafficPattern::ALL.to_vec(),
        }
    }

    /// Draw a uniform random fabric point.
    pub fn random_point(&self, rng: &mut SimRng) -> FabricPoint {
        FabricPoint {
            workload: self.workload.random_point(rng),
            host_count: *rng.choose(&self.host_counts),
            incast_degree: *rng.choose(&self.incast_degrees),
            pattern: *rng.choose(&self.patterns),
        }
    }

    /// Mutate one randomly chosen coordinate, staying inside the space.
    /// Workload coordinates delegate to [`SearchSpace::mutate`] (one of
    /// the 15 workload features); fabric coordinates step their ladders.
    pub fn mutate(&self, point: &FabricPoint, rng: &mut SimRng) -> FabricPoint {
        let mut next = point.clone();
        let workload_features = Feature::ALL.len();
        match rng.gen_index(workload_features + 3) {
            i if i < workload_features => {
                next.workload = self.workload.mutate(&point.workload, rng);
            }
            i if i == workload_features => {
                next.host_count = super::ladder::step(&self.host_counts, point.host_count, rng);
            }
            i if i == workload_features + 1 => {
                next.incast_degree =
                    super::ladder::step(&self.incast_degrees, point.incast_degree, rng);
            }
            _ => {
                let others: Vec<TrafficPattern> = self
                    .patterns
                    .iter()
                    .copied()
                    .filter(|p| *p != point.pattern)
                    .collect();
                if !others.is_empty() {
                    next.pattern = *rng.choose(&others);
                }
            }
        }
        next
    }

    /// Candidate alternative values for one feature (fabric MFS probing).
    pub fn alternatives(&self, point: &FabricPoint, feature: FabricFeature) -> Vec<FeatureValue> {
        match feature {
            FabricFeature::Workload(f) => self.workload.alternatives(&point.workload, f),
            FabricFeature::HostCount => ladder_alternatives(&self.host_counts, point.host_count),
            FabricFeature::IncastDegree => {
                ladder_alternatives(&self.incast_degrees, point.incast_degree)
            }
            FabricFeature::TrafficShape => self
                .patterns
                .iter()
                .copied()
                .filter(|p| *p != point.pattern)
                .map(FeatureValue::Traffic)
                .collect(),
        }
    }

    /// Size of the discretised fabric space the mutation operators explore.
    pub fn effective_cardinality(&self) -> f64 {
        self.workload.effective_cardinality()
            * self.host_counts.len() as f64
            * self.incast_degrees.len() as f64
            * self.patterns.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_host::presets;
    use collie_sim::units::ByteSize;

    fn space() -> FabricSpace {
        let host = presets::intel_xeon_gpu_host("t", ByteSize::from_gib(2048), true);
        FabricSpace::for_host(&host)
    }

    #[test]
    fn all_features_cover_workload_and_fabric() {
        let all = FabricFeature::all();
        assert_eq!(all.len(), Feature::ALL.len() + 3);
        assert!(all.contains(&FabricFeature::HostCount));
        assert_eq!(FabricFeature::HostCount.dimension(), Dimension::Fabric);
        assert_eq!(
            FabricFeature::Workload(Feature::NumQps).dimension(),
            Feature::NumQps.dimension()
        );
    }

    #[test]
    fn feature_value_roundtrip_through_apply() {
        let s = space();
        let mut rng = SimRng::new(2);
        let a = s.random_point(&mut rng);
        let mut b = FabricPoint::benign();
        for f in FabricFeature::all() {
            b.apply(f, &a.feature_value(f));
        }
        assert_eq!(a, b, "applying every feature value reproduces the point");
    }

    #[test]
    fn apply_ignores_mismatched_value_kinds() {
        let mut p = FabricPoint::benign();
        let before = p.clone();
        p.apply(FabricFeature::HostCount, &FeatureValue::Flag(true));
        p.apply(FabricFeature::TrafficShape, &FeatureValue::Number(3));
        assert_eq!(p, before);
    }

    #[test]
    fn random_points_are_valid_and_cover_the_fabric_dims() {
        let s = space();
        let mut rng = SimRng::new(1);
        let mut hosts = std::collections::HashSet::new();
        let mut patterns = std::collections::HashSet::new();
        for _ in 0..200 {
            let p = s.random_point(&mut rng);
            assert!(p.is_well_formed(&s), "{p}");
            hosts.insert(p.host_count);
            patterns.insert(p.pattern);
        }
        assert!(hosts.len() >= 4, "sampling should cover host counts");
        assert_eq!(patterns.len(), 3, "sampling should cover patterns");
    }

    #[test]
    fn mutation_changes_at_most_one_dimension_family() {
        let s = space();
        let mut rng = SimRng::new(7);
        let base = s.random_point(&mut rng);
        for _ in 0..200 {
            let next = s.mutate(&base, &mut rng);
            assert!(next.is_well_formed(&s));
            let differing = FabricFeature::all()
                .iter()
                .filter(|f| base.feature_value(**f) != next.feature_value(**f))
                .count();
            // Transport mutations may change the opcode too; everything
            // else changes a single coordinate.
            assert!(differing <= 2, "mutation changed {differing} features");
        }
    }

    #[test]
    fn mutation_reaches_the_fabric_dims() {
        let s = space();
        let mut rng = SimRng::new(11);
        let base = s.random_point(&mut rng);
        let mut fabric_mutations = 0;
        for _ in 0..300 {
            let next = s.mutate(&base, &mut rng);
            if next.shape() != base.shape() {
                fabric_mutations += 1;
            }
        }
        assert!(
            fabric_mutations > 10,
            "fabric dims should be mutated regularly ({fabric_mutations}/300)"
        );
    }

    #[test]
    fn alternatives_exclude_current_value() {
        let s = space();
        let mut rng = SimRng::new(3);
        let p = s.random_point(&mut rng);
        for f in FabricFeature::all() {
            for alt in s.alternatives(&p, f) {
                let mut probe = p.clone();
                probe.apply(f, &alt);
                assert_ne!(
                    probe.feature_value(f),
                    p.feature_value(f),
                    "alternative for {f} did not change the point"
                );
            }
        }
        // The fabric ladders actually offer alternatives.
        assert!(!s.alternatives(&p, FabricFeature::HostCount).is_empty());
        assert_eq!(s.alternatives(&p, FabricFeature::TrafficShape).len(), 2);
    }

    #[test]
    fn fabric_cardinality_dominates_the_workload_space() {
        let s = space();
        assert_eq!(
            s.effective_cardinality(),
            s.workload.effective_cardinality() * (5 * 5 * 3) as f64
        );
    }

    #[test]
    fn display_mentions_the_fabric_coordinates() {
        let p = FabricPoint::benign();
        let text = p.to_string();
        assert!(text.contains("3 hosts"), "{text}");
        assert!(text.contains("incast 1"), "{text}");
    }
}
