//! The anomaly monitor (§5.2).
//!
//! Two responsibilities, mirroring Figure 2: detect whether an experiment's
//! measurement is anomalous ([`AnomalyMonitor`]), and — once a new anomaly
//! is found — determine the minimal feature set that reproduces it
//! ([`mfs::MfsExtractor`]).

mod anomaly;
mod mfs;

pub use anomaly::{AnomalyMonitor, AnomalyThresholds, AnomalyVerdict, Symptom};
pub use mfs::{ExtractionOutcome, FeatureCondition, Mfs, MfsExtractor, ReproductionSignature};

pub(crate) use mfs::dominant_diag_counter;
