//! Minimal feature set (MFS) extraction (§5.2).
//!
//! When the search finds an anomalous workload, Collie asks: *which of its
//! features are actually necessary to reproduce the anomaly?* The answer —
//! the minimal feature set — serves two purposes. During the search it
//! prunes redundant experiments (any mutated point matching an already-known
//! MFS is skipped, Algorithm 1 line 5); after the search it tells
//! application developers which condition to break to sidestep the anomaly.
//!
//! Extraction follows the paper's heuristic: with only four dimensions and
//! a handful of factors each, probe every feature directly. For a
//! categorical feature, try the alternative values — if none still triggers
//! the anomaly, the feature is necessary and must keep its value. For a
//! numeric feature, probe the ends of its ladder to learn the direction of
//! the condition (at-least or at-most) and then take a few bisection steps
//! to find the coarse threshold, exactly as the paper discretises
//! continuous dimensions into value regions.
//!
//! The probing algorithm itself is domain-generic and lives in
//! [`kernel::MfsExtractor`](crate::search::kernel::MfsExtractor); this
//! module owns the two-host MFS *type* and the [`MfsExtractor`] convenience
//! wrapper that binds the generic extractor to an evaluator, monitor, and
//! space (the fabric counterpart is
//! [`FabricMfsExtractor`](crate::fabric::FabricMfsExtractor)).

use super::anomaly::{AnomalyMonitor, Symptom};
use crate::eval::Evaluator;
use crate::search::{SignalMode, WorkloadDomain};
use crate::space::{Feature, FeatureValue, SearchPoint, SearchSpace};
use collie_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One necessary condition of an MFS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureCondition {
    /// The feature must keep exactly this value (categorical features, or
    /// numeric features where only the observed region triggers).
    Equals(FeatureValue),
    /// The feature's numeric value must be at least this large.
    AtLeast(u64),
    /// The feature's numeric value must be at most this large.
    AtMost(u64),
}

impl FeatureCondition {
    /// True if `value` satisfies this condition. The one shared matching
    /// rule both the two-host [`Mfs`] and the fabric
    /// [`FabricMfs`](crate::fabric::FabricMfs) apply per feature.
    pub fn admits(&self, value: &FeatureValue) -> bool {
        match self {
            FeatureCondition::Equals(expected) => value == expected,
            FeatureCondition::AtLeast(threshold) => match value {
                FeatureValue::Number(n) => n >= threshold,
                _ => false,
            },
            FeatureCondition::AtMost(threshold) => match value {
                FeatureValue::Number(n) => n <= threshold,
                _ => false,
            },
        }
    }
}

impl fmt::Display for FeatureCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureCondition::Equals(v) => write!(f, "= {v}"),
            FeatureCondition::AtLeast(v) => write!(f, ">= {v}"),
            FeatureCondition::AtMost(v) => write!(f, "<= {v}"),
        }
    }
}

/// A minimal feature set: the necessary conditions to reproduce one
/// anomaly, plus an example workload that does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mfs {
    /// The end-to-end symptom of the anomaly.
    pub symptom: Symptom,
    /// The necessary conditions, keyed by feature.
    pub conditions: BTreeMap<Feature, FeatureCondition>,
    /// A concrete workload that reproduces the anomaly.
    pub example: SearchPoint,
}

impl Mfs {
    /// True if `point` satisfies every condition of this MFS (and would
    /// therefore be skipped by the search as a redundant test).
    pub fn matches(&self, point: &SearchPoint) -> bool {
        self.conditions
            .iter()
            .all(|(feature, condition)| condition.admits(&point.feature_value(*feature)))
    }

    /// Human-readable condition list, one line per condition.
    pub fn describe(&self) -> String {
        let mut lines: Vec<String> = self
            .conditions
            .iter()
            .map(|(f, c)| format!("{f} {c}"))
            .collect();
        lines.sort();
        format!("[{}] {}", self.symptom, lines.join("; "))
    }

    /// Number of necessary conditions.
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// True if no condition was found necessary (should not happen for a
    /// real anomaly, but kept total for robustness).
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }
}

/// The observable identity of the anomaly under extraction: the end-to-end
/// symptom plus the diagnostic counter that dominated when the anomalous
/// workload was measured. Probes must reproduce both for a feature to be
/// judged irrelevant.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproductionSignature {
    pub(crate) symptom: Symptom,
    pub(crate) dominant_counter: Option<String>,
}

/// The diagnostic counter with the largest value in a measurement, if any
/// diagnostic counter is non-zero.
pub(crate) fn dominant_diag_counter(
    measurement: &collie_rnic::subsystem::Measurement,
) -> Option<String> {
    measurement
        .counters
        .iter()
        .filter(|(_, kind, value)| {
            *kind == collie_sim::counters::CounterKind::Diagnostic && *value > 0.0
        })
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(name, _, _)| name.to_string())
}

/// Extracts MFSes by probing the subsystem.
///
/// This is the two-host convenience binding of the generic
/// [`kernel::MfsExtractor`](crate::search::kernel::MfsExtractor): it holds
/// the evaluator/monitor/space triple and instantiates the generic prober
/// over a [`WorkloadDomain`] per extraction.
///
/// Probes run through a shared [`Evaluator`], which matters for cost: the
/// extractor is the heaviest revisiter in a campaign — it re-measures the
/// anomalous point it was handed (the search just measured it) and its
/// single-feature neighbourhoods overlap across extractions — so routing it
/// through the campaign's memo cache removes most of its recompute while
/// the simulated probe cost keeps being charged.
pub struct MfsExtractor<'a, 'e> {
    evaluator: &'a mut Evaluator<'e>,
    monitor: &'a AnomalyMonitor,
    space: &'a SearchSpace,
    /// Maximum alternatives probed per categorical feature.
    pub max_alternatives: usize,
    /// Maximum bisection steps per numeric feature.
    pub max_bisection_steps: usize,
}

/// The result of one extraction: the MFS plus the cost it incurred.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionOutcome {
    /// The extracted minimal feature set.
    pub mfs: Mfs,
    /// Experiments spent probing.
    pub experiments: u32,
    /// Simulated wall-clock spent probing (each probe costs what a normal
    /// experiment costs — visible as the flat segments of Figure 6).
    pub elapsed: SimDuration,
}

impl<'a, 'e> MfsExtractor<'a, 'e> {
    /// A new extractor bound to an evaluator, monitor, and space.
    pub fn new(
        evaluator: &'a mut Evaluator<'e>,
        monitor: &'a AnomalyMonitor,
        space: &'a SearchSpace,
    ) -> Self {
        MfsExtractor {
            evaluator,
            monitor,
            space,
            // §5.2: "we just do a few tests on each dimension". Two
            // alternatives per categorical feature and one refinement step
            // per numeric feature keep one extraction in the tens of
            // experiments — the flat segments visible in Figure 6 — rather
            // than consuming a large slice of the campaign budget.
            max_alternatives: 2,
            max_bisection_steps: 1,
        }
    }

    /// Extract the MFS of an anomalous point.
    pub fn extract(&mut self, anomalous: &SearchPoint, symptom: Symptom) -> ExtractionOutcome {
        // The signal mode only affects campaign guidance, never extraction
        // (the reproduction signature is always symptom + dominant
        // diagnostic counter); any mode binds the same probing behaviour.
        let mut domain = WorkloadDomain::new(
            &mut *self.evaluator,
            self.monitor,
            self.space,
            SignalMode::Diagnostic,
        );
        let parts = crate::search::kernel::MfsExtractor::new(&mut domain)
            .with_limits(self.max_alternatives, self.max_bisection_steps)
            .extract(anomalous, &symptom);
        ExtractionOutcome {
            mfs: parts.mfs,
            experiments: parts.experiments,
            elapsed: parts.elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkloadEngine;
    use collie_rnic::subsystems::SubsystemId;
    use collie_rnic::workload::{Opcode, Transport};

    fn anomaly_1_point() -> SearchPoint {
        let mut p = SearchPoint::benign();
        p.transport = Transport::Ud;
        p.opcode = Opcode::Send;
        p.num_qps = 1;
        p.wqe_batch = 64;
        p.recv_queue_depth = 256;
        p.send_queue_depth = 256;
        p.mtu = 2048;
        p.messages = vec![2048];
        p
    }

    fn extract_for(point: &SearchPoint) -> ExtractionOutcome {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let mut evaluator = Evaluator::new(&mut engine);
        let symptom = {
            let (_, verdict) = evaluator.measure_and_assess(&monitor, point);
            verdict.symptom.expect("point must be anomalous")
        };
        let mut extractor = MfsExtractor::new(&mut evaluator, &monitor, &space);
        extractor.extract(point, symptom)
    }

    #[test]
    fn mfs_of_anomaly_1_contains_its_documented_conditions() {
        let outcome = extract_for(&anomaly_1_point());
        let mfs = &outcome.mfs;
        assert_eq!(mfs.symptom, Symptom::PauseStorm);
        // Transport (UD SEND) is necessary.
        assert!(
            matches!(
                mfs.conditions.get(&Feature::Transport),
                Some(FeatureCondition::Equals(_))
            ),
            "{}",
            mfs.describe()
        );
        // Large WQE batch is necessary (at-least condition).
        assert!(
            matches!(
                mfs.conditions.get(&Feature::WqeBatch),
                Some(FeatureCondition::AtLeast(t)) if *t <= 64
            ),
            "{}",
            mfs.describe()
        );
        // Long receive queue is necessary.
        assert!(
            matches!(
                mfs.conditions.get(&Feature::RecvQueueDepth),
                Some(FeatureCondition::AtLeast(t)) if *t <= 256
            ),
            "{}",
            mfs.describe()
        );
        // Irrelevant features are excluded.
        assert!(!mfs.conditions.contains_key(&Feature::MrSize));
        assert!(!mfs.conditions.contains_key(&Feature::SrcMemory));
        assert!(outcome.experiments > 0);
        assert!(outcome.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn the_anomalous_point_matches_its_own_mfs() {
        let point = anomaly_1_point();
        let outcome = extract_for(&point);
        assert!(outcome.mfs.matches(&point));
        assert!(!outcome.mfs.is_empty());
    }

    #[test]
    fn breaking_a_necessary_condition_stops_matching() {
        let point = anomaly_1_point();
        let outcome = extract_for(&point);
        let mut broken = point.clone();
        broken.wqe_batch = 1;
        assert!(!outcome.mfs.matches(&broken));
        let mut rc = point.clone();
        rc.transport = Transport::Rc;
        rc.opcode = Opcode::Send;
        assert!(!outcome.mfs.matches(&rc));
    }

    #[test]
    fn mfs_matching_generalises_beyond_the_example() {
        let point = anomaly_1_point();
        let outcome = extract_for(&point);
        // A harsher version of the same anomaly (bigger batch, deeper WQ)
        // still matches, so the search will not waste time on it.
        let mut harsher = point.clone();
        harsher.wqe_batch = 128;
        harsher.recv_queue_depth = 1024;
        assert!(outcome.mfs.matches(&harsher), "{}", outcome.mfs.describe());
    }

    #[test]
    fn describe_lists_conditions() {
        let outcome = extract_for(&anomaly_1_point());
        let text = outcome.mfs.describe();
        assert!(text.contains("pause frame"));
        assert!(text.contains("WQE batch"));
    }

    #[test]
    fn probes_that_trip_a_different_bottleneck_do_not_erase_conditions() {
        // A workload that triggers the UD receive-WQE anomaly (#1) while
        // also being bidirectional on a strict-ordering host could, when
        // the transport is swapped to RC, still pause because of an
        // unrelated host-side bottleneck. The counter-signature probe keeps
        // the transport in the MFS anyway.
        let mut point = anomaly_1_point();
        point.bidirectional = true;
        point.sge_per_wqe = 3;
        point.messages = vec![128, 64 * 1024, 2048];
        let outcome = extract_for(&point);
        assert!(
            !outcome.mfs.is_empty(),
            "compound workload still yields a usable MFS: {}",
            outcome.mfs.describe()
        );
    }

    #[test]
    fn dominant_counter_identifies_the_stressed_resource() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let measurement = engine.measure(&anomaly_1_point());
        assert_eq!(
            super::dominant_diag_counter(&measurement).as_deref(),
            Some(collie_rnic::counters::diag::RECV_WQE_CACHE_MISS)
        );
        // A benign workload keeps diagnostic counters near zero; whatever
        // the dominant one is, the anomaly-1 signature differs from it.
        let benign = engine.measure(&SearchPoint::benign());
        assert_ne!(
            super::dominant_diag_counter(&benign).as_deref(),
            Some(collie_rnic::counters::diag::RECV_WQE_CACHE_MISS)
        );
    }
}
