//! Anomaly detection conditions.
//!
//! The paper defines exactly two anomaly classes (§3, §5.2), chosen because
//! they can be stated precisely and matter most in production:
//!
//! 1. **PFC pause frames** while the network is not congested. The metric is
//!    the pause-duration ratio; the threshold is 0.1 % (pause frames in the
//!    first instants after connection setup are tolerated).
//! 2. **Throughput not bottlenecked by the specification.** A healthy
//!    subsystem is limited either by bits/second or by packets/second as
//!    published in the RNIC spec; if a workload sits more than 20 % below
//!    *both* bounds, something else inside the subsystem is the bottleneck.
//!
//! The monitor samples the subsystem four times per iteration and averages,
//! as §6 describes.

use collie_rnic::spec::RnicSpec;
use collie_rnic::subsystem::Measurement;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two anomaly classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Symptom {
    /// PFC pause frames generated without network congestion.
    PauseStorm,
    /// Throughput more than 20 % below both specification bounds, with no
    /// pause frames.
    LowThroughput,
}

impl fmt::Display for Symptom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symptom::PauseStorm => write!(f, "pause frame"),
            Symptom::LowThroughput => write!(f, "low throughput"),
        }
    }
}

/// Detection thresholds (defaults follow §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyThresholds {
    /// Pause-duration ratio above which pause frames count as an anomaly.
    pub pause_ratio: f64,
    /// Fraction of the specification bound a workload must reach on at
    /// least one of the two metrics to be considered healthy.
    pub throughput_fraction: f64,
}

impl Default for AnomalyThresholds {
    fn default() -> Self {
        AnomalyThresholds {
            pause_ratio: 0.001,
            throughput_fraction: 0.8,
        }
    }
}

/// The verdict on one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyVerdict {
    /// The detected symptom, if any.
    pub symptom: Option<Symptom>,
    /// Observed worst-case pause-duration ratio.
    pub pause_ratio: f64,
    /// The best fraction of either specification bound achieved by the
    /// worst direction (1.0 = some direction pinned a spec bound; below the
    /// threshold = anomalous).
    pub spec_fraction: f64,
}

impl AnomalyVerdict {
    /// True if any anomaly was detected.
    pub fn is_anomalous(&self) -> bool {
        self.symptom.is_some()
    }
}

/// Applies the detection conditions to measurements.
#[derive(Debug, Clone)]
pub struct AnomalyMonitor {
    thresholds: AnomalyThresholds,
    /// Samples averaged per iteration (the paper samples four times).
    pub samples_per_iteration: u32,
}

impl Default for AnomalyMonitor {
    fn default() -> Self {
        AnomalyMonitor::new()
    }
}

impl AnomalyMonitor {
    /// A monitor with the paper's thresholds.
    pub fn new() -> Self {
        AnomalyMonitor {
            thresholds: AnomalyThresholds::default(),
            samples_per_iteration: 4,
        }
    }

    /// A monitor with custom thresholds.
    pub fn with_thresholds(thresholds: AnomalyThresholds) -> Self {
        AnomalyMonitor {
            thresholds,
            samples_per_iteration: 4,
        }
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> AnomalyThresholds {
        self.thresholds
    }

    /// Assess one measurement against the subsystem's specification.
    pub fn assess(&self, measurement: &Measurement, spec: &RnicSpec) -> AnomalyVerdict {
        let pause_ratio = measurement.max_pause_ratio();

        // For every direction that carried traffic, how close did it get to
        // either specification bound? A direction that was deliberately
        // offered nothing does not count against the subsystem.
        let mut worst_fraction: f64 = 1.0;
        for dir in &measurement.directions {
            let bps_fraction = dir.throughput.fraction_of(spec.line_rate);
            let pps_fraction = dir.packet_rate.fraction_of(spec.max_packet_rate);
            let best = bps_fraction.max(pps_fraction);
            worst_fraction = worst_fraction.min(best);
        }
        if measurement.directions.is_empty() {
            worst_fraction = 0.0;
        }

        let symptom = if pause_ratio > self.thresholds.pause_ratio {
            Some(Symptom::PauseStorm)
        } else if !measurement.directions.is_empty()
            && worst_fraction < self.thresholds.throughput_fraction
        {
            Some(Symptom::LowThroughput)
        } else {
            None
        };

        AnomalyVerdict {
            symptom,
            pause_ratio,
            spec_fraction: worst_fraction,
        }
    }

    /// Run the paper's measurement procedure: sample the experiment
    /// `samples_per_iteration` times and assess. (The simulator is
    /// deterministic, so the repeats exist for procedural fidelity; a
    /// monitor wrapping a noisy subsystem would average them.)
    ///
    /// This is the uncached convenience for one-off assessments; campaigns
    /// run the same procedure through their shared memo cache via
    /// [`Evaluator::measure_and_assess`](crate::eval::Evaluator), to which
    /// this delegates so there is exactly one sampling loop.
    pub fn measure_and_assess(
        &self,
        engine: &mut crate::engine::WorkloadEngine,
        point: &crate::space::SearchPoint,
    ) -> (Measurement, AnomalyVerdict) {
        crate::eval::Evaluator::uncached(engine).measure_and_assess(self, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkloadEngine;
    use crate::space::SearchPoint;
    use collie_rnic::subsystems::SubsystemId;
    use collie_rnic::workload::{Opcode, Transport};

    #[test]
    fn benign_point_is_not_anomalous() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let (_, verdict) = monitor.measure_and_assess(&mut engine, &SearchPoint::benign());
        assert!(!verdict.is_anomalous(), "{verdict:?}");
        assert!(verdict.spec_fraction >= 0.8);
    }

    #[test]
    fn pause_storm_point_is_detected() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let mut p = SearchPoint::benign();
        p.transport = Transport::Ud;
        p.opcode = Opcode::Send;
        p.wqe_batch = 64;
        p.recv_queue_depth = 256;
        p.mtu = 2048;
        p.messages = vec![2048];
        let (_, verdict) = monitor.measure_and_assess(&mut engine, &p);
        assert_eq!(verdict.symptom, Some(Symptom::PauseStorm));
        assert!(verdict.pause_ratio > 0.001);
    }

    #[test]
    fn low_throughput_point_is_detected_without_pause() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let mut p = SearchPoint::benign();
        // Appendix A Anomaly #2.
        p.transport = Transport::Ud;
        p.opcode = Opcode::Send;
        p.num_qps = 16;
        p.wqe_batch = 4;
        p.recv_queue_depth = 1024;
        p.send_queue_depth = 1024;
        p.mtu = 1024;
        p.messages = vec![1024];
        let (_, verdict) = monitor.measure_and_assess(&mut engine, &p);
        assert_eq!(verdict.symptom, Some(Symptom::LowThroughput));
        assert!(verdict.pause_ratio <= 0.001);
        assert!(verdict.spec_fraction < 0.8);
    }

    #[test]
    fn small_messages_at_packet_rate_cap_are_healthy() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let mut p = SearchPoint::benign();
        p.messages = vec![64];
        p.wqe_batch = 32;
        let (_, verdict) = monitor.measure_and_assess(&mut engine, &p);
        assert!(
            !verdict.is_anomalous(),
            "packet-rate-bound traffic is within spec: {verdict:?}"
        );
    }

    #[test]
    fn empty_measurement_reads_as_low_throughput_free() {
        let monitor = AnomalyMonitor::new();
        let spec = collie_rnic::spec::RnicModel::Cx6Dx200.spec();
        let empty = Measurement::empty(Default::default());
        let verdict = monitor.assess(&empty, &spec);
        // No traffic directions: nothing to judge, nothing anomalous.
        assert!(!verdict.is_anomalous());
    }

    #[test]
    fn custom_thresholds_are_respected() {
        let strict = AnomalyMonitor::with_thresholds(AnomalyThresholds {
            pause_ratio: 0.0,
            throughput_fraction: 1.01,
        });
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let (_, verdict) = strict.measure_and_assess(&mut engine, &SearchPoint::benign());
        // With an impossible throughput requirement everything is anomalous.
        assert!(verdict.is_anomalous());
        assert_eq!(strict.thresholds().pause_ratio, 0.0);
    }
}
