//! Bayesian-optimisation baseline (§7.2).
//!
//! The paper compares Collie against the widely used BO library of
//! Nogueira [31], with the counter values as the optimisation target and
//! the MFS skip applied for fairness. A full Gaussian-process BO stack is
//! out of scope for this reproduction (and would pull in heavy numeric
//! dependencies), so this module implements the same *shape* of algorithm
//! with a light surrogate:
//!
//! * every observed `(workload, counter value)` pair is remembered,
//! * candidate workloads are proposed each round (mutations of the best
//!   observed point plus fresh random points),
//! * each candidate is scored by a distance-weighted nearest-neighbour
//!   estimate of the counter plus an exploration bonus for being far from
//!   everything observed (the usual exploitation/exploration trade-off),
//! * the best-scoring candidate is measured next.
//!
//! Like the paper's BO baseline, this works when the counter surface is
//! smooth in the encoded feature space and struggles with the abrupt
//! changes the discrete dimensions cause — which is exactly the behaviour
//! the evaluation section discusses.

use crate::search::campaign::WorkloadDomain;
use crate::search::kernel::CampaignLoop;
use crate::space::SearchPoint;
use collie_rnic::workload::{Opcode, Transport};

/// The BO baseline runs on the two-host domain only: its surrogate encodes
/// [`SearchPoint`]s into a numeric feature vector, which has no meaning for
/// other domains (fabric grids map their BO cells to the random baseline).
type Campaign<'a, 'b, 'c> = CampaignLoop<'a, WorkloadDomain<'b, 'c>>;

/// Number of candidates proposed per round.
const CANDIDATES_PER_ROUND: usize = 8;
/// Number of neighbours used by the surrogate.
const NEIGHBOURS: usize = 3;
/// Weight of the exploration bonus relative to the predicted value.
const EXPLORATION_WEIGHT: f64 = 0.3;

/// Run the BO-style campaign until the budget is exhausted.
pub(crate) fn run(campaign: &mut Campaign<'_, '_, '_>) {
    // `ranked_targets` is never empty: a domain without rankable counters
    // yields the single un-targeted schedule `[None]`.
    let targets = campaign.ranked_targets(10);
    let maximize = matches!(
        campaign.config().signal,
        crate::search::SignalMode::Diagnostic
    );

    let mut counter_index = 0usize;
    while !campaign.out_of_budget() {
        let target = targets[counter_index % targets.len()].clone();
        let measured = optimise_one_counter(campaign, target.as_deref(), maximize);
        // Once the discovered MFSes cover most of the proposal distribution
        // a pass can reject every candidate without running an experiment;
        // budget must still drain, so force one random measurement.
        if measured == 0 && !campaign.out_of_budget() {
            let point = campaign.random_point();
            if campaign.measure(&point).is_none() {
                return;
            }
        }
        counter_index += 1;
    }
}

/// Returns the number of experiments this pass actually ran.
fn optimise_one_counter(
    campaign: &mut Campaign<'_, '_, '_>,
    target: Option<&str>,
    maximize: bool,
) -> u32 {
    let mut measured = 0u32;
    // Seed the surrogate with a handful of random observations.
    let mut history: Vec<(Vec<f64>, SearchPoint, f64)> = Vec::new();
    for _ in 0..4 {
        if campaign.out_of_budget() {
            return measured;
        }
        let point = campaign.random_point();
        if campaign.matches_known_mfs(&point) {
            continue;
        }
        if let Some(m) = campaign.measure(&point) {
            measured += 1;
            let value = campaign.signal_value(&m, target);
            history.push((encode(&point), point, value));
        }
    }

    // Rounds proportional to the annealing schedule length so both
    // strategies spend comparable time per counter.
    let rounds = campaign.config().iterations_per_temperature as usize * 12;
    for _ in 0..rounds {
        if campaign.out_of_budget() {
            return measured;
        }
        let best_point = best_of(&history, maximize)
            .cloned()
            .unwrap_or_else(|| campaign.random_point());

        // Propose candidates: exploit around the incumbent, explore randomly.
        let mut candidates = Vec::with_capacity(CANDIDATES_PER_ROUND);
        for i in 0..CANDIDATES_PER_ROUND {
            let candidate = if i % 2 == 0 {
                campaign.mutate(&best_point)
            } else {
                campaign.random_point()
            };
            candidates.push(candidate);
        }

        // Acquisition: surrogate prediction + exploration bonus.
        let mut best_candidate: Option<(f64, SearchPoint)> = None;
        for candidate in candidates {
            if campaign.matches_known_mfs(&candidate) {
                continue;
            }
            let features = encode(&candidate);
            let (predicted, distance) = predict(&history, &features, maximize);
            let oriented = if maximize { predicted } else { -predicted };
            let score = oriented + EXPLORATION_WEIGHT * distance * oriented.abs().max(1.0);
            if best_candidate
                .as_ref()
                .map(|(s, _)| score > *s)
                .unwrap_or(true)
            {
                best_candidate = Some((score, candidate));
            }
        }
        let Some((_, chosen)) = best_candidate else {
            continue;
        };
        let discoveries_before = campaign.discovery_count();
        let Some(m) = campaign.measure(&chosen) else {
            return measured;
        };
        measured += 1;
        let value = campaign.signal_value(&m, target);
        history.push((encode(&chosen), chosen, value));
        if campaign.discovery_count() > discoveries_before {
            // Like the annealing search, restart exploration after a find so
            // the surrogate does not keep proposing the same region.
            history.clear();
        }
    }
    measured
}

fn best_of(history: &[(Vec<f64>, SearchPoint, f64)], maximize: bool) -> Option<&SearchPoint> {
    history
        .iter()
        .max_by(|a, b| {
            let (x, y) = if maximize { (a.2, b.2) } else { (-a.2, -b.2) };
            x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(_, p, _)| p)
}

/// Distance-weighted k-nearest-neighbour prediction plus the distance to
/// the closest observation (used as the exploration term).
fn predict(
    history: &[(Vec<f64>, SearchPoint, f64)],
    features: &[f64],
    maximize: bool,
) -> (f64, f64) {
    if history.is_empty() {
        return (if maximize { 0.0 } else { f64::MAX / 1e6 }, 1.0);
    }
    let mut distances: Vec<(f64, f64)> = history
        .iter()
        .map(|(f, _, v)| (euclidean(f, features), *v))
        .collect();
    distances.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let nearest = &distances[..distances.len().min(NEIGHBOURS)];
    let mut weight_sum = 0.0;
    let mut value_sum = 0.0;
    for (d, v) in nearest {
        let w = 1.0 / (d + 1e-3);
        weight_sum += w;
        value_sum += w * v;
    }
    (value_sum / weight_sum, distances[0].0)
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Encode a point into the normalised numeric feature vector the surrogate
/// measures distances in. Numeric features are log-scaled; categorical
/// features become small integer codes.
fn encode(point: &SearchPoint) -> Vec<f64> {
    let transport = match point.transport {
        Transport::Rc => 0.0,
        Transport::Uc => 1.0,
        Transport::Ud => 2.0,
    };
    let opcode = match point.opcode {
        Opcode::Send => 0.0,
        Opcode::Write => 1.0,
        Opcode::Read => 2.0,
    };
    let memory_code = |m: &collie_host::memory::MemoryTarget| match m {
        collie_host::memory::MemoryTarget::HostDram { numa_node } => *numa_node as f64,
        collie_host::memory::MemoryTarget::GpuMemory { gpu_id } => 4.0 + *gpu_id as f64,
    };
    vec![
        transport,
        opcode,
        (point.num_qps as f64).log2(),
        (point.wqe_batch as f64).log2(),
        point.sge_per_wqe as f64,
        (point.send_queue_depth as f64).log2(),
        (point.recv_queue_depth as f64).log2(),
        (point.mtu as f64).log2(),
        (point.mrs_per_qp as f64).log2(),
        (point.mr_size_bytes as f64).log2(),
        point.mean_message_bytes().max(1.0).log2(),
        point.messages.len() as f64,
        if point.bidirectional { 1.0 } else { 0.0 },
        if point.with_loopback { 1.0 } else { 0.0 },
        memory_code(&point.src_memory),
        memory_code(&point.dst_memory),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkloadEngine;
    use crate::search::{run_search, SearchConfig, SearchStrategy};
    use crate::space::SearchSpace;
    use collie_rnic::subsystems::SubsystemId;
    use collie_sim::time::SimDuration;

    #[test]
    fn encoding_distinguishes_different_points() {
        let a = SearchPoint::benign();
        let mut b = SearchPoint::benign();
        b.num_qps = 1024;
        b.transport = Transport::Ud;
        b.opcode = Opcode::Send;
        assert_ne!(encode(&a), encode(&b));
        assert_eq!(encode(&a).len(), 16);
        assert!(euclidean(&encode(&a), &encode(&b)) > 0.0);
        assert_eq!(euclidean(&encode(&a), &encode(&a)), 0.0);
    }

    #[test]
    fn predictor_interpolates_history() {
        let a = SearchPoint::benign();
        let mut b = SearchPoint::benign();
        b.num_qps = 2048;
        let history = vec![(encode(&a), a.clone(), 10.0), (encode(&b), b.clone(), 30.0)];
        let (near_a, _) = predict(&history, &encode(&a), true);
        assert!((near_a - 10.0).abs() < 5.0);
        assert_eq!(best_of(&history, true).unwrap(), &b);
        assert_eq!(best_of(&history, false).unwrap(), &a);
    }

    #[test]
    fn bo_campaign_runs_and_discovers_something() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig {
            strategy: SearchStrategy::Bayesian,
            ..SearchConfig::collie(21)
        }
        .with_budget(SimDuration::from_secs(2 * 3600));
        let outcome = run_search(&mut engine, &space, &config);
        assert!(!outcome.discoveries.is_empty());
        assert!(outcome.experiments > 30);
    }
}
