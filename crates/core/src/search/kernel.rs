//! The generic campaign kernel: one search loop and one MFS extractor for
//! every [`SearchDomain`].
//!
//! [`CampaignLoop`] owns everything the strategies share — budget
//! accounting, the Algorithm-1 line-5 MFS skip (with the empty-MFS guard),
//! per-identity discovery dedup, the Figure-6 trace, rule-hit scoring, and
//! the campaign RNG. [`run_random`], [`run_bayesian`], and
//! [`run_annealing`] are the strategy drivers; [`MfsExtractor`] is the
//! §5.2 feature-necessity prober. All of them are generic over the domain
//! (the BO surrogate encodes points through
//! [`SearchDomain::surrogate_features`]), so the two-host and fabric
//! stacks execute literally the same code.
//!
//! Behaviour notes pinned by tests:
//!
//! * **RNG-stream stability** — draws happen in exactly the order the
//!   pre-unification per-stack loops made them; `tests/golden_traces.rs`
//!   diffs the full fig4/fig5/fig7 grids against committed fixtures.
//! * **Stuck-walk escape** — a walk parked next to a discovered MFS region
//!   can propose free skips indefinitely; after
//!   [`SearchConfig::stuck_skip_limit`] consecutive skips the schedule
//!   restarts from a fresh point. This escape used to exist only in the
//!   fabric copy of the annealer; the kernel gives it to every domain (see
//!   `a_saturating_mfs_cannot_stall_the_annealer`).
//! * **Per-identity dedup** — an anomaly surfacing inside a known MFS
//!   region is redundant only if that MFS has the *same observable
//!   identity* ([`SearchConfig::identity_dedup`]); a loose MFS of a
//!   different identity must not shadow it (see
//!   `a_loose_mfs_does_not_shadow_a_distinct_identity_discovery`).
//! * **Compatibility grids** — both behaviours are config knobs whose
//!   legacy settings ([`SearchConfig::with_legacy_two_host_semantics`])
//!   reproduce the pre-kernel two-host streams bit-for-bit, which is how
//!   the golden suite separates the refactor (stream-preserving) from the
//!   two deliberate fixes (pinned by their own fixtures).

use crate::eval::{Claim, SharedCache};
use crate::search::domain::{CampaignReport, ExtractionCost, SearchDomain};
use crate::search::{RuleHit, SearchConfig};
use crate::space::FeatureValue;
use collie_sim::rng::SimRng;
use collie_sim::series::TimeSeries;
use collie_sim::stats::OnlineStats;
use collie_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// How many redundant (MFS-covered) samples the random baseline may reject
/// in a row before testing the next sample anyway. Rejecting a sample costs
/// no hardware time, but once the discovered MFSes cover most of the space
/// the baseline must not spin forever generating free rejects.
const MAX_CONSECUTIVE_SKIPS: u32 = 256;

/// Bounded re-draws applied to the post-discovery (line 17) restart.
const MAX_RESTART_REDRAWS: usize = 8;

/// Hard bound on simulated steps per speculation-planner invocation. The
/// planners replay the committed loop on cloned RNG state; a legacy
/// configuration whose space is saturated by MFSes can make that replay
/// spin on free skips exactly like the committed loop would, so planning
/// is cut off rather than trusted to converge.
const SPEC_MAX_SIM_STEPS: usize = 512;

/// Number of candidates the BO baseline proposes per round.
const CANDIDATES_PER_ROUND: usize = 8;
/// Number of neighbours used by the BO surrogate.
const NEIGHBOURS: usize = 3;
/// Weight of the BO exploration bonus relative to the predicted value.
const EXPLORATION_WEIGHT: f64 = 0.3;

/// Speculative-evaluation state of one campaign (DESIGN.md §9).
///
/// The commit path reads worker output only through the shared memo
/// cache, and the committed RNG stream is never advanced by prediction —
/// planners *clone* the RNG. Speculation therefore cannot change campaign
/// output, only when measurements get computed.
struct SpecState<D: SearchDomain> {
    /// How many proposals the planners keep in flight.
    lookahead: usize,
    shared: Arc<SharedCache<D::Point, D::Measurement>>,
    /// Sending half of the work queue. Planners buffer their predicted
    /// points into `pending` and [`CampaignLoop::spec_flush`] ships them
    /// as *batches* (one `Vec` per send), so a worker dequeues a whole
    /// chunk of the lookahead set and evaluates it through
    /// [`SpecWorker::compute_batch`](crate::eval::SpecWorker::compute_batch)
    /// — on an incremental engine the chunk shares stage results. Dropped
    /// on teardown so workers exit their receive loops.
    tx: Option<mpsc::Sender<Vec<D::Point>>>,
    /// Points queued by the current planning pass, not yet shipped.
    pending: Vec<D::Point>,
    handles: Vec<JoinHandle<()>>,
    /// Every point ever queued, so re-planning the same future is free.
    sent: HashSet<D::Point>,
    /// The most recent sends (newest last), for backlog throttling.
    recent: VecDeque<D::Point>,
    /// Plan-input fingerprint (committed measurements, MFS-set size) of the
    /// last planning pass, so planners no-op until a commit could actually
    /// change the derived future (see [`CampaignLoop::spec_plan_due`]).
    plan_epoch: Option<(u32, usize)>,
}

impl<D: SearchDomain> Drop for SpecState<D> {
    fn drop(&mut self) {
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One branch of the annealing lookahead simulation.
struct AnnealSim<D: SearchDomain> {
    rng: SimRng,
    current: D::Point,
    /// Guiding value of `current`; `None` once it depends on a measurement
    /// that has not been published yet.
    value: Option<f64>,
    temperature: f64,
    /// Iterations remaining at this temperature, the next one included.
    iterations_left: u32,
    stuck_skips: u32,
}

// Manual impl: a derive would demand `D: Clone`, which the simulation
// never needs.
// collie-lint: begin(rng-clone, reason = "forking an annealing-simulation branch clones planner RNG state; the committed stream is never advanced by prediction")
impl<D: SearchDomain> Clone for AnnealSim<D> {
    fn clone(&self) -> Self {
        AnnealSim {
            rng: self.rng.clone(),
            current: self.current.clone(),
            value: self.value,
            temperature: self.temperature,
            iterations_left: self.iterations_left,
            stuck_skips: self.stuck_skips,
        }
    }
}
// collie-lint: end(rng-clone)

/// What one simulated annealing step would measure next.
enum SpecEmit<P> {
    /// The mutated candidate of Algorithm 1 line 4.
    Candidate(P),
    /// The fresh random point a restart (stuck-skip escape or schedule
    /// rollover) measures.
    Restart(P),
}

/// Mutable campaign state shared by every strategy, generic over the
/// search domain.
pub struct CampaignLoop<'c, D: SearchDomain> {
    domain: D,
    config: &'c SearchConfig,
    rng: SimRng,
    elapsed: SimDuration,
    experiments: u32,
    skipped: u32,
    discoveries: Vec<D::Discovery>,
    rule_hits: Vec<RuleHit>,
    hit_rules: BTreeSet<String>,
    mfs_set: Vec<D::Mfs>,
    trace: TimeSeries,
    spec: Option<SpecState<D>>,
    /// Test hook: every point actually measured, in measurement order
    /// (ranking probes included). Lets white-box tests state contracts
    /// like "no forced BO measurement landed inside a known MFS".
    #[cfg(test)]
    pub(crate) measured_log: Vec<D::Point>,
}

impl<'c, D: SearchDomain> CampaignLoop<'c, D> {
    /// A fresh campaign over `domain`, seeded from `config`.
    pub fn new(domain: D, config: &'c SearchConfig) -> Self {
        let trace = TimeSeries::new(domain.traced_counter());
        CampaignLoop {
            domain,
            config,
            rng: SimRng::new(config.seed),
            elapsed: SimDuration::ZERO,
            experiments: 0,
            skipped: 0,
            discoveries: Vec::new(),
            rule_hits: Vec::new(),
            hit_rules: BTreeSet::new(),
            mfs_set: Vec::new(),
            trace,
            spec: None,
            #[cfg(test)]
            measured_log: Vec::new(),
        }
    }

    /// Switch the campaign to speculative evaluation: planners pre-draw up
    /// to `lookahead` likely next proposals from *clones* of the campaign
    /// RNG, and worker threads compute them into a shared memo cache ahead
    /// of the commit path. Commits still happen strictly in RNG-stream
    /// order through [`CampaignLoop::measure`], so campaign output is
    /// bit-identical to the serial loop; a mispredicted proposal only
    /// wastes worker time. No-op when `lookahead` is 0 or the domain
    /// cannot speculate (e.g. its evaluator is uncached).
    ///
    /// When the evaluator carries a matrix-scoped cache (see
    /// [`EvalContext`](crate::eval::EvalContext)) the workers publish into
    /// that cache instead of a campaign-private one, so speculative
    /// computes are visible to sibling grid cells; the planner's
    /// shared-cache peeks only affect which points get *pre*-computed,
    /// never the committed stream, so the bit-identity contract holds
    /// unchanged.
    pub fn enable_speculation(&mut self, lookahead: usize)
    where
        D::Point: Send + 'static,
        D::Measurement: Send + Sync + 'static,
    {
        if lookahead == 0 || self.spec.is_some() {
            return;
        }
        let threads = lookahead.min(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2),
        );
        let Some(parts) = self.domain.speculation(threads) else {
            return;
        };
        let (tx, rx) = mpsc::channel::<Vec<D::Point>>();
        let rx = Arc::new(parking_lot::Mutex::new(rx));
        let handles = parts
            .workers
            .into_iter()
            .map(|mut worker| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&parts.shared);
                std::thread::spawn(move || loop {
                    // The guard is dropped at the end of the statement, so
                    // only the dequeue is serialized, not the compute.
                    let received = rx.lock().recv();
                    let Ok(batch) = received else { break };
                    // Claim first, then batch-compute only what this
                    // worker owns: claim/fulfill stay per point, so the
                    // cache protocol (and the committed stream reading
                    // through it) is unchanged by batching.
                    let claimed: Vec<D::Point> = batch
                        .into_iter()
                        .filter(|point| matches!(shared.try_claim(point), Claim::Mine))
                        .collect();
                    if claimed.is_empty() {
                        continue;
                    }
                    let measurements = worker.compute_batch(&claimed);
                    for (point, measurement) in claimed.into_iter().zip(measurements) {
                        shared.fulfill(point, measurement);
                    }
                })
            })
            .collect();
        self.spec = Some(SpecState {
            lookahead,
            shared: parts.shared,
            tx: Some(tx),
            pending: Vec::new(),
            handles,
            sent: HashSet::new(),
            recent: VecDeque::new(),
            plan_epoch: None,
        });
    }

    /// True when the planners should not plan right now: speculation is
    /// off, or every one of the last `lookahead` queued points is still in
    /// flight — the workers are behind, and planning more would only grow
    /// the backlog (this is what keeps speculative overhead near zero on a
    /// saturated machine).
    fn spec_throttled(&self) -> bool {
        let Some(spec) = &self.spec else { return true };
        spec.recent.len() >= spec.lookahead
            && spec.recent.iter().all(|p| spec.shared.peek(p).is_none())
    }

    /// Whether the planners have new inputs to work with, stamping the
    /// epoch when they do. A plan is a pure function of the committed
    /// measurement count, the MFS set, and the RNG stream — and a
    /// committed *skip* only advances the RNG past a draw the previous
    /// plan already simulated, leaving the derived future unchanged. So
    /// planners re-run only after a measurement commits or the MFS set
    /// grows; anything else would re-derive an identical (fully
    /// deduplicated) plan at full simulation cost. Without this gate the
    /// skip-heavy random campaigns replan on every one of their tens of
    /// thousands of skip iterations and planning dominates the wall-clock.
    fn spec_plan_due(&mut self) -> bool {
        let epoch = (self.experiments, self.mfs_set.len());
        let Some(spec) = &mut self.spec else {
            return false;
        };
        if spec.plan_epoch == Some(epoch) {
            return false;
        }
        spec.plan_epoch = Some(epoch);
        true
    }

    /// Non-counting replica of [`CampaignLoop::matches_known_mfs`]:
    /// prediction must not touch the committed skip counter.
    fn spec_predicts_skip(&self, point: &D::Point) -> bool {
        self.config.use_mfs
            && self
                .mfs_set
                .iter()
                .any(|m| !D::mfs_is_empty(m) && D::mfs_matches(m, point))
    }

    /// Buffer one predicted proposal for the workers (deduplicated against
    /// everything already queued or computed). Nothing is shipped until
    /// [`CampaignLoop::spec_flush`] runs at the end of the planning pass,
    /// so one pass's predictions travel as batches rather than as a point
    /// per channel send.
    fn spec_send(&mut self, point: D::Point) {
        let Some(spec) = &mut self.spec else { return };
        if spec.sent.contains(&point) || spec.shared.contains(&point) {
            return;
        }
        spec.sent.insert(point.clone());
        spec.recent.push_back(point.clone());
        while spec.recent.len() > spec.lookahead {
            spec.recent.pop_front();
        }
        spec.pending.push(point);
    }

    /// Ship the buffered predictions of the planning pass that just ended,
    /// split into one chunk per worker thread so the batch win (shared
    /// stage results on an incremental engine) does not serialize the
    /// lookahead set onto a single worker. A planner that buffered nothing
    /// flushes nothing; unflushed points at teardown are discarded
    /// speculation, which is always safe.
    fn spec_flush(&mut self) {
        let Some(spec) = &mut self.spec else { return };
        if spec.pending.is_empty() {
            return;
        }
        let Some(tx) = &spec.tx else {
            spec.pending.clear();
            return;
        };
        let pending = std::mem::take(&mut spec.pending);
        let workers = spec.handles.len().max(1);
        let chunk = pending.len().div_ceil(workers);
        for batch in pending.chunks(chunk) {
            let _ = tx.send(batch.to_vec());
        }
    }

    /// A speculated measurement, if a worker already published it.
    fn spec_peek(&self, point: &D::Point) -> Option<Arc<D::Measurement>> {
        self.spec.as_ref().and_then(|s| s.shared.peek(point))
    }

    /// Predict whether measuring `point` (yielding `measurement`) would
    /// commit a new discovery — the exact dedup predicate of
    /// `handle_anomaly` against the *current* MFS set. Used only to stop
    /// simulation branches whose later draws depend on an extraction the
    /// planner cannot replay.
    fn spec_predicts_new_discovery(&self, point: &D::Point, measurement: &D::Measurement) -> bool {
        let Some(identity) = self.domain.judge(measurement) else {
            return false;
        };
        let identity_dedup = self.config.identity_dedup;
        !self.mfs_set.iter().any(|m| {
            !D::mfs_is_empty(m)
                && (!identity_dedup || D::mfs_identity(m) == identity)
                && D::mfs_matches(m, point)
        })
    }

    // collie-lint: begin(rng-clone, reason = "speculation planners replay the committed loop on cloned RNG state (DESIGN.md §9); the committed stream is never advanced by prediction")
    /// Speculation planner for [`run_random`]: the committed stream draws
    /// one random point per iteration and skips MFS-covered draws without
    /// measuring, so the next measured points are a pure function of the
    /// RNG clone and the current MFS set.
    fn spec_plan_random(&mut self) {
        if self.spec_throttled() || !self.spec_plan_due() {
            return;
        }
        let lookahead = self.spec.as_ref().map(|s| s.lookahead).unwrap_or(0);
        let mut rng = self.rng.clone();
        let mut planned = 0usize;
        let mut first = true;
        for _ in 0..SPEC_MAX_SIM_STEPS {
            if planned >= lookahead {
                break;
            }
            let point = self.domain.random_point(&mut rng);
            if self.spec_predicts_skip(&point) {
                continue;
            }
            planned += 1;
            if first {
                // The commit path computes its immediate next point inline;
                // queueing it would only race the main thread.
                first = false;
                continue;
            }
            self.spec_send(point);
        }
        self.spec_flush();
    }

    /// Speculation planner for the §7.2 ranking probes: random points
    /// measured unconditionally, one RNG draw each, so every remaining
    /// probe is exactly predictable.
    fn spec_plan_probes(&mut self, remaining: usize) {
        if self.spec_throttled() || !self.spec_plan_due() {
            return;
        }
        let lookahead = self.spec.as_ref().map(|s| s.lookahead).unwrap_or(0);
        let mut rng = self.rng.clone();
        for i in 0..remaining.min(lookahead + 1) {
            let point = self.domain.random_point(&mut rng);
            if i > 0 {
                self.spec_send(point);
            }
        }
        self.spec_flush();
    }

    /// Advance one annealing-simulation branch by one committed-loop step,
    /// returning the point that step would measure (if any). Replicates
    /// `anneal_schedule`'s draw order exactly: mutate per iteration, the
    /// bounded restart re-draw on a stuck-skip escape, cooling after
    /// `iterations_per_temperature` iterations, and a fresh schedule (with
    /// its line-1 random start) once the temperature floor is reached.
    fn advance_anneal_sim(&mut self, sim: &mut AnnealSim<D>) -> Option<SpecEmit<D::Point>> {
        let config = self.config;
        if sim.iterations_left == 0 {
            sim.temperature *= config.alpha;
            sim.iterations_left = config.iterations_per_temperature;
            if sim.temperature <= config.min_temperature {
                sim.temperature = config.initial_temperature;
                sim.current = self.domain.random_point(&mut sim.rng);
                sim.value = None;
                sim.stuck_skips = 0;
                return Some(SpecEmit::Restart(sim.current.clone()));
            }
            if config.iterations_per_temperature == 0 {
                return None;
            }
        }
        sim.iterations_left -= 1;
        let candidate = self.domain.mutate(&sim.current, &mut sim.rng);
        if self.spec_predicts_skip(&candidate) {
            sim.stuck_skips += 1;
            if let Some(limit) = config.stuck_skip_limit {
                if sim.stuck_skips >= limit {
                    sim.stuck_skips = 0;
                    // `draw_restart_point` replica: bounded re-draw.
                    let mut point = self.domain.random_point(&mut sim.rng);
                    for _ in 0..MAX_RESTART_REDRAWS {
                        if !self.spec_predicts_skip(&point) {
                            break;
                        }
                        point = self.domain.random_point(&mut sim.rng);
                    }
                    sim.current = point;
                    sim.value = None;
                    return Some(SpecEmit::Restart(sim.current.clone()));
                }
            }
            return None;
        }
        sim.stuck_skips = 0;
        Some(SpecEmit::Candidate(candidate))
    }

    /// Speculation planner for [`run_annealing`]'s inner loop: breadth-
    /// first over Metropolis branches. Acceptance with `delta < 0`
    /// consumes no RNG draw; any other outcome consumes exactly one draw
    /// whether accepted or rejected — so a candidate whose value is not
    /// published yet forks exactly three successor states. Branches whose
    /// peeked measurement predicts a *new* discovery are dropped: the
    /// extraction and restart re-draws that follow a commit depend on the
    /// extracted MFS, which the planner cannot replay.
    fn spec_plan_anneal(
        &mut self,
        current: &D::Point,
        current_value: f64,
        temperature: f64,
        iterations_left: u32,
        stuck_skips: u32,
        target: Option<&str>,
    ) {
        if self.spec_throttled() || !self.spec_plan_due() {
            return;
        }
        let lookahead = self.spec.as_ref().map(|s| s.lookahead).unwrap_or(0);
        let mut frontier: VecDeque<AnnealSim<D>> = VecDeque::new();
        frontier.push_back(AnnealSim {
            rng: self.rng.clone(),
            current: current.clone(),
            value: Some(current_value),
            temperature,
            iterations_left,
            stuck_skips,
        });
        let mut planned = 0usize;
        let mut steps = 0usize;
        let mut first = true;
        while planned < lookahead && steps < SPEC_MAX_SIM_STEPS {
            let Some(mut sim) = frontier.pop_front() else {
                break;
            };
            let emit = loop {
                steps += 1;
                if steps >= SPEC_MAX_SIM_STEPS {
                    break None;
                }
                if let Some(emit) = self.advance_anneal_sim(&mut sim) {
                    break Some(emit);
                }
            };
            match emit {
                None => continue,
                Some(SpecEmit::Restart(point)) => {
                    planned += 1;
                    if first {
                        first = false;
                    } else {
                        self.spec_send(point.clone());
                    }
                    if let Some(m) = self.spec_peek(&point) {
                        if self.spec_predicts_new_discovery(&point, &m) {
                            continue;
                        }
                        sim.value = Some(self.domain.signal_value(&m, target));
                    }
                    frontier.push_back(sim);
                }
                Some(SpecEmit::Candidate(point)) => {
                    planned += 1;
                    if first {
                        first = false;
                    } else {
                        self.spec_send(point.clone());
                    }
                    let peeked = self.spec_peek(&point);
                    if let Some(m) = &peeked {
                        if self.spec_predicts_new_discovery(&point, m) {
                            continue;
                        }
                    }
                    let candidate_value = peeked.map(|m| self.domain.signal_value(&m, target));
                    match (sim.value, candidate_value) {
                        (Some(cur), Some(cand)) => {
                            // Both values known: exact Metropolis replica.
                            let delta = self.energy_delta(cur, cand);
                            let accept = if delta < 0.0 {
                                true
                            } else {
                                let probability = (-delta / sim.temperature.max(1e-6)).exp();
                                sim.rng.gen_f64() < probability
                            };
                            if accept {
                                sim.current = point;
                                sim.value = Some(cand);
                            }
                            frontier.push_back(sim);
                        }
                        _ => {
                            // Unknown delta: fork the three possible
                            // Metropolis outcomes.
                            let mut accept_no_draw = sim.clone();
                            accept_no_draw.current = point.clone();
                            accept_no_draw.value = candidate_value;
                            frontier.push_back(accept_no_draw);
                            let _ = sim.rng.gen_f64();
                            let mut accept_with_draw = sim.clone();
                            accept_with_draw.current = point;
                            accept_with_draw.value = candidate_value;
                            frontier.push_back(accept_with_draw);
                            // `sim` itself becomes the reject branch.
                            frontier.push_back(sim);
                        }
                    }
                }
            }
        }
        self.spec_flush();
    }

    /// Speculation planner for the BO seeding phase: four random draws,
    /// measured unless MFS-covered — value-independent, so exactly
    /// predictable.
    fn spec_plan_bo_seeds(&mut self, seeds: usize) {
        if self.spec_throttled() || !self.spec_plan_due() {
            return;
        }
        let mut rng = self.rng.clone();
        let mut first = true;
        for _ in 0..seeds {
            let point = self.domain.random_point(&mut rng);
            if self.spec_predicts_skip(&point) {
                continue;
            }
            if first {
                first = false;
                continue;
            }
            self.spec_send(point);
        }
        self.spec_flush();
    }

    /// Speculation planner for the BO rounds: replays the acquisition
    /// procedure on a cloned RNG and history. Each round's chosen
    /// candidate depends on every previous measured value, so the exact
    /// chain continues only while the peeked measurement is already
    /// published. When the chain stalls on an unpublished value, the next
    /// round's full candidate set is queued under both possible incumbents
    /// (the pending point either beats the best observation or it does
    /// not), which still covers whatever that round will measure.
    fn spec_plan_bo(
        &mut self,
        history: &[(Vec<f64>, D::Point, f64)],
        rounds_left: usize,
        target: Option<&str>,
        maximize: bool,
    ) {
        if self.spec_throttled() || !self.spec_plan_due() {
            return;
        }
        let lookahead = self.spec.as_ref().map(|s| s.lookahead).unwrap_or(0);
        let mut rng = self.rng.clone();
        let mut sim_history: Vec<(Vec<f64>, D::Point, f64)> = history.to_vec();
        let mut planned = 0usize;
        let mut first = true;
        for _ in 0..rounds_left.min(SPEC_MAX_SIM_STEPS) {
            if planned >= lookahead {
                break;
            }
            let best_point = best_of(&sim_history, maximize)
                .cloned()
                .unwrap_or_else(|| self.domain.random_point(&mut rng));
            let mut candidates = Vec::with_capacity(CANDIDATES_PER_ROUND);
            for i in 0..CANDIDATES_PER_ROUND {
                let candidate = if i % 2 == 0 {
                    self.domain.mutate(&best_point, &mut rng)
                } else {
                    self.domain.random_point(&mut rng)
                };
                candidates.push(candidate);
            }
            let mut best_candidate: Option<(f64, D::Point)> = None;
            for candidate in candidates {
                if self.spec_predicts_skip(&candidate) {
                    continue;
                }
                let features = self.domain.surrogate_features(&candidate);
                let (predicted, distance) = predict(&sim_history, &features);
                let oriented = if maximize { predicted } else { -predicted };
                let score = oriented + EXPLORATION_WEIGHT * distance * oriented.abs().max(1.0);
                if best_candidate
                    .as_ref()
                    .map(|(s, _)| score > *s)
                    .unwrap_or(true)
                {
                    best_candidate = Some((score, candidate));
                }
            }
            let Some((_, chosen)) = best_candidate else {
                continue;
            };
            planned += 1;
            if first {
                first = false;
            } else {
                self.spec_send(chosen.clone());
            }
            let Some(m) = self.spec_peek(&chosen) else {
                // Chain stalled: fan out the next round under both
                // possible incumbents.
                let incumbents: Vec<D::Point> = match best_of(&sim_history, maximize) {
                    Some(best) if best != &chosen => vec![best.clone(), chosen.clone()],
                    _ => vec![chosen.clone()],
                };
                for incumbent in incumbents {
                    let mut rng = rng.clone();
                    for i in 0..CANDIDATES_PER_ROUND {
                        if planned >= lookahead {
                            break;
                        }
                        let candidate = if i % 2 == 0 {
                            self.domain.mutate(&incumbent, &mut rng)
                        } else {
                            self.domain.random_point(&mut rng)
                        };
                        if self.spec_predicts_skip(&candidate) {
                            continue;
                        }
                        planned += 1;
                        self.spec_send(candidate);
                    }
                }
                break;
            };
            if self.spec_predicts_new_discovery(&chosen, &m) {
                break;
            }
            let value = self.domain.signal_value(&m, target);
            sim_history.push((self.domain.surrogate_features(&chosen), chosen, value));
        }
        self.spec_flush();
    }
    // collie-lint: end(rng-clone)

    /// The campaign's configuration.
    pub fn config(&self) -> &SearchConfig {
        self.config
    }

    /// True once the simulated budget is spent.
    pub fn out_of_budget(&self) -> bool {
        self.elapsed >= self.config.budget
    }

    /// Draw a uniform random point from the domain's space.
    pub fn random_point(&mut self) -> D::Point {
        self.domain.random_point(&mut self.rng)
    }

    /// Mutate one coordinate of `point` (Algorithm 1 line 4).
    pub fn mutate(&mut self, point: &D::Point) -> D::Point {
        self.domain.mutate(point, &mut self.rng)
    }

    /// One draw from the campaign RNG in `[0, 1)` (Metropolis acceptance).
    pub fn gen_f64(&mut self) -> f64 {
        self.rng.gen_f64()
    }

    /// True if the point falls inside an already-discovered anomaly's MFS
    /// (Algorithm 1, line 5) and the MFS skip is enabled.
    ///
    /// An MFS that ended up with *no* necessary conditions (possible for a
    /// compound-overload workload where every single-feature change still
    /// reproduces the symptom) would match the entire space and starve the
    /// search, so empty MFSes never participate in the skip.
    pub fn matches_known_mfs(&mut self, point: &D::Point) -> bool {
        if !self.config.use_mfs {
            return false;
        }
        let matched = self
            .mfs_set
            .iter()
            .any(|m| !D::mfs_is_empty(m) && D::mfs_matches(m, point));
        if matched {
            self.skipped += 1;
        }
        matched
    }

    /// Run one experiment: charge its hardware cost, record the trace, and
    /// — if the point is anomalous — extract its MFS and log the discovery.
    /// Returns the measurement (for the caller to read its guiding counter)
    /// or `None` if the budget ran out before the experiment could run.
    ///
    /// Measurement follows the monitor's §6 procedure (four samples per
    /// iteration); the domain evaluator's memo cache answers the repeat
    /// samples, so the fidelity costs one flow-model evaluation, not four.
    pub fn measure(&mut self, point: &D::Point) -> Option<D::Measurement> {
        if self.out_of_budget() {
            return None;
        }
        #[cfg(test)]
        self.measured_log.push(point.clone());
        self.elapsed += self.domain.experiment_cost(point);
        self.experiments += 1;
        let (measurement, anomaly) = self.domain.assess(point);

        let trace_value = self.domain.trace_value(&measurement);
        let now = SimTime::ZERO + self.elapsed;
        if let Some(identity) = anomaly {
            self.trace.record_anomaly(now, trace_value);
            if self.domain.reports_rule_hits() {
                self.record_rule_hits(point);
            }
            self.handle_anomaly(point, identity);
        } else {
            self.trace.record(now, trace_value);
        }
        Some(measurement)
    }

    /// Scoring bookkeeping: note the first time each catalogued anomaly was
    /// triggered by a measured experiment. Never consulted by the search.
    fn record_rule_hits(&mut self, point: &D::Point) {
        let at = self.elapsed;
        for rule in self.domain.ground_truth(point) {
            if self.hit_rules.insert(rule.to_string()) {
                self.rule_hits.push(RuleHit {
                    at,
                    rule: rule.to_string(),
                });
            }
        }
    }

    fn handle_anomaly(&mut self, point: &D::Point, identity: D::Identity) {
        // Already covered by a known MFS of the *same observable identity*?
        // Then this is a redundant sighting of an anomaly we have, not a
        // new discovery. An anomaly of a different identity surfacing
        // inside a loose MFS region is operationally a different finding
        // and must not be shadowed by it (`identity_dedup: false` restores
        // the pre-kernel containment-only check for the golden-trace
        // compatibility grids). An *empty* MFS matches vacuously and must
        // not take part in this dedup — one degenerate extraction would
        // otherwise mark every later anomaly redundant and silence the
        // rest of the campaign (same guard as
        // [`CampaignLoop::matches_known_mfs`]).
        let identity_dedup = self.config.identity_dedup;
        if self.mfs_set.iter().any(|m| {
            !D::mfs_is_empty(m)
                && (!identity_dedup || D::mfs_identity(m) == identity)
                && D::mfs_matches(m, point)
        }) {
            return;
        }
        let found_at = self.elapsed;
        let outcome = MfsExtractor::new(&mut self.domain).extract(point, &identity);
        // MFS extraction takes real experiments on real hardware; charge
        // them (this is the flat segment after each red cross in Figure 6).
        self.elapsed += outcome.elapsed;
        self.experiments += outcome.experiments;
        let trace_value = self.trace.samples().last().map(|s| s.value).unwrap_or(0.0);
        self.trace.record(SimTime::ZERO + self.elapsed, trace_value);

        let matched_rules = self
            .domain
            .ground_truth(point)
            .into_iter()
            .map(|r| r.to_string())
            .collect();
        self.mfs_set.push(outcome.mfs.clone());
        let discovery = self.domain.make_discovery(
            found_at,
            point.clone(),
            identity,
            outcome.mfs,
            matched_rules,
        );
        self.discoveries.push(discovery);
    }

    /// The guiding-counter value of a measurement (see
    /// [`SearchDomain::signal_value`]).
    pub fn signal_value(&self, measurement: &D::Measurement, target: Option<&str>) -> f64 {
        self.domain.signal_value(measurement, target)
    }

    /// The surrogate encoding of a point (see
    /// [`SearchDomain::surrogate_features`]).
    pub fn surrogate_features(&self, point: &D::Point) -> Vec<f64> {
        self.domain.surrogate_features(point)
    }

    /// The energy delta of Algorithm 1: negative means the new point is
    /// better (higher diagnostic counter / lower performance counter).
    pub fn energy_delta(&self, old: f64, new: f64) -> f64 {
        let eps = 1e-9;
        match self.config.signal {
            crate::search::SignalMode::Performance => (new - old) / old.abs().max(eps),
            crate::search::SignalMode::Diagnostic => (old - new) / new.abs().max(eps),
        }
    }

    /// The optimisation targets of the annealing/BO outer loops: the
    /// domain's rankable counters ordered by coefficient of variation over
    /// `probes` random experiments (the §7.2 procedure), or a single
    /// un-targeted schedule for domains with one fixed guiding signal (no
    /// probes are spent in that case).
    pub fn ranked_targets(&mut self, probes: usize) -> Vec<Option<String>> {
        let names = self.domain.rankable_counters();
        if names.is_empty() {
            return vec![None];
        }
        let mut stats: Vec<OnlineStats> = vec![OnlineStats::new(); names.len()];
        for probe in 0..probes {
            if self.out_of_budget() {
                break;
            }
            self.spec_plan_probes(probes - probe);
            let point = self.random_point();
            if let Some(measurement) = self.measure(&point) {
                for (i, name) in names.iter().enumerate() {
                    stats[i].push(self.domain.signal_value(&measurement, Some(name)));
                }
            }
        }
        let ranked: Vec<(String, f64)> = names
            .into_iter()
            .zip(stats.iter().map(|s| s.coefficient_of_variation()))
            .collect();
        rank_by_variability(ranked)
    }

    /// Number of discoveries so far (strategies use this to notice that the
    /// last measurement uncovered something new and restart their walk).
    pub fn discovery_count(&self) -> usize {
        self.discoveries.len()
    }

    /// Cache statistics of the domain's evaluator.
    pub fn eval_stats(&self) -> crate::eval::EvalStats {
        self.domain.eval_stats()
    }

    /// Test hook: plant an already-extracted MFS as if a previous discovery
    /// had produced it.
    #[cfg(test)]
    pub(crate) fn plant_mfs(&mut self, mfs: D::Mfs) {
        self.mfs_set.push(mfs);
    }

    /// Finish the campaign and hand back the report for the domain's
    /// outcome wrapper.
    pub fn finish(self) -> CampaignReport<D> {
        CampaignReport {
            discoveries: self.discoveries,
            rule_hits: self.rule_hits,
            trace: self.trace,
            experiments: self.experiments,
            skipped_by_mfs: self.skipped,
            elapsed: self.elapsed,
        }
    }
}

/// Order `(counter, coefficient-of-variation)` pairs by variability,
/// descending, into the annealing/BO target schedule.
///
/// A counter whose probe samples produce a non-finite CoV (a NaN gauge
/// value propagates through the online mean) must not be compared with
/// `partial_cmp(..).unwrap_or(Equal)` directly — NaN compares `Equal`
/// against *everything*, so its final position would depend on the sort
/// algorithm's visit order rather than on the data. Clamping to 0.0 gives
/// such counters the same rank as a constant counter (no usable signal)
/// and keeps the ordering total; ties preserve the domain's stable counter
/// order (the sort is stable).
fn rank_by_variability(mut ranked: Vec<(String, f64)>) -> Vec<Option<String>> {
    for entry in &mut ranked {
        if !entry.1.is_finite() {
            entry.1 = 0.0;
        }
    }
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.into_iter().map(|(n, _)| Some(n)).collect()
}

/// Run the random baseline (black-box fuzzing, §7.2) until the budget is
/// exhausted.
pub fn run_random<D: SearchDomain>(campaign: &mut CampaignLoop<'_, D>) {
    let mut consecutive_skips = 0u32;
    while !campaign.out_of_budget() {
        campaign.spec_plan_random();
        let point = campaign.random_point();
        if consecutive_skips < MAX_CONSECUTIVE_SKIPS && campaign.matches_known_mfs(&point) {
            consecutive_skips += 1;
            continue;
        }
        consecutive_skips = 0;
        if campaign.measure(&point).is_none() {
            break;
        }
    }
}

/// Run the annealing campaign (Algorithm 1) until the budget is exhausted.
///
/// The outer loop follows §7.2: the domain's guiding counters are ranked by
/// their variability over ten random probes, then optimised one after
/// another, cycling until the time budget is spent. Domains with a single
/// fixed guiding signal (no rankable counters) run un-targeted schedules
/// back to back.
pub fn run_annealing<D: SearchDomain>(campaign: &mut CampaignLoop<'_, D>) {
    // `ranked_targets` is never empty: a domain without rankable counters
    // yields the single un-targeted schedule `[None]`.
    let targets = campaign.ranked_targets(10);
    let mut target_index = 0usize;
    while !campaign.out_of_budget() {
        let target = targets[target_index % targets.len()].clone();
        anneal_schedule(campaign, target.as_deref());
        target_index += 1;
    }
}

/// Draw the fresh random point a discovery (or a stuck walk) restarts the
/// walk from.
///
/// Algorithm 1 line 5 applies to the restart too: a random draw can land
/// inside the MFS that was just extracted (its region is by construction a
/// productive part of the space), and measuring it would both waste an
/// experiment and re-flag a known anomaly. Re-draw — bounded, so a set of
/// MFSes that happens to cover most of the space cannot livelock the
/// schedule — until the point is uncovered.
pub(crate) fn draw_restart_point<D: SearchDomain>(campaign: &mut CampaignLoop<'_, D>) -> D::Point {
    draw_point_outside_mfs(campaign, MAX_RESTART_REDRAWS)
}

/// Bounded-re-draw core shared by the restart and the BO budget-drain
/// fallback: redraw while the point sits inside a known MFS, up to
/// `max_redraws` times, then hand back whatever the last draw produced
/// (so a set of MFSes covering the whole space cannot livelock the
/// caller).
fn draw_point_outside_mfs<D: SearchDomain>(
    campaign: &mut CampaignLoop<'_, D>,
    max_redraws: usize,
) -> D::Point {
    let mut point = campaign.random_point();
    for _ in 0..max_redraws {
        if !campaign.matches_known_mfs(&point) {
            return point;
        }
        point = campaign.random_point();
    }
    point
}

/// One annealing schedule driving the guiding signal (optionally one
/// specific `target` counter) to its extreme region.
fn anneal_schedule<D: SearchDomain>(campaign: &mut CampaignLoop<'_, D>, target: Option<&str>) {
    let config = campaign.config().clone();
    // Algorithm 1 line 1: measure a random starting point.
    let mut current = campaign.random_point();
    let Some(measurement) = campaign.measure(&current) else {
        return;
    };
    let mut current_value = campaign.signal_value(&measurement, target);

    let mut temperature = config.initial_temperature;
    let mut stuck_skips = 0u32;
    while temperature > config.min_temperature {
        for iteration in 0..config.iterations_per_temperature {
            if campaign.out_of_budget() {
                return;
            }
            campaign.spec_plan_anneal(
                &current,
                current_value,
                temperature,
                config.iterations_per_temperature - iteration,
                stuck_skips,
                target,
            );
            // Line 4: mutate one search dimension.
            let candidate = campaign.mutate(&current);
            // Line 5: skip workloads already covered by a known anomaly —
            // but escape the neighbourhood if the walk is only producing
            // covered proposals (`stuck_skip_limit`).
            if campaign.matches_known_mfs(&candidate) {
                stuck_skips += 1;
                if let Some(limit) = config.stuck_skip_limit {
                    if stuck_skips >= limit {
                        stuck_skips = 0;
                        current = draw_restart_point(campaign);
                        if let Some(m) = campaign.measure(&current) {
                            current_value = campaign.signal_value(&m, target);
                        }
                    }
                }
                continue;
            }
            stuck_skips = 0;
            let discoveries_before = campaign.discovery_count();
            let Some(measurement) = campaign.measure(&candidate) else {
                return;
            };
            let candidate_value = campaign.signal_value(&measurement, target);

            // Lines 14–17: a new anomaly restarts the walk from a random
            // point so the schedule keeps exploring.
            if campaign.discovery_count() > discoveries_before {
                current = draw_restart_point(campaign);
                if let Some(m) = campaign.measure(&current) {
                    current_value = campaign.signal_value(&m, target);
                }
                continue;
            }

            // Lines 7–13: Metropolis acceptance on the energy delta.
            let delta = campaign.energy_delta(current_value, candidate_value);
            let accept = if delta < 0.0 {
                true
            } else {
                let probability = (-delta / temperature.max(1e-6)).exp();
                campaign.gen_f64() < probability
            };
            if accept {
                current = candidate;
                current_value = candidate_value;
            }
        }
        temperature *= config.alpha;
    }
}

/// Run the Bayesian-optimisation baseline (§7.2) until the budget is
/// exhausted.
///
/// The paper compares Collie against the widely used BO library of
/// Nogueira \[31\], with the counter values as the optimisation target and
/// the MFS skip applied for fairness. A full Gaussian-process BO stack is
/// out of scope for this reproduction (and would pull in heavy numeric
/// dependencies), so this driver implements the same *shape* of algorithm
/// with a light surrogate:
///
/// * every observed `(point, counter value)` pair is remembered,
/// * candidate points are proposed each round (mutations of the best
///   observed point plus fresh random points),
/// * each candidate is scored by a distance-weighted nearest-neighbour
///   estimate of the counter plus an exploration bonus for being far from
///   everything observed (the usual exploitation/exploration trade-off),
/// * the best-scoring candidate is measured next.
///
/// Distances are measured in the domain's
/// [`surrogate_features`](SearchDomain::surrogate_features) encoding, so
/// the driver is generic: the two-host stack encodes the 16-dim workload
/// vector, the fabric stack appends its three fabric coordinates. Like the
/// paper's BO baseline, this works when the counter surface is smooth in
/// the encoded feature space and struggles with the abrupt changes the
/// discrete dimensions cause — which is exactly the behaviour the
/// evaluation section discusses.
pub fn run_bayesian<D: SearchDomain>(campaign: &mut CampaignLoop<'_, D>) {
    // `ranked_targets` is never empty: a domain without rankable counters
    // yields the single un-targeted schedule `[None]`.
    let targets = campaign.ranked_targets(10);
    let maximize = matches!(
        campaign.config().signal,
        crate::search::SignalMode::Diagnostic
    );

    let mut counter_index = 0usize;
    while !campaign.out_of_budget() {
        let target = targets[counter_index % targets.len()].clone();
        let measured = optimise_one_counter(campaign, target.as_deref(), maximize);
        // Once the discovered MFSes cover most of the proposal distribution
        // a pass can reject every candidate without running an experiment;
        // budget must still drain, so force one random measurement. The
        // forced draw honours the Algorithm-1 line-5 skip like every other
        // measurement this driver makes ("with the MFS skip applied for
        // fairness"): re-draw — bounded like the annealing restart, with
        // the random baseline's skip allowance since this *is* a forced
        // random sample — and measure the last draw regardless, so a set
        // of MFSes covering the whole space cannot livelock the drain.
        if measured == 0 && !campaign.out_of_budget() {
            let point = draw_point_outside_mfs(campaign, MAX_CONSECUTIVE_SKIPS as usize);
            if campaign.measure(&point).is_none() {
                return;
            }
        }
        counter_index += 1;
    }
}

/// One BO pass driving `target` (or the domain's aggregate signal) to its
/// extreme region. Returns the number of experiments the pass actually
/// ran.
fn optimise_one_counter<D: SearchDomain>(
    campaign: &mut CampaignLoop<'_, D>,
    target: Option<&str>,
    maximize: bool,
) -> u32 {
    let mut measured = 0u32;
    // Seed the surrogate with a handful of random observations.
    let mut history: Vec<(Vec<f64>, D::Point, f64)> = Vec::new();
    campaign.spec_plan_bo_seeds(4);
    for _ in 0..4 {
        if campaign.out_of_budget() {
            return measured;
        }
        let point = campaign.random_point();
        if campaign.matches_known_mfs(&point) {
            continue;
        }
        if let Some(m) = campaign.measure(&point) {
            measured += 1;
            let value = campaign.signal_value(&m, target);
            history.push((campaign.surrogate_features(&point), point, value));
        }
    }

    // Rounds proportional to the annealing schedule length so both
    // strategies spend comparable time per counter.
    let rounds = campaign.config().iterations_per_temperature as usize * 12;
    for round in 0..rounds {
        if campaign.out_of_budget() {
            return measured;
        }
        campaign.spec_plan_bo(&history, rounds - round, target, maximize);
        let best_point = best_of(&history, maximize)
            .cloned()
            .unwrap_or_else(|| campaign.random_point());

        // Propose candidates: exploit around the incumbent, explore randomly.
        let mut candidates = Vec::with_capacity(CANDIDATES_PER_ROUND);
        for i in 0..CANDIDATES_PER_ROUND {
            let candidate = if i % 2 == 0 {
                campaign.mutate(&best_point)
            } else {
                campaign.random_point()
            };
            candidates.push(candidate);
        }

        // Acquisition: surrogate prediction + exploration bonus.
        let mut best_candidate: Option<(f64, D::Point)> = None;
        for candidate in candidates {
            if campaign.matches_known_mfs(&candidate) {
                continue;
            }
            let features = campaign.surrogate_features(&candidate);
            let (predicted, distance) = predict(&history, &features);
            let oriented = if maximize { predicted } else { -predicted };
            let score = oriented + EXPLORATION_WEIGHT * distance * oriented.abs().max(1.0);
            if best_candidate
                .as_ref()
                .map(|(s, _)| score > *s)
                .unwrap_or(true)
            {
                best_candidate = Some((score, candidate));
            }
        }
        let Some((_, chosen)) = best_candidate else {
            continue;
        };
        let discoveries_before = campaign.discovery_count();
        let Some(m) = campaign.measure(&chosen) else {
            return measured;
        };
        measured += 1;
        let value = campaign.signal_value(&m, target);
        history.push((campaign.surrogate_features(&chosen), chosen, value));
        if campaign.discovery_count() > discoveries_before {
            // Like the annealing search, restart exploration after a find so
            // the surrogate does not keep proposing the same region.
            history.clear();
        }
    }
    measured
}

/// The incumbent of a BO pass: the best point observed so far.
fn best_of<P>(history: &[(Vec<f64>, P, f64)], maximize: bool) -> Option<&P> {
    history
        .iter()
        .max_by(|a, b| {
            let (x, y) = if maximize { (a.2, b.2) } else { (-a.2, -b.2) };
            x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(_, p, _)| p)
}

/// Distance-weighted k-nearest-neighbour prediction plus the distance to
/// the closest observation (used as the exploration term).
///
/// An empty history carries no information, so the prior is neutral for
/// both optimisation directions: predicted value 0.0 at full exploration
/// distance 1.0. (A directional sentinel like `f64::MAX / 1e6` would
/// poison the acquisition score's `oriented.abs().max(1.0)` scaling in
/// minimise mode — the exploration term would be amplified by an
/// astronomic magnitude that no real observation produces.)
fn predict<P>(history: &[(Vec<f64>, P, f64)], features: &[f64]) -> (f64, f64) {
    if history.is_empty() {
        return (0.0, 1.0);
    }
    let mut distances: Vec<(f64, f64)> = history
        .iter()
        .map(|(f, _, v)| (euclidean(f, features), *v))
        .collect();
    distances.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let nearest = &distances[..distances.len().min(NEIGHBOURS)];
    let mut weight_sum = 0.0;
    let mut value_sum = 0.0;
    for (d, v) in nearest {
        let w = 1.0 / (d + 1e-3);
        weight_sum += w;
        value_sum += w * v;
    }
    (value_sum / weight_sum, distances[0].0)
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// The result of one generic extraction: the domain's MFS plus the cost it
/// incurred.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionParts<M> {
    /// The extracted minimal feature set.
    pub mfs: M,
    /// Experiments spent probing.
    pub experiments: u32,
    /// Simulated wall-clock spent probing (each probe costs what a normal
    /// experiment costs — visible as the flat segments of Figure 6).
    pub elapsed: SimDuration,
}

/// Extracts minimal feature sets by probing the domain (§5.2).
///
/// When the search finds an anomalous point, Collie asks: *which of its
/// features are actually necessary to reproduce the anomaly?* With only a
/// handful of dimensions and a few factors each, every feature is probed
/// directly. For a categorical feature, the alternative values are tried —
/// if none still triggers the anomaly, the feature is necessary and must
/// keep its value. For a numeric feature, the ends of its ladder are probed
/// to learn the direction of the condition (at-least or at-most) and a few
/// bisection steps find the coarse threshold, exactly as the paper
/// discretises continuous dimensions into value regions.
///
/// Probes run through the domain's shared memoized evaluator, which matters
/// for cost: the extractor is the heaviest revisiter in a campaign — it
/// re-measures the anomalous point it was handed and its single-feature
/// neighbourhoods overlap across extractions — so routing it through the
/// campaign's memo cache removes most of the recompute while the simulated
/// probe cost keeps being charged.
pub struct MfsExtractor<'d, D: SearchDomain> {
    domain: &'d mut D,
    /// Maximum alternatives probed per categorical feature.
    pub max_alternatives: usize,
    /// Maximum bisection steps per numeric feature.
    pub max_bisection_steps: usize,
}

impl<'d, D: SearchDomain> MfsExtractor<'d, D> {
    /// A new extractor bound to a domain.
    pub fn new(domain: &'d mut D) -> Self {
        MfsExtractor {
            domain,
            // §5.2: "we just do a few tests on each dimension". Two
            // alternatives per categorical feature and one refinement step
            // per numeric feature keep one extraction in the tens of
            // experiments — the flat segments visible in Figure 6 — rather
            // than consuming a large slice of the campaign budget.
            max_alternatives: 2,
            max_bisection_steps: 1,
        }
    }

    /// Override the probe limits (the public per-stack wrappers expose
    /// them as fields).
    pub fn with_limits(mut self, max_alternatives: usize, max_bisection_steps: usize) -> Self {
        self.max_alternatives = max_alternatives;
        self.max_bisection_steps = max_bisection_steps;
        self
    }

    /// Run one probe experiment and report whether it still reproduces the
    /// anomaly under extraction.
    ///
    /// Probes are ordinary monitored iterations, so they follow the §6
    /// four-sample procedure; the shared evaluator's cache makes the
    /// repeats free, while the simulated cost is charged in full.
    fn probe(
        &mut self,
        point: &D::Point,
        signature: &D::Signature,
        cost: &mut ExtractionCost,
    ) -> bool {
        cost.charge(self.domain.experiment_cost(point));
        self.domain.reproduces(point, signature)
    }

    /// Extract the MFS of an anomalous point.
    pub fn extract(
        &mut self,
        anomalous: &D::Point,
        identity: &D::Identity,
    ) -> ExtractionParts<D::Mfs> {
        let mut cost = ExtractionCost::default();
        let signature = self.domain.begin_extraction(anomalous, identity, &mut cost);
        let mut conditions = BTreeMap::new();

        for feature in self.domain.features() {
            match self.domain.feature_value(anomalous, feature) {
                FeatureValue::Number(current) => {
                    if let Some(condition) =
                        self.probe_numeric(anomalous, feature, current, &signature, &mut cost)
                    {
                        conditions.insert(feature, condition);
                    }
                }
                current => {
                    if let Some(condition) =
                        self.probe_categorical(anomalous, feature, current, &signature, &mut cost)
                    {
                        conditions.insert(feature, condition);
                    }
                }
            }
        }

        ExtractionParts {
            mfs: self
                .domain
                .make_mfs(identity, conditions, anomalous.clone()),
            experiments: cost.experiments,
            elapsed: cost.elapsed,
        }
    }

    fn probe_categorical(
        &mut self,
        anomalous: &D::Point,
        feature: D::Feature,
        current: FeatureValue,
        signature: &D::Signature,
        cost: &mut ExtractionCost,
    ) -> Option<crate::monitor::FeatureCondition> {
        let alternatives = self.domain.alternatives(anomalous, feature);
        if alternatives.is_empty() {
            return None;
        }
        for alt in alternatives.iter().take(self.max_alternatives) {
            let mut probe = anomalous.clone();
            self.domain.apply(&mut probe, feature, alt);
            if self.probe(&probe, signature, cost) {
                // Some alternative still triggers: the feature's value is
                // not necessary.
                return None;
            }
        }
        Some(crate::monitor::FeatureCondition::Equals(current))
    }

    fn probe_numeric(
        &mut self,
        anomalous: &D::Point,
        feature: D::Feature,
        current: u64,
        signature: &D::Signature,
        cost: &mut ExtractionCost,
    ) -> Option<crate::monitor::FeatureCondition> {
        use crate::monitor::FeatureCondition;
        let ladder: Vec<u64> = self
            .domain
            .alternatives(anomalous, feature)
            .into_iter()
            .filter_map(|v| match v {
                FeatureValue::Number(n) => Some(n),
                _ => None,
            })
            .collect();
        if ladder.is_empty() {
            return None;
        }
        let lowest = *ladder.iter().min().unwrap();
        let highest = *ladder.iter().max().unwrap();

        let triggers_at = |this: &mut Self, value: u64, cost: &mut ExtractionCost| {
            if value == current {
                return true;
            }
            let mut probe = anomalous.clone();
            this.domain
                .apply(&mut probe, feature, &FeatureValue::Number(value));
            this.probe(&probe, signature, cost)
        };

        let low_triggers = triggers_at(self, lowest.min(current), cost);
        let high_triggers = triggers_at(self, highest.max(current), cost);

        match (low_triggers, high_triggers) {
            // The feature's value does not matter.
            (true, true) => None,
            // Condition is "at least": find the coarse threshold between
            // the lowest non-triggering rung and the current value.
            (false, true) => Some(FeatureCondition::AtLeast(self.bisect(
                anomalous, feature, &ladder, current, signature, cost, /*at_least=*/ true,
            ))),
            // Condition is "at most".
            (true, false) => Some(FeatureCondition::AtMost(self.bisect(
                anomalous, feature, &ladder, current, signature, cost, /*at_least=*/ false,
            ))),
            // Only the observed region triggers.
            (false, false) => Some(FeatureCondition::Equals(FeatureValue::Number(current))),
        }
    }

    /// Coarse threshold search over the rungs between the failing end of
    /// the ladder and the current (triggering) value.
    #[allow(clippy::too_many_arguments)]
    fn bisect(
        &mut self,
        anomalous: &D::Point,
        feature: D::Feature,
        ladder: &[u64],
        current: u64,
        signature: &D::Signature,
        cost: &mut ExtractionCost,
        at_least: bool,
    ) -> u64 {
        // Candidate rungs strictly between the far end and the current
        // value.
        let mut candidates: Vec<u64> = ladder
            .iter()
            .copied()
            .filter(|&v| if at_least { v < current } else { v > current })
            .collect();
        candidates.sort_unstable();
        if at_least {
            candidates.reverse();
        }
        let mut threshold = current;
        for value in candidates.into_iter().take(self.max_bisection_steps) {
            let mut probe = anomalous.clone();
            self.domain
                .apply(&mut probe, feature, &FeatureValue::Number(value));
            if self.probe(&probe, signature, cost) {
                threshold = value;
            } else {
                break;
            }
        }
        threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkloadEngine;
    use crate::eval::Evaluator;
    use crate::monitor::{AnomalyMonitor, FeatureCondition, Mfs, Symptom};
    use crate::search::{run_search, SearchConfig, SearchStrategy, WorkloadDomain};
    use crate::space::{Feature, SearchPoint, SearchSpace};
    use collie_rnic::subsystems::SubsystemId;
    use collie_rnic::workload::{Opcode, Transport};
    use std::collections::BTreeMap;

    fn setup() -> (WorkloadEngine, SearchSpace, AnomalyMonitor) {
        (
            WorkloadEngine::for_catalog(SubsystemId::F),
            SearchSpace::for_host(&SubsystemId::F.host()),
            AnomalyMonitor::new(),
        )
    }

    /// An MFS whose single condition covers the entire space: every point
    /// has a WQE batch of at least 1, so once planted the whole space is
    /// "already discovered" while the MFS still counts as non-empty.
    fn saturating_mfs() -> Mfs {
        let mut conditions = BTreeMap::new();
        conditions.insert(Feature::WqeBatch, FeatureCondition::AtLeast(1));
        Mfs {
            symptom: Symptom::PauseStorm,
            conditions,
            example: SearchPoint::benign(),
        }
    }

    #[test]
    fn restart_points_avoid_known_mfs_regions() {
        // Algorithm 1 line 5 applies to the line-17 restart: after a
        // discovery, the fresh random point must not sit inside an
        // already-extracted MFS (the walk would restart right where it just
        // finished). Plant an MFS covering a large slice of the space and
        // check that restart draws consistently land outside it.
        let (mut engine, space, monitor) = setup();
        let config = SearchConfig::collie(9);
        let mut evaluator = Evaluator::new(&mut engine);
        let domain = WorkloadDomain::new(&mut evaluator, &monitor, &space, config.signal);
        let mut campaign = CampaignLoop::new(domain, &config);
        let mut conditions = BTreeMap::new();
        conditions.insert(Feature::WqeBatch, FeatureCondition::AtLeast(16));
        let planted = Mfs {
            symptom: Symptom::PauseStorm,
            conditions,
            example: SearchPoint::benign(),
        };
        campaign.plant_mfs(planted.clone());
        for _ in 0..25 {
            let point = draw_restart_point(&mut campaign);
            assert!(
                !planted.matches(&point),
                "restart landed inside a known MFS: {point}"
            );
        }
    }

    #[test]
    fn a_saturating_mfs_cannot_stall_the_annealer() {
        // Regression for the stuck-walk escape, newly shared with the
        // two-host annealer through the kernel. With the whole space
        // covered by one (non-empty) MFS, the pre-kernel two-host walk
        // burnt every schedule proposing free skips — roughly a hundred
        // consecutive rejects per measured experiment. The escape forces a
        // restart measurement after `stuck_skip_limit` consecutive skips,
        // so skips per experiment stay bounded by the limit.
        let (mut engine, space, monitor) = setup();
        let config =
            SearchConfig::collie(7).with_budget(collie_sim::time::SimDuration::from_secs(3600));
        assert_eq!(config.stuck_skip_limit, Some(24));
        let mut evaluator = Evaluator::new(&mut engine);
        let domain = WorkloadDomain::new(&mut evaluator, &monitor, &space, config.signal);
        let mut campaign = CampaignLoop::new(domain, &config);
        campaign.plant_mfs(saturating_mfs());
        run_annealing(&mut campaign);
        let report = campaign.finish();
        assert!(report.experiments > 0, "budget must still drain");
        assert!(
            report.skipped_by_mfs <= 30 * report.experiments,
            "the stuck-walk escape must bound free skips per experiment \
             ({} skips / {} experiments)",
            report.skipped_by_mfs,
            report.experiments
        );
    }

    #[test]
    fn without_the_escape_the_saturated_walk_spins() {
        // The other half of the regression: the legacy configuration
        // reproduces the pre-kernel stall, which is what made the golden
        // compatibility grids bit-identical — and what the default config
        // fixes.
        let (mut engine, space, monitor) = setup();
        let config = SearchConfig::collie(7)
            .with_budget(collie_sim::time::SimDuration::from_secs(3600))
            .with_legacy_two_host_semantics();
        let mut evaluator = Evaluator::new(&mut engine);
        let domain = WorkloadDomain::new(&mut evaluator, &monitor, &space, config.signal);
        let mut campaign = CampaignLoop::new(domain, &config);
        campaign.plant_mfs(saturating_mfs());
        run_annealing(&mut campaign);
        let report = campaign.finish();
        assert!(
            report.skipped_by_mfs > 60 * report.experiments.max(1),
            "without the escape a saturated space wastes schedules on free \
             skips ({} skips / {} experiments)",
            report.skipped_by_mfs,
            report.experiments
        );
    }

    #[test]
    fn a_loose_mfs_does_not_shadow_a_distinct_identity_discovery() {
        // The dedup-identity unification (previously fabric-only): a loose
        // pause-storm MFS covers the whole space, and a low-throughput
        // anomaly is then measured inside its region. Containment-only
        // dedup silently swallowed it; identity-keyed dedup records it as
        // the operationally distinct finding it is.
        let (mut engine, space, monitor) = setup();
        // Appendix A anomaly #2: low throughput without pause.
        let mut low_throughput = SearchPoint::benign();
        low_throughput.transport = Transport::Ud;
        low_throughput.opcode = Opcode::Send;
        low_throughput.num_qps = 16;
        low_throughput.wqe_batch = 4;
        low_throughput.recv_queue_depth = 1024;
        low_throughput.send_queue_depth = 1024;
        low_throughput.mtu = 1024;
        low_throughput.messages = vec![1024];

        for (identity_dedup, expected_discoveries) in [(true, 1), (false, 0)] {
            let config = SearchConfig::collie(3)
                .with_budget(collie_sim::time::SimDuration::from_secs(7200))
                .with_identity_dedup(identity_dedup);
            let mut evaluator = Evaluator::new(&mut engine);
            let domain = WorkloadDomain::new(&mut evaluator, &monitor, &space, config.signal);
            let mut campaign = CampaignLoop::new(domain, &config);
            campaign.plant_mfs(saturating_mfs());
            campaign.measure(&low_throughput).unwrap();
            let report = campaign.finish();
            assert_eq!(
                report.discoveries.len(),
                expected_discoveries,
                "identity_dedup={identity_dedup}"
            );
            if identity_dedup {
                assert_eq!(report.discoveries[0].symptom, Symptom::LowThroughput);
            }
        }
    }

    #[test]
    fn predictor_interpolates_history() {
        let a = SearchPoint::benign();
        let mut b = SearchPoint::benign();
        b.num_qps = 2048;
        let enc = WorkloadDomain::workload_surrogate;
        let history = vec![(enc(&a), a.clone(), 10.0), (enc(&b), b.clone(), 30.0)];
        let (near_a, _) = predict(&history, &enc(&a));
        assert!((near_a - 10.0).abs() < 5.0);
        assert_eq!(best_of(&history, true).unwrap(), &b);
        assert_eq!(best_of(&history, false).unwrap(), &a);
        // An empty history has no information: the prior is the neutral
        // (0.0, 1.0) regardless of the optimisation direction, so the
        // acquisition's `oriented.abs().max(1.0)` scaling stays at 1.0
        // instead of being poisoned by a directional sentinel.
        let empty: Vec<(Vec<f64>, SearchPoint, f64)> = Vec::new();
        assert_eq!(predict(&empty, &enc(&a)), (0.0, 1.0));
        assert!(best_of(&empty, true).is_none());
    }

    #[test]
    fn bo_campaign_runs_and_discovers_something() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig {
            strategy: SearchStrategy::Bayesian,
            ..SearchConfig::collie(21)
        }
        .with_budget(collie_sim::time::SimDuration::from_secs(2 * 3600));
        let outcome = run_search(&mut engine, &space, &config);
        assert!(!outcome.discoveries.is_empty());
        assert!(outcome.experiments > 30);
    }

    #[test]
    fn bo_budget_drain_fallback_honours_the_mfs_skip() {
        // Regression for the MFS-skip bypass: when a BO pass rejected every
        // candidate, the budget-drain fallback measured `random_point()`
        // without consulting `matches_known_mfs`, so the "BO with the MFS
        // skip applied for fairness" baseline quietly re-measured known-MFS
        // regions. Plant an MFS covering every WQE batch above the lowest
        // rung (7/8 of draws) and disable the surrogate rounds
        // (`iterations_per_temperature: 0`): a pass then measures only the
        // rare seed draws that land outside, and most passes end with zero
        // measurements, forcing the fallback. With the bounded re-draw the
        // forced measurement must land outside the planted region too —
        // every point this campaign measures after the 10 ranking probes
        // is outside — where the pre-fix fallback measured the first
        // (almost always covered) draw.
        let (mut engine, space, monitor) = setup();
        let config = SearchConfig {
            strategy: SearchStrategy::Bayesian,
            iterations_per_temperature: 0,
            ..SearchConfig::collie(13)
        }
        .with_budget(collie_sim::time::SimDuration::from_secs(3600));
        let mut evaluator = Evaluator::new(&mut engine);
        let domain = WorkloadDomain::new(&mut evaluator, &monitor, &space, config.signal);
        let mut campaign = CampaignLoop::new(domain, &config);
        let mut conditions = BTreeMap::new();
        conditions.insert(Feature::WqeBatch, FeatureCondition::AtLeast(2));
        let planted = Mfs {
            symptom: Symptom::PauseStorm,
            conditions,
            example: SearchPoint::benign(),
        };
        campaign.plant_mfs(planted.clone());
        run_bayesian(&mut campaign);
        let measured = campaign.measured_log.clone();
        let report = campaign.finish();
        assert!(
            report.experiments > 20,
            "the fallback must still drain the budget ({} experiments)",
            report.experiments
        );
        // The §7.2 ranking probes are unconditional (the annealer's are
        // too); every measurement after them goes through the skip.
        for point in &measured[10..] {
            assert!(
                !planted.matches(point),
                "a forced BO measurement landed inside a known MFS: {point}"
            );
        }
        // Non-vacuousness: the planted MFS rejected plenty of draws, so
        // passes with zero measurements (the fallback trigger) occurred.
        // (`experiments` includes MFS-extraction probes, which never pass
        // through the skip, so the two counters are not directly
        // comparable.)
        assert!(
            report.skipped_by_mfs > 50,
            "the planted MFS should dominate the proposal stream \
             ({} skips / {} experiments)",
            report.skipped_by_mfs,
            report.experiments
        );
    }

    #[test]
    fn non_finite_cov_counters_rank_deterministically() {
        // A counter whose samples include a NaN gauge value propagates NaN
        // through the online mean and past the zero-mean guard.
        let mut nan_stats = OnlineStats::new();
        nan_stats.push(f64::NAN);
        nan_stats.push(1.0);
        assert!(nan_stats.coefficient_of_variation().is_nan());
        // `partial_cmp(..).unwrap_or(Equal)` would leave such a counter's
        // rank to the sort algorithm's visit order; the clamp gives it a
        // constant counter's rank (0.0) and the stable sort pins ties to
        // the domain's counter order.
        // collie-lint: begin(counter-name, reason = "synthetic counter names exercising the NaN/∞ ranking clamp; never published to a registry")
        let ranked = vec![
            ("diag/a".to_string(), f64::NAN),
            ("diag/b".to_string(), 0.5),
            ("diag/c".to_string(), f64::NEG_INFINITY),
            ("diag/d".to_string(), 2.0),
            ("diag/e".to_string(), 0.0),
        ];
        let order: Vec<String> = rank_by_variability(ranked).into_iter().flatten().collect();
        assert_eq!(order, ["diag/d", "diag/b", "diag/a", "diag/c", "diag/e"]);
        // collie-lint: end(counter-name)
    }

    #[test]
    fn legacy_semantics_builder_sets_both_compat_knobs() {
        let config = SearchConfig::collie(1).with_legacy_two_host_semantics();
        assert_eq!(config.stuck_skip_limit, None);
        assert!(!config.identity_dedup);
        // Defaults keep the kernel semantics.
        let default = SearchConfig::collie(1);
        assert_eq!(default.stuck_skip_limit, Some(24));
        assert!(default.identity_dedup);
    }

    #[test]
    fn the_two_legacy_knobs_only_change_campaigns_that_hit_them() {
        // A short campaign that never saturates and never sees two
        // symptoms in one region is bit-identical under both semantics —
        // the compat knobs gate *extra* behaviour, they do not reorder
        // any RNG draw.
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config =
            SearchConfig::collie(42).with_budget(collie_sim::time::SimDuration::from_secs(900));
        let mut a_engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let a = run_search(&mut a_engine, &space, &config);
        let mut b_engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let b = run_search(
            &mut b_engine,
            &space,
            &config.clone().with_legacy_two_host_semantics(),
        );
        assert_eq!(a, b);
    }

    /// Everything a campaign commits, captured for bit-level comparison
    /// between the serial loop and a speculative run.
    #[derive(Debug, PartialEq)]
    struct CommittedStream {
        measured: Vec<SearchPoint>,
        experiments: u32,
        skipped_by_mfs: u32,
        elapsed: collie_sim::time::SimDuration,
        symptoms: Vec<Symptom>,
        stats: crate::eval::EvalStats,
    }

    /// `(points sent to workers, shared-cache computes, shared-cache
    /// serves)` of a speculative run — `None` when the campaign ran
    /// serially.
    type SpecActivity = Option<(usize, u64, u64)>;

    fn committed_stream(
        strategy: SearchStrategy,
        lookahead: Option<usize>,
    ) -> (CommittedStream, SpecActivity) {
        let (mut engine, space, monitor) = setup();
        let config = SearchConfig {
            strategy,
            ..SearchConfig::collie(29)
        }
        .with_budget(collie_sim::time::SimDuration::from_secs(2 * 3600));
        let mut evaluator = Evaluator::new(&mut engine);
        let domain = WorkloadDomain::new(&mut evaluator, &monitor, &space, config.signal);
        let mut campaign = CampaignLoop::new(domain, &config);
        if let Some(lookahead) = lookahead {
            campaign.enable_speculation(lookahead);
        }
        match strategy {
            SearchStrategy::Random => run_random(&mut campaign),
            SearchStrategy::SimulatedAnnealing => run_annealing(&mut campaign),
            SearchStrategy::Bayesian => run_bayesian(&mut campaign),
        }
        let measured = campaign.measured_log.clone();
        let stats = campaign.eval_stats();
        let activity = campaign.spec.as_ref().map(|s| {
            (
                s.sent.len(),
                s.shared.computed_count(),
                s.shared.served_count(),
            )
        });
        let report = campaign.finish();
        (
            CommittedStream {
                measured,
                experiments: report.experiments,
                skipped_by_mfs: report.skipped_by_mfs,
                elapsed: report.elapsed,
                symptoms: report.discoveries.iter().map(|d| d.symptom).collect(),
                stats,
            },
            activity,
        )
    }

    #[test]
    fn speculative_campaigns_commit_the_serial_stream() {
        // The tentpole contract: speculation is an execution strategy, not
        // a search strategy. For every driver, a speculative campaign must
        // commit exactly the serial measurement sequence — same measured
        // points in the same order, same budget accounting, same
        // discoveries, and same evaluator statistics (mis-speculated work
        // lands only in the shared cache, never in the campaign's books).
        for strategy in [
            SearchStrategy::Random,
            SearchStrategy::SimulatedAnnealing,
            SearchStrategy::Bayesian,
        ] {
            let (serial, serial_activity) = committed_stream(strategy, None);
            assert!(
                !serial.measured.is_empty(),
                "{strategy:?}: the serial oracle must measure something"
            );
            assert_eq!(
                serial_activity, None,
                "{strategy:?}: serial run must stay serial"
            );
            for lookahead in [2usize, 8] {
                let (speculative, activity) = committed_stream(strategy, Some(lookahead));
                assert_eq!(
                    serial, speculative,
                    "{strategy:?} with lookahead {lookahead} diverged from the serial stream"
                );
                let (sent, computed, _served) =
                    activity.expect("speculation must have engaged on a memoized evaluator");
                assert!(
                    sent > 0,
                    "{strategy:?} with lookahead {lookahead}: the planner never \
                     speculated a single point"
                );
                assert!(
                    computed > 0,
                    "{strategy:?} with lookahead {lookahead}: nothing was ever \
                     computed through the shared cache"
                );
            }
        }
    }
}
