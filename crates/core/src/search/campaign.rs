//! Shared campaign state and accounting.
//!
//! Every strategy (random, BO, simulated annealing) runs inside a
//! [`Campaign`]: it asks the campaign to measure points, the campaign
//! charges the hardware-time cost, applies the MFS skip, detects anomalies,
//! extracts their MFS, records the Figure-6 trace, and accumulates the
//! discoveries. Keeping all of that here means the strategies differ only
//! in how they pick the next point — which is exactly the comparison the
//! paper's evaluation makes.

use crate::engine::WorkloadEngine;
use crate::eval::{EvalStats, Evaluator};
use crate::monitor::{AnomalyMonitor, Mfs, MfsExtractor, Symptom};
use crate::search::{SearchConfig, SignalMode};
use crate::space::{SearchPoint, SearchSpace};
use collie_rnic::subsystem::Measurement;
use collie_sim::counters::CounterKind;
use collie_sim::rng::SimRng;
use collie_sim::series::TimeSeries;
use collie_sim::stats::OnlineStats;
use collie_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One anomaly discovered by a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discovery {
    /// Simulated wall-clock at which the anomaly was confirmed (before its
    /// MFS extraction).
    pub at: SimDuration,
    /// The workload that triggered it.
    pub point: SearchPoint,
    /// The observed symptom.
    pub symptom: Symptom,
    /// The extracted minimal feature set.
    pub mfs: Mfs,
    /// Ground-truth catalogue rules this workload triggers (empty if the
    /// discovery does not correspond to a catalogued anomaly). Used only
    /// for scoring, never by the search itself.
    pub matched_rules: Vec<String>,
}

/// First time a catalogued anomaly was triggered by a measured experiment.
///
/// This is evaluation-side scoring (it relies on the ground-truth oracle the
/// way the paper relies on its known anomaly list); the search itself never
/// sees it. A campaign "finds" anomaly #N the first time it *tests* a
/// workload that triggers it, whether or not that workload also becomes a
/// new MFS — exactly the y-axis of Figures 4 and 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleHit {
    /// Simulated wall-clock at which the rule was first triggered.
    pub at: SimDuration,
    /// Ground-truth rule name (`collie/<n>`).
    pub rule: String,
}

/// The result of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Human-readable label of the configuration ("Collie(Diag)", …).
    pub label: String,
    /// Every anomaly discovered, in discovery order.
    pub discoveries: Vec<Discovery>,
    /// First-trigger times of every catalogued anomaly hit by a measured
    /// experiment (scoring only; see [`RuleHit`]).
    pub rule_hits: Vec<RuleHit>,
    /// Trace of the campaign's signal-mode counter over the campaign, with
    /// anomaly markers: the receive-WQE-cache-miss diagnostic counter for
    /// diagnostic-mode campaigns (the Figure-6 series), the receive-side
    /// throughput gauge for performance-mode campaigns (see
    /// [`SignalMode::traced_counter`]).
    pub trace: TimeSeries,
    /// Experiments actually run (skipped points are free).
    pub experiments: u32,
    /// Points skipped by the MFS filter.
    pub skipped_by_mfs: u32,
    /// Simulated wall-clock consumed.
    pub elapsed: SimDuration,
}

impl SearchOutcome {
    /// The distinct catalogued anomalies *found* by the campaign: the
    /// ground-truth rules matched by its discoveries — every anomalous
    /// workload that became a new minimal feature set, which is how the
    /// paper counts "anomalies found" (one MFS per anomaly in the set `S`
    /// of Algorithm 1).
    pub fn distinct_known_anomalies(&self) -> BTreeSet<String> {
        self.discoveries
            .iter()
            .flat_map(|d| d.matched_rules.iter().cloned())
            .collect()
    }

    /// The distinct catalogued anomalies *triggered* by any measured
    /// experiment, including redundant sightings inside already-known MFS
    /// regions. Always a superset of [`distinct_known_anomalies`]; reported
    /// alongside it by the harness.
    ///
    /// [`distinct_known_anomalies`]: SearchOutcome::distinct_known_anomalies
    pub fn distinct_triggered_anomalies(&self) -> BTreeSet<String> {
        self.rule_hits
            .iter()
            .map(|h| h.rule.clone())
            .chain(
                self.discoveries
                    .iter()
                    .flat_map(|d| d.matched_rules.iter().cloned()),
            )
            .collect()
    }

    /// Simulated time at which the N-th distinct catalogued anomaly was
    /// found (None if fewer were found). This is the quantity plotted on
    /// Figures 4 and 5.
    pub fn time_to_find(&self, n: usize) -> Option<SimDuration> {
        self.milestones()
            .into_iter()
            .find(|(_, count)| *count >= n)
            .map(|(at, _)| at)
    }

    /// Cumulative (time, distinct anomaly count) milestones over the
    /// discovery log.
    pub fn milestones(&self) -> Vec<(SimDuration, usize)> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut out = Vec::new();
        for d in &self.discoveries {
            let before = seen.len();
            seen.extend(d.matched_rules.iter().cloned());
            if seen.len() > before {
                out.push((d.at, seen.len()));
            }
        }
        out
    }
}

/// Mutable state shared by every strategy.
pub(crate) struct Campaign<'a> {
    evaluator: Evaluator<'a>,
    pub(crate) space: &'a SearchSpace,
    pub(crate) monitor: &'a AnomalyMonitor,
    pub(crate) config: &'a SearchConfig,
    pub(crate) rng: SimRng,
    traced_counter: &'static str,
    elapsed: SimDuration,
    experiments: u32,
    skipped: u32,
    discoveries: Vec<Discovery>,
    rule_hits: Vec<RuleHit>,
    hit_rules: BTreeSet<String>,
    mfs_set: Vec<Mfs>,
    trace: TimeSeries,
}

impl<'a> Campaign<'a> {
    pub(crate) fn new(
        engine: &'a mut WorkloadEngine,
        space: &'a SearchSpace,
        monitor: &'a AnomalyMonitor,
        config: &'a SearchConfig,
    ) -> Self {
        let evaluator = if config.memoize {
            Evaluator::new(engine)
        } else {
            Evaluator::uncached(engine)
        };
        let traced_counter = config.signal.traced_counter();
        Campaign {
            evaluator,
            space,
            monitor,
            config,
            rng: SimRng::new(config.seed),
            traced_counter,
            elapsed: SimDuration::ZERO,
            experiments: 0,
            skipped: 0,
            discoveries: Vec::new(),
            rule_hits: Vec::new(),
            hit_rules: BTreeSet::new(),
            mfs_set: Vec::new(),
            trace: TimeSeries::new(traced_counter),
        }
    }

    /// True once the simulated budget is spent.
    pub(crate) fn out_of_budget(&self) -> bool {
        self.elapsed >= self.config.budget
    }

    /// True if the point falls inside an already-discovered anomaly's MFS
    /// (Algorithm 1, line 5) and the MFS skip is enabled.
    ///
    /// An MFS that ended up with *no* necessary conditions (possible for a
    /// compound-overload workload where every single-feature change still
    /// reproduces the symptom) would match the entire space and starve the
    /// search, so empty MFSes never participate in the skip.
    pub(crate) fn matches_known_mfs(&mut self, point: &SearchPoint) -> bool {
        if !self.config.use_mfs {
            return false;
        }
        let matched = self
            .mfs_set
            .iter()
            .any(|m| !m.is_empty() && m.matches(point));
        if matched {
            self.skipped += 1;
        }
        matched
    }

    /// Run one experiment: charge its hardware cost, record the trace, and
    /// — if the point is anomalous — extract its MFS and log the discovery.
    /// Returns the measurement (for the caller to read its guiding counter)
    /// or `None` if the budget ran out before the experiment could run.
    ///
    /// Measurement follows the monitor's §6 procedure (four samples per
    /// iteration); the evaluator's memo cache answers the repeat samples,
    /// so the fidelity costs one flow-model evaluation, not four.
    pub(crate) fn measure(&mut self, point: &SearchPoint) -> Option<Measurement> {
        if self.out_of_budget() {
            return None;
        }
        self.elapsed += WorkloadEngine::experiment_cost(point);
        self.experiments += 1;
        let (measurement, verdict) = self.evaluator.measure_and_assess(self.monitor, point);

        let trace_value = measurement
            .counters
            .value(self.traced_counter)
            .unwrap_or(0.0);
        let now = SimTime::ZERO + self.elapsed;
        if let Some(symptom) = verdict.symptom {
            self.trace.record_anomaly(now, trace_value);
            self.record_rule_hits(point);
            self.handle_anomaly(point, symptom);
        } else {
            self.trace.record(now, trace_value);
        }
        Some(measurement)
    }

    /// Scoring bookkeeping: note the first time each catalogued anomaly was
    /// triggered by a measured experiment. Never consulted by the search.
    fn record_rule_hits(&mut self, point: &SearchPoint) {
        let at = self.elapsed;
        for rule in self.evaluator.ground_truth(point) {
            if self.hit_rules.insert(rule.to_string()) {
                self.rule_hits.push(RuleHit {
                    at,
                    rule: rule.to_string(),
                });
            }
        }
    }

    fn handle_anomaly(&mut self, point: &SearchPoint, symptom: Symptom) {
        // Already covered by a known MFS? Then this is a redundant sighting
        // of an anomaly we have, not a new discovery. An *empty* MFS matches
        // vacuously and must not take part in this dedup — one degenerate
        // extraction would otherwise mark every later anomaly redundant and
        // silence the rest of the campaign (same guard as
        // [`Campaign::matches_known_mfs`]).
        if self
            .mfs_set
            .iter()
            .any(|m| !m.is_empty() && m.matches(point))
        {
            return;
        }
        let found_at = self.elapsed;
        let outcome = {
            let mut extractor = MfsExtractor::new(&mut self.evaluator, self.monitor, self.space);
            extractor.extract(point, symptom)
        };
        // MFS extraction takes real experiments on real hardware; charge
        // them (this is the flat segment after each red cross in Figure 6).
        self.elapsed += outcome.elapsed;
        self.experiments += outcome.experiments;
        let trace_value = self.trace.samples().last().map(|s| s.value).unwrap_or(0.0);
        self.trace.record(SimTime::ZERO + self.elapsed, trace_value);

        let matched_rules = self
            .evaluator
            .ground_truth(point)
            .into_iter()
            .map(|r| r.to_string())
            .collect();
        self.mfs_set.push(outcome.mfs.clone());
        self.discoveries.push(Discovery {
            at: found_at,
            point: point.clone(),
            symptom,
            mfs: outcome.mfs,
            matched_rules,
        });
    }

    /// The guiding-counter value of a measurement under the configured
    /// signal mode: the sum of diagnostic counters to maximise, or the sum
    /// of performance counters to minimise, depending on the mode — or one
    /// specific counter when `target` names it.
    pub(crate) fn signal_value(&self, measurement: &Measurement, target: Option<&str>) -> f64 {
        if let Some(name) = target {
            return measurement.counters.value(name).unwrap_or(0.0);
        }
        let kind = match self.config.signal {
            SignalMode::Performance => CounterKind::Performance,
            SignalMode::Diagnostic => CounterKind::Diagnostic,
        };
        measurement
            .counters
            .iter()
            .filter(|(_, k, _)| *k == kind)
            .map(|(_, _, v)| v)
            .sum()
    }

    /// The energy delta of Algorithm 1: negative means the new point is
    /// better (higher diagnostic counter / lower performance counter).
    pub(crate) fn energy_delta(&self, old: f64, new: f64) -> f64 {
        let eps = 1e-9;
        match self.config.signal {
            SignalMode::Performance => (new - old) / old.abs().max(eps),
            SignalMode::Diagnostic => (old - new) / new.abs().max(eps),
        }
    }

    /// Rank the counters of the configured family by coefficient of
    /// variation over `probes` random experiments (the procedure §7.2 uses
    /// to decide which diagnostic counter to optimise first).
    pub(crate) fn rank_counters(&mut self, probes: usize) -> Vec<String> {
        let kind = match self.config.signal {
            SignalMode::Performance => CounterKind::Performance,
            SignalMode::Diagnostic => CounterKind::Diagnostic,
        };
        let names: Vec<String> = self
            .evaluator
            .subsystem()
            .registry()
            .names(kind)
            .into_iter()
            .collect();
        let mut stats: Vec<OnlineStats> = vec![OnlineStats::new(); names.len()];
        for _ in 0..probes {
            if self.out_of_budget() {
                break;
            }
            let point = self.space.random_point(&mut self.rng);
            if let Some(measurement) = self.measure(&point) {
                for (i, name) in names.iter().enumerate() {
                    stats[i].push(measurement.counters.value(name).unwrap_or(0.0));
                }
            }
        }
        let mut ranked: Vec<(String, f64)> = names
            .into_iter()
            .zip(stats.iter().map(|s| s.coefficient_of_variation()))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.into_iter().map(|(n, _)| n).collect()
    }

    /// Number of discoveries so far (strategies use this to notice that the
    /// last measurement uncovered something new and restart their walk).
    pub(crate) fn discovery_count(&self) -> usize {
        self.discoveries.len()
    }

    /// Cache statistics of the campaign's evaluator.
    pub(crate) fn eval_stats(&self) -> EvalStats {
        self.evaluator.stats()
    }

    /// Test hook: plant an already-extracted MFS as if a previous discovery
    /// had produced it.
    #[cfg(test)]
    pub(crate) fn plant_mfs(&mut self, mfs: Mfs) {
        self.mfs_set.push(mfs);
    }

    /// Finish the campaign and hand back the outcome.
    pub(crate) fn finish(self) -> SearchOutcome {
        SearchOutcome {
            label: self.config.label(),
            discoveries: self.discoveries,
            rule_hits: self.rule_hits,
            trace: self.trace,
            experiments: self.experiments,
            skipped_by_mfs: self.skipped,
            elapsed: self.elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_rnic::subsystems::SubsystemId;
    use collie_rnic::workload::{Opcode, Transport};

    fn setup() -> (WorkloadEngine, SearchSpace, AnomalyMonitor, SearchConfig) {
        (
            WorkloadEngine::for_catalog(SubsystemId::F),
            SearchSpace::for_host(&SubsystemId::F.host()),
            AnomalyMonitor::new(),
            SearchConfig::collie(3).with_budget(SimDuration::from_secs(7200)),
        )
    }

    #[test]
    fn measuring_an_anomalous_point_records_a_discovery_with_mfs() {
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        let mut point = SearchPoint::benign();
        point.transport = Transport::Ud;
        point.opcode = Opcode::Send;
        point.wqe_batch = 64;
        point.recv_queue_depth = 256;
        point.mtu = 2048;
        point.messages = vec![2048];
        campaign.measure(&point).unwrap();
        let outcome = campaign.finish();
        assert_eq!(outcome.discoveries.len(), 1);
        let d = &outcome.discoveries[0];
        assert!(d.matched_rules.contains(&"collie/1".to_string()));
        assert!(d.mfs.matches(&point));
        assert!(
            outcome.experiments > 1,
            "MFS extraction charges experiments"
        );
        assert!(!outcome.trace.anomaly_samples().is_empty());
    }

    #[test]
    fn repeated_sightings_of_the_same_anomaly_count_once() {
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        let mut point = SearchPoint::benign();
        point.transport = Transport::Ud;
        point.opcode = Opcode::Send;
        point.wqe_batch = 64;
        point.recv_queue_depth = 256;
        campaign.measure(&point).unwrap();
        // A harsher variant inside the same MFS.
        point.wqe_batch = 128;
        assert!(campaign.matches_known_mfs(&point), "should be skippable");
        campaign.measure(&point).unwrap();
        let outcome = campaign.finish();
        assert_eq!(outcome.discoveries.len(), 1);
        assert_eq!(outcome.skipped_by_mfs, 1);
        assert_eq!(outcome.distinct_known_anomalies().len(), 1);
    }

    #[test]
    fn budget_is_enforced() {
        let (mut engine, space, monitor, _) = setup();
        let config = SearchConfig::collie(3).with_budget(SimDuration::from_secs(45));
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        let p = SearchPoint::benign();
        assert!(campaign.measure(&p).is_some());
        // Budget (45 s) is consumed by the first experiment (>= 20 s) plus
        // the second; afterwards measure refuses to run.
        campaign.measure(&p);
        assert!(campaign.measure(&p).is_none() || campaign.out_of_budget());
    }

    #[test]
    fn energy_delta_directions() {
        let (mut engine, space, monitor, config) = setup();
        let campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        // Diagnostic mode: higher counter value = negative delta (better).
        assert!(campaign.energy_delta(10.0, 20.0) < 0.0);
        assert!(campaign.energy_delta(20.0, 10.0) > 0.0);
        let perf_config = SearchConfig::collie(3).with_signal(SignalMode::Performance);
        let mut engine2 = WorkloadEngine::for_catalog(SubsystemId::F);
        let campaign2 = Campaign::new(&mut engine2, &space, &monitor, &perf_config);
        // Performance mode: lower counter value = negative delta (better).
        assert!(campaign2.energy_delta(20.0, 10.0) < 0.0);
        assert!(campaign2.energy_delta(10.0, 20.0) > 0.0);
    }

    #[test]
    fn counter_ranking_returns_all_nine_diagnostic_counters() {
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        let ranked = campaign.rank_counters(10);
        assert_eq!(ranked.len(), 9);
        assert!(ranked.iter().all(|n| n.starts_with("diag/")));
    }

    #[test]
    fn time_to_find_and_milestones() {
        let outcome = SearchOutcome {
            label: "test".to_string(),
            discoveries: vec![],
            rule_hits: vec![],
            trace: TimeSeries::new("t"),
            experiments: 0,
            skipped_by_mfs: 0,
            elapsed: SimDuration::ZERO,
        };
        assert_eq!(outcome.time_to_find(1), None);
        assert!(outcome.milestones().is_empty());
    }

    #[test]
    fn an_empty_mfs_does_not_suppress_later_discoveries() {
        // Regression: `Mfs::matches` is vacuously true when `conditions` is
        // empty, and the discovery dedup used to consult it without the
        // `!is_empty()` guard that `matches_known_mfs` applies — one
        // degenerate extraction marked every later anomaly a "redundant
        // sighting" and silenced the rest of the campaign.
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        campaign.plant_mfs(Mfs {
            symptom: Symptom::PauseStorm,
            conditions: std::collections::BTreeMap::new(),
            example: SearchPoint::benign(),
        });
        let mut point = SearchPoint::benign();
        point.transport = Transport::Ud;
        point.opcode = Opcode::Send;
        point.wqe_batch = 64;
        point.recv_queue_depth = 256;
        point.mtu = 2048;
        point.messages = vec![2048];
        // The empty MFS matches everything, but neither the skip nor the
        // dedup may consult it.
        assert!(!campaign.matches_known_mfs(&point));
        campaign.measure(&point).unwrap();
        let outcome = campaign.finish();
        assert_eq!(
            outcome.discoveries.len(),
            1,
            "an empty MFS must not mark new anomalies redundant"
        );
        assert_eq!(outcome.skipped_by_mfs, 0);
    }

    #[test]
    fn diagnostic_mode_traces_the_figure6_counter() {
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        campaign.measure(&SearchPoint::benign()).unwrap();
        let outcome = campaign.finish();
        assert_eq!(
            outcome.trace.name(),
            collie_rnic::counters::diag::RECV_WQE_CACHE_MISS
        );
    }

    #[test]
    fn performance_mode_traces_the_throughput_gauge() {
        // A performance-mode campaign only has generic counters, so its
        // trace records the receive-side throughput gauge instead of a
        // vendor diagnostic counter (see `SignalMode::traced_counter`).
        let (mut engine, space, monitor, _) = setup();
        let config = SearchConfig::collie(3).with_signal(SignalMode::Performance);
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        campaign.measure(&SearchPoint::benign()).unwrap();
        let outcome = campaign.finish();
        assert_eq!(
            outcome.trace.name(),
            collie_rnic::counters::perf::RX_BYTES_PER_SEC
        );
        assert!(
            outcome.trace.samples()[0].value > 0.0,
            "a benign point moves real bytes"
        );
    }

    #[test]
    fn repeated_measurements_are_served_from_the_memo_cache() {
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        let point = SearchPoint::benign();
        campaign.measure(&point).unwrap();
        campaign.measure(&point).unwrap();
        let stats = campaign.eval_stats();
        assert!(stats.hits >= 1, "{stats:?}");
        // The repeat still charged its simulated cost and experiment count.
        let outcome = campaign.finish();
        assert_eq!(outcome.experiments, 2);
        assert!(outcome.elapsed >= SimDuration::from_secs(40));
    }

    #[test]
    fn rule_hits_are_recorded_for_every_measured_anomalous_point() {
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        // Two different catalogued triggers, measured back to back.
        campaign.measure(&crate::catalog::KnownAnomaly::by_id(1).unwrap().trigger);
        campaign.measure(&crate::catalog::KnownAnomaly::by_id(3).unwrap().trigger);
        let outcome = campaign.finish();
        let rules = outcome.distinct_known_anomalies();
        assert!(rules.contains("collie/1"), "{rules:?}");
        assert!(rules.contains("collie/3"), "{rules:?}");
        // Milestones are cumulative and time-ordered.
        let milestones = outcome.milestones();
        assert!(milestones.len() >= 2);
        assert!(milestones
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert!(outcome.time_to_find(1).unwrap() <= outcome.time_to_find(2).unwrap());
    }
}
