//! Two-host campaign outcomes and the two-host [`SearchDomain`] binding.
//!
//! Every strategy (random, BO, simulated annealing) runs inside the generic
//! [`CampaignLoop`](crate::search::kernel::CampaignLoop): it asks the loop
//! to measure points, the loop charges the hardware-time cost, applies the
//! MFS skip, detects anomalies, extracts their MFS, records the Figure-6
//! trace, and accumulates the discoveries. [`WorkloadDomain`] is the
//! two-host instantiation — the paper's testbed of one sender/receiver pair
//! over the four-dimensional workload space — and this module also owns the
//! public outcome types ([`Discovery`], [`RuleHit`], [`SearchOutcome`]).

use crate::eval::Evaluator;
use crate::monitor::{dominant_diag_counter, ReproductionSignature};
use crate::monitor::{AnomalyMonitor, FeatureCondition, Mfs, Symptom};
use crate::search::domain::{CampaignReport, ExtractionCost, SearchDomain};
use crate::search::SignalMode;
use crate::space::{Feature, FeatureValue, SearchPoint, SearchSpace};
use collie_rnic::workload::{Opcode, Transport};
use collie_sim::counters::CounterKind;
use collie_sim::series::TimeSeries;
use collie_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// One anomaly discovered by a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discovery {
    /// Simulated wall-clock at which the anomaly was confirmed (before its
    /// MFS extraction).
    pub at: SimDuration,
    /// The workload that triggered it.
    pub point: SearchPoint,
    /// The observed symptom.
    pub symptom: Symptom,
    /// The extracted minimal feature set.
    pub mfs: Mfs,
    /// Ground-truth catalogue rules this workload triggers (empty if the
    /// discovery does not correspond to a catalogued anomaly). Used only
    /// for scoring, never by the search itself.
    pub matched_rules: Vec<String>,
}

/// First time a catalogued anomaly was triggered by a measured experiment.
///
/// This is evaluation-side scoring (it relies on the ground-truth oracle the
/// way the paper relies on its known anomaly list); the search itself never
/// sees it. A campaign "finds" anomaly #N the first time it *tests* a
/// workload that triggers it, whether or not that workload also becomes a
/// new MFS — exactly the y-axis of Figures 4 and 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleHit {
    /// Simulated wall-clock at which the rule was first triggered.
    pub at: SimDuration,
    /// Ground-truth rule name (`collie/<n>`).
    pub rule: String,
}

/// The result of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Human-readable label of the configuration ("Collie(Diag)", …).
    pub label: String,
    /// Every anomaly discovered, in discovery order.
    pub discoveries: Vec<Discovery>,
    /// First-trigger times of every catalogued anomaly hit by a measured
    /// experiment (scoring only; see [`RuleHit`]).
    pub rule_hits: Vec<RuleHit>,
    /// Trace of the campaign's signal-mode counter over the campaign, with
    /// anomaly markers: the receive-WQE-cache-miss diagnostic counter for
    /// diagnostic-mode campaigns (the Figure-6 series), the receive-side
    /// throughput gauge for performance-mode campaigns (see
    /// [`SignalMode::traced_counter`]).
    pub trace: TimeSeries,
    /// Experiments actually run (skipped points are free).
    pub experiments: u32,
    /// Points skipped by the MFS filter.
    pub skipped_by_mfs: u32,
    /// Simulated wall-clock consumed.
    pub elapsed: SimDuration,
}

impl SearchOutcome {
    /// Assemble the public outcome from a finished kernel report.
    pub(crate) fn from_report(
        label: String,
        report: CampaignReport<WorkloadDomain<'_, '_>>,
    ) -> Self {
        SearchOutcome {
            label,
            discoveries: report.discoveries,
            rule_hits: report.rule_hits,
            trace: report.trace,
            experiments: report.experiments,
            skipped_by_mfs: report.skipped_by_mfs,
            elapsed: report.elapsed,
        }
    }

    /// The distinct catalogued anomalies *found* by the campaign: the
    /// ground-truth rules matched by its discoveries — every anomalous
    /// workload that became a new minimal feature set, which is how the
    /// paper counts "anomalies found" (one MFS per anomaly in the set `S`
    /// of Algorithm 1).
    pub fn distinct_known_anomalies(&self) -> BTreeSet<String> {
        self.discoveries
            .iter()
            .flat_map(|d| d.matched_rules.iter().cloned())
            .collect()
    }

    /// The campaign's discoveries as triggers for the remediation →
    /// verification pipeline (see [`crate::remedy::Qualifier`]).
    pub fn discovered_triggers(&self) -> Vec<crate::remedy::DiscoveredTrigger> {
        self.discoveries
            .iter()
            .map(|d| crate::remedy::DiscoveredTrigger {
                point: d.point.clone(),
                symptom: d.symptom,
                matched_rules: d.matched_rules.clone(),
            })
            .collect()
    }

    /// The distinct catalogued anomalies *triggered* by any measured
    /// experiment, including redundant sightings inside already-known MFS
    /// regions. Always a superset of [`distinct_known_anomalies`]; reported
    /// alongside it by the harness.
    ///
    /// [`distinct_known_anomalies`]: SearchOutcome::distinct_known_anomalies
    pub fn distinct_triggered_anomalies(&self) -> BTreeSet<String> {
        self.rule_hits
            .iter()
            .map(|h| h.rule.clone())
            .chain(
                self.discoveries
                    .iter()
                    .flat_map(|d| d.matched_rules.iter().cloned()),
            )
            .collect()
    }

    /// Simulated time at which the N-th distinct catalogued anomaly was
    /// found (None if fewer were found). This is the quantity plotted on
    /// Figures 4 and 5.
    pub fn time_to_find(&self, n: usize) -> Option<SimDuration> {
        self.milestones()
            .into_iter()
            .find(|(_, count)| *count >= n)
            .map(|(at, _)| at)
    }

    /// Cumulative (time, distinct anomaly count) milestones over the
    /// discovery log.
    pub fn milestones(&self) -> Vec<(SimDuration, usize)> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut out = Vec::new();
        for d in &self.discoveries {
            let before = seen.len();
            seen.extend(d.matched_rules.iter().cloned());
            if seen.len() > before {
                out.push((d.at, seen.len()));
            }
        }
        out
    }
}

/// The two-host search domain: the paper's testbed (one sender/receiver
/// pair) over the four-dimensional workload space, guided by the RNIC's
/// performance or diagnostic counters.
///
/// This is the [`SearchDomain`] binding the generic campaign kernel and MFS
/// extractor instantiate for Figures 4–6: sampling and mutation delegate to
/// the [`SearchSpace`], measurement runs through the memoized
/// [`Evaluator`], the anomaly identity is the end-to-end [`Symptom`], and
/// the extraction signature is the symptom plus the dominant diagnostic
/// counter (so probes that trip a *different* bottleneck do not erase
/// conditions).
pub struct WorkloadDomain<'a, 'e> {
    evaluator: &'a mut Evaluator<'e>,
    monitor: &'a AnomalyMonitor,
    space: &'a SearchSpace,
    signal: SignalMode,
}

impl<'a, 'e> WorkloadDomain<'a, 'e> {
    /// Bind a two-host domain to an evaluator, monitor, space, and guiding
    /// counter family.
    pub fn new(
        evaluator: &'a mut Evaluator<'e>,
        monitor: &'a AnomalyMonitor,
        space: &'a SearchSpace,
        signal: SignalMode,
    ) -> Self {
        WorkloadDomain {
            evaluator,
            monitor,
            space,
            signal,
        }
    }

    /// The 16-dim surrogate encoding of one two-host workload point:
    /// numeric features are log-scaled, categorical features become small
    /// integer codes. (The message pattern contributes two coordinates —
    /// mean request size and burst length — which is why the vector is one
    /// longer than the 15-feature projection.) An associated function so
    /// the fabric domain can embed the culprit workload's encoding inside
    /// its own surrogate vector without binding a two-host domain.
    pub(crate) fn workload_surrogate(point: &SearchPoint) -> Vec<f64> {
        let transport = match point.transport {
            Transport::Rc => 0.0,
            Transport::Uc => 1.0,
            Transport::Ud => 2.0,
        };
        let opcode = match point.opcode {
            Opcode::Send => 0.0,
            Opcode::Write => 1.0,
            Opcode::Read => 2.0,
        };
        // The GPU offset assumes hosts expose fewer than 4 NUMA nodes (a
        // 5th node would collide with GPU 0 and break the injectivity
        // contract of `surrogate_features`). Every catalog host satisfies
        // this; the offset cannot grow without moving the golden fig4 BO
        // streams, so a wider host must bump it together with a fixture
        // re-record.
        let memory_code = |m: &collie_host::memory::MemoryTarget| match m {
            collie_host::memory::MemoryTarget::HostDram { numa_node } => *numa_node as f64,
            collie_host::memory::MemoryTarget::GpuMemory { gpu_id } => 4.0 + *gpu_id as f64,
        };
        vec![
            transport,
            opcode,
            (point.num_qps as f64).log2(),
            (point.wqe_batch as f64).log2(),
            point.sge_per_wqe as f64,
            (point.send_queue_depth as f64).log2(),
            (point.recv_queue_depth as f64).log2(),
            (point.mtu as f64).log2(),
            (point.mrs_per_qp as f64).log2(),
            (point.mr_size_bytes as f64).log2(),
            point.mean_message_bytes().max(1.0).log2(),
            point.messages.len() as f64,
            if point.bidirectional { 1.0 } else { 0.0 },
            if point.with_loopback { 1.0 } else { 0.0 },
            memory_code(&point.src_memory),
            memory_code(&point.dst_memory),
        ]
    }
}

impl SearchDomain for WorkloadDomain<'_, '_> {
    type Point = SearchPoint;
    type Feature = Feature;
    type Measurement = collie_rnic::subsystem::Measurement;
    type Identity = Symptom;
    type Mfs = Mfs;
    type Discovery = Discovery;
    type Signature = ReproductionSignature;

    fn random_point(&mut self, rng: &mut collie_sim::rng::SimRng) -> SearchPoint {
        self.space.random_point(rng)
    }

    fn mutate(&mut self, point: &SearchPoint, rng: &mut collie_sim::rng::SimRng) -> SearchPoint {
        self.space.mutate(point, rng)
    }

    fn features(&self) -> Vec<Feature> {
        Feature::ALL.to_vec()
    }

    fn feature_value(&self, point: &SearchPoint, feature: Feature) -> FeatureValue {
        point.feature_value(feature)
    }

    fn apply(&self, point: &mut SearchPoint, feature: Feature, value: &FeatureValue) {
        point.apply(feature, value);
    }

    fn alternatives(&self, point: &SearchPoint, feature: Feature) -> Vec<FeatureValue> {
        self.space.alternatives(point, feature)
    }

    fn experiment_cost(&self, point: &SearchPoint) -> SimDuration {
        crate::engine::WorkloadEngine::experiment_cost(point)
    }

    fn assess(&mut self, point: &SearchPoint) -> (Self::Measurement, Option<Symptom>) {
        let (measurement, verdict) = self.evaluator.measure_and_assess(self.monitor, point);
        (measurement, verdict.symptom)
    }

    fn symptom(identity: &Symptom) -> Symptom {
        *identity
    }

    fn ground_truth(&self, point: &SearchPoint) -> Vec<&'static str> {
        self.evaluator.ground_truth(point)
    }

    fn eval_stats(&self) -> crate::eval::EvalStats {
        self.evaluator.stats()
    }

    fn speculation(
        &mut self,
        workers: usize,
    ) -> Option<crate::eval::SpeculationParts<SearchPoint, Self::Measurement>> {
        self.evaluator.speculation(workers)
    }

    fn judge(&self, measurement: &Self::Measurement) -> Option<Symptom> {
        self.monitor
            .assess(measurement, &self.evaluator.subsystem().rnic)
            .symptom
    }

    fn traced_counter(&self) -> &'static str {
        self.signal.traced_counter()
    }

    fn trace_value(&self, measurement: &Self::Measurement) -> f64 {
        measurement
            .counters
            .value(self.traced_counter())
            .unwrap_or(0.0)
    }

    /// The sum of diagnostic counters to maximise, or the sum of
    /// performance counters to minimise, depending on the mode — or one
    /// specific counter when `target` names it.
    fn signal_value(&self, measurement: &Self::Measurement, target: Option<&str>) -> f64 {
        if let Some(name) = target {
            return measurement.counters.value(name).unwrap_or(0.0);
        }
        let kind = match self.signal {
            SignalMode::Performance => CounterKind::Performance,
            SignalMode::Diagnostic => CounterKind::Diagnostic,
        };
        measurement
            .counters
            .iter()
            .filter(|(_, k, _)| *k == kind)
            .map(|(_, _, v)| v)
            .sum()
    }

    fn rankable_counters(&self) -> Vec<String> {
        let kind = match self.signal {
            SignalMode::Performance => CounterKind::Performance,
            SignalMode::Diagnostic => CounterKind::Diagnostic,
        };
        self.evaluator
            .subsystem()
            .registry()
            .names(kind)
            .into_iter()
            .collect()
    }

    /// See `WorkloadDomain::workload_surrogate` (the fabric domain embeds
    /// the same encoding, so the body lives in the associated function).
    fn surrogate_features(&self, point: &SearchPoint) -> Vec<f64> {
        WorkloadDomain::workload_surrogate(point)
    }

    fn mfs_identity(mfs: &Mfs) -> Symptom {
        mfs.symptom
    }

    fn mfs_is_empty(mfs: &Mfs) -> bool {
        mfs.is_empty()
    }

    fn mfs_matches(mfs: &Mfs, point: &SearchPoint) -> bool {
        mfs.matches(point)
    }

    /// One extra experiment captures the anomaly's observable identity
    /// (symptom + dominant diagnostic counter) that every probe is compared
    /// against.
    fn begin_extraction(
        &mut self,
        anomalous: &SearchPoint,
        identity: &Symptom,
        cost: &mut ExtractionCost,
    ) -> ReproductionSignature {
        cost.charge(self.experiment_cost(anomalous));
        let reference = self.evaluator.measure(anomalous);
        ReproductionSignature {
            symptom: *identity,
            dominant_counter: dominant_diag_counter(&reference),
        }
    }

    /// "Reproduces" means the probe shows the *same observable identity*:
    /// the same end-to-end symptom and the same dominant diagnostic
    /// counter. Requiring only "some anomaly" would make almost every
    /// feature look irrelevant on hosts where several bottlenecks can be
    /// tripped at once (a probe that swaps UD for RC and then pauses
    /// because of the PCIe-ordering bottleneck is evidence of a *different*
    /// anomaly, not evidence that the transport does not matter). Both
    /// parts of the signature are observable without any hardware
    /// knowledge, exactly like the counters the search itself uses.
    fn reproduces(&mut self, probe: &SearchPoint, signature: &ReproductionSignature) -> bool {
        let (measurement, verdict) = self.evaluator.measure_and_assess(self.monitor, probe);
        if verdict.symptom != Some(signature.symptom) {
            return false;
        }
        match &signature.dominant_counter {
            Some(reference) => dominant_diag_counter(&measurement).as_deref() == Some(reference),
            None => true,
        }
    }

    fn make_mfs(
        &self,
        identity: &Symptom,
        conditions: BTreeMap<Feature, FeatureCondition>,
        example: SearchPoint,
    ) -> Mfs {
        Mfs {
            symptom: *identity,
            conditions,
            example,
        }
    }

    fn make_discovery(
        &self,
        at: SimDuration,
        point: SearchPoint,
        identity: Symptom,
        mfs: Mfs,
        matched_rules: Vec<String>,
    ) -> Discovery {
        Discovery {
            at,
            point,
            symptom: identity,
            mfs,
            matched_rules,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkloadEngine;
    use crate::search::kernel::CampaignLoop;
    use crate::search::SearchConfig;
    use collie_rnic::subsystems::SubsystemId;
    use collie_rnic::workload::{Opcode, Transport};

    fn setup() -> (WorkloadEngine, SearchSpace, AnomalyMonitor, SearchConfig) {
        (
            WorkloadEngine::for_catalog(SubsystemId::F),
            SearchSpace::for_host(&SubsystemId::F.host()),
            AnomalyMonitor::new(),
            SearchConfig::collie(3).with_budget(SimDuration::from_secs(7200)),
        )
    }

    /// Build a campaign loop over a freshly bound two-host domain.
    macro_rules! campaign {
        ($engine:expr, $evaluator:ident, $space:expr, $monitor:expr, $config:expr) => {{
            $evaluator = Evaluator::new($engine);
            CampaignLoop::new(
                WorkloadDomain::new(&mut $evaluator, $monitor, $space, $config.signal),
                $config,
            )
        }};
    }

    #[test]
    fn measuring_an_anomalous_point_records_a_discovery_with_mfs() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        let mut point = SearchPoint::benign();
        point.transport = Transport::Ud;
        point.opcode = Opcode::Send;
        point.wqe_batch = 64;
        point.recv_queue_depth = 256;
        point.mtu = 2048;
        point.messages = vec![2048];
        campaign.measure(&point).unwrap();
        let outcome = SearchOutcome::from_report(config.label(), campaign.finish());
        assert_eq!(outcome.discoveries.len(), 1);
        let d = &outcome.discoveries[0];
        assert!(d.matched_rules.contains(&"collie/1".to_string()));
        assert!(d.mfs.matches(&point));
        assert!(
            outcome.experiments > 1,
            "MFS extraction charges experiments"
        );
        assert!(!outcome.trace.anomaly_samples().is_empty());
    }

    #[test]
    fn repeated_sightings_of_the_same_anomaly_count_once() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        let mut point = SearchPoint::benign();
        point.transport = Transport::Ud;
        point.opcode = Opcode::Send;
        point.wqe_batch = 64;
        point.recv_queue_depth = 256;
        campaign.measure(&point).unwrap();
        // A harsher variant inside the same MFS.
        point.wqe_batch = 128;
        assert!(campaign.matches_known_mfs(&point), "should be skippable");
        campaign.measure(&point).unwrap();
        let outcome = SearchOutcome::from_report(config.label(), campaign.finish());
        assert_eq!(outcome.discoveries.len(), 1);
        assert_eq!(outcome.skipped_by_mfs, 1);
        assert_eq!(outcome.distinct_known_anomalies().len(), 1);
    }

    #[test]
    fn budget_is_enforced() {
        let (mut engine, space, monitor, _) = setup();
        let config = SearchConfig::collie(3).with_budget(SimDuration::from_secs(45));
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        let p = SearchPoint::benign();
        assert!(campaign.measure(&p).is_some());
        // Budget (45 s) is consumed by the first experiment (>= 20 s) plus
        // the second; afterwards measure refuses to run.
        campaign.measure(&p);
        assert!(campaign.measure(&p).is_none() || campaign.out_of_budget());
    }

    #[test]
    fn energy_delta_directions() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        // Diagnostic mode: higher counter value = negative delta (better).
        assert!(campaign.energy_delta(10.0, 20.0) < 0.0);
        assert!(campaign.energy_delta(20.0, 10.0) > 0.0);
        let perf_config = SearchConfig::collie(3).with_signal(SignalMode::Performance);
        let mut engine2 = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator2;
        let campaign2 = campaign!(&mut engine2, evaluator2, &space, &monitor, &perf_config);
        // Performance mode: lower counter value = negative delta (better).
        assert!(campaign2.energy_delta(20.0, 10.0) < 0.0);
        assert!(campaign2.energy_delta(10.0, 20.0) > 0.0);
    }

    #[test]
    fn surrogate_encoding_distinguishes_different_points() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator = Evaluator::new(&mut engine);
        let domain = WorkloadDomain::new(&mut evaluator, &monitor, &space, config.signal);
        let a = SearchPoint::benign();
        let mut b = SearchPoint::benign();
        b.num_qps = 1024;
        b.transport = Transport::Ud;
        b.opcode = Opcode::Send;
        assert_ne!(domain.surrogate_features(&a), domain.surrogate_features(&b));
        assert_eq!(domain.surrogate_features(&a).len(), 16);
        assert_eq!(domain.surrogate_features(&a), domain.surrogate_features(&a));
    }

    #[test]
    fn counter_ranking_returns_all_nine_diagnostic_counters() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        let ranked = campaign.ranked_targets(10);
        assert_eq!(ranked.len(), 9);
        assert!(ranked
            .iter()
            .all(|n| n.as_deref().is_some_and(|n| n.starts_with("diag/"))));
    }

    #[test]
    fn time_to_find_and_milestones() {
        let outcome = SearchOutcome {
            label: "test".to_string(),
            discoveries: vec![],
            rule_hits: vec![],
            trace: TimeSeries::new("t"),
            experiments: 0,
            skipped_by_mfs: 0,
            elapsed: SimDuration::ZERO,
        };
        assert_eq!(outcome.time_to_find(1), None);
        assert!(outcome.milestones().is_empty());
    }

    #[test]
    fn an_empty_mfs_does_not_suppress_later_discoveries() {
        // Regression: `Mfs::matches` is vacuously true when `conditions` is
        // empty, and the discovery dedup used to consult it without the
        // `!is_empty()` guard that `matches_known_mfs` applies — one
        // degenerate extraction marked every later anomaly a "redundant
        // sighting" and silenced the rest of the campaign.
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        campaign.plant_mfs(Mfs {
            symptom: Symptom::PauseStorm,
            conditions: std::collections::BTreeMap::new(),
            example: SearchPoint::benign(),
        });
        let mut point = SearchPoint::benign();
        point.transport = Transport::Ud;
        point.opcode = Opcode::Send;
        point.wqe_batch = 64;
        point.recv_queue_depth = 256;
        point.mtu = 2048;
        point.messages = vec![2048];
        // The empty MFS matches everything, but neither the skip nor the
        // dedup may consult it.
        assert!(!campaign.matches_known_mfs(&point));
        campaign.measure(&point).unwrap();
        let outcome = SearchOutcome::from_report(config.label(), campaign.finish());
        assert_eq!(
            outcome.discoveries.len(),
            1,
            "an empty MFS must not mark new anomalies redundant"
        );
        assert_eq!(outcome.skipped_by_mfs, 0);
    }

    #[test]
    fn diagnostic_mode_traces_the_figure6_counter() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        campaign.measure(&SearchPoint::benign()).unwrap();
        let outcome = SearchOutcome::from_report(config.label(), campaign.finish());
        assert_eq!(
            outcome.trace.name(),
            collie_rnic::counters::diag::RECV_WQE_CACHE_MISS
        );
    }

    #[test]
    fn performance_mode_traces_the_throughput_gauge() {
        // A performance-mode campaign only has generic counters, so its
        // trace records the receive-side throughput gauge instead of a
        // vendor diagnostic counter (see `SignalMode::traced_counter`).
        let (mut engine, space, monitor, _) = setup();
        let config = SearchConfig::collie(3).with_signal(SignalMode::Performance);
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        campaign.measure(&SearchPoint::benign()).unwrap();
        let outcome = SearchOutcome::from_report(config.label(), campaign.finish());
        assert_eq!(
            outcome.trace.name(),
            collie_rnic::counters::perf::RX_BYTES_PER_SEC
        );
        assert!(
            outcome.trace.samples()[0].value > 0.0,
            "a benign point moves real bytes"
        );
    }

    #[test]
    fn repeated_measurements_are_served_from_the_memo_cache() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        let point = SearchPoint::benign();
        campaign.measure(&point).unwrap();
        campaign.measure(&point).unwrap();
        let stats = campaign.eval_stats();
        assert!(stats.hits >= 1, "{stats:?}");
        // The repeat still charged its simulated cost and experiment count.
        let outcome = SearchOutcome::from_report(config.label(), campaign.finish());
        assert_eq!(outcome.experiments, 2);
        assert!(outcome.elapsed >= SimDuration::from_secs(40));
    }

    #[test]
    fn rule_hits_are_recorded_for_every_measured_anomalous_point() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        // Two different catalogued triggers, measured back to back.
        campaign.measure(&crate::catalog::KnownAnomaly::by_id(1).unwrap().trigger);
        campaign.measure(&crate::catalog::KnownAnomaly::by_id(3).unwrap().trigger);
        let outcome = SearchOutcome::from_report(config.label(), campaign.finish());
        let rules = outcome.distinct_known_anomalies();
        assert!(rules.contains("collie/1"), "{rules:?}");
        assert!(rules.contains("collie/3"), "{rules:?}");
        // Milestones are cumulative and time-ordered.
        let milestones = outcome.milestones();
        assert!(milestones.len() >= 2);
        assert!(milestones
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert!(outcome.time_to_find(1).unwrap() <= outcome.time_to_find(2).unwrap());
    }
}
