//! Random input generation (black-box fuzzing baseline, §7.2).
//!
//! The simplest way to use Collie's search space: draw uniform random
//! points and test them. The paper shows this already beats existing
//! tooling — the space itself is more expressive than Perftest-style
//! benchmarks — but only uncovers the anomalies with simple triggering
//! conditions (7 of 13 on subsystem F).

use super::campaign::Campaign;

/// How many redundant (MFS-covered) samples the generator may reject in a
/// row before testing the next sample anyway. Rejecting a sample costs no
/// hardware time, but once the discovered MFSes cover most of the space the
/// baseline must not spin forever generating free rejects.
const MAX_CONSECUTIVE_SKIPS: u32 = 256;

/// Run the random baseline until the budget is exhausted.
pub(crate) fn run(campaign: &mut Campaign<'_>) {
    let mut consecutive_skips = 0u32;
    while !campaign.out_of_budget() {
        let point = campaign.space.random_point(&mut campaign.rng);
        if consecutive_skips < MAX_CONSECUTIVE_SKIPS && campaign.matches_known_mfs(&point) {
            consecutive_skips += 1;
            continue;
        }
        consecutive_skips = 0;
        if campaign.measure(&point).is_none() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::WorkloadEngine;
    use crate::search::{run_search, SearchConfig, SearchStrategy};
    use crate::space::SearchSpace;
    use collie_rnic::subsystems::SubsystemId;
    use collie_sim::time::SimDuration;

    #[test]
    fn random_search_finds_simple_anomalies_on_subsystem_f() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig {
            strategy: SearchStrategy::Random,
            ..SearchConfig::collie(11)
        }
        .with_budget(SimDuration::from_secs(2 * 3600));
        let outcome = run_search(&mut engine, &space, &config);
        assert!(
            !outcome.distinct_known_anomalies().is_empty(),
            "two simulated hours of random probing should stumble on something"
        );
        assert!(outcome.experiments > 50);
    }
}
