//! Simulated annealing over counter values (Algorithm 1).
//!
//! The optimiser the paper settles on: start from a random workload, mutate
//! one dimension at a time, and accept mutations that push the guiding
//! counter towards its extreme region — always when they improve it, and
//! with probability `exp(-ΔE/T)` when they do not, so that early in the
//! schedule the search can cross valleys. Two extensions matter in
//! practice and are reproduced here:
//!
//! * workloads falling inside an already-discovered anomaly's MFS are
//!   skipped without running an experiment (line 5), and
//! * when a new anomaly is found, the search restarts from a fresh random
//!   point (line 17) instead of milking the same region.
//!
//! The outer loop follows §7.2: the guiding counters are ranked by their
//! variability over ten random probes, then optimised one after another,
//! cycling until the time budget is spent.

use super::campaign::Campaign;

/// Run the annealing campaign until the budget is exhausted.
pub(crate) fn run(campaign: &mut Campaign<'_>) {
    let ranked = campaign.rank_counters(10);
    if ranked.is_empty() {
        return;
    }
    let mut counter_index = 0usize;
    while !campaign.out_of_budget() {
        let target = ranked[counter_index % ranked.len()].clone();
        anneal_one_counter(campaign, &target);
        counter_index += 1;
    }
}

/// One annealing schedule driving a single counter to its extreme region.
fn anneal_one_counter(campaign: &mut Campaign<'_>, target: &str) {
    let config = campaign.config.clone();
    // Algorithm 1 line 1: measure a random starting point.
    let mut current = campaign.space.random_point(&mut campaign.rng);
    let Some(measurement) = campaign.measure(&current) else {
        return;
    };
    let mut current_value = campaign.signal_value(&measurement, Some(target));

    let mut temperature = config.initial_temperature;
    while temperature > config.min_temperature {
        for _ in 0..config.iterations_per_temperature {
            if campaign.out_of_budget() {
                return;
            }
            // Line 4: mutate one search dimension.
            let candidate = campaign.space.mutate(&current, &mut campaign.rng);
            // Line 5: skip workloads already covered by a known anomaly.
            if campaign.matches_known_mfs(&candidate) {
                continue;
            }
            let discoveries_before = campaign_discovery_count(campaign);
            let Some(measurement) = campaign.measure(&candidate) else {
                return;
            };
            let candidate_value = campaign.signal_value(&measurement, Some(target));

            // Lines 14–17: a new anomaly restarts the walk from a random
            // point so the schedule keeps exploring.
            if campaign_discovery_count(campaign) > discoveries_before {
                current = draw_restart_point(campaign);
                if let Some(m) = campaign.measure(&current) {
                    current_value = campaign.signal_value(&m, Some(target));
                }
                continue;
            }

            // Lines 7–13: Metropolis acceptance on the energy delta.
            let delta = campaign.energy_delta(current_value, candidate_value);
            let accept = if delta < 0.0 {
                true
            } else {
                let probability = (-delta / temperature.max(1e-6)).exp();
                campaign.rng.gen_f64() < probability
            };
            if accept {
                current = candidate;
                current_value = candidate_value;
            }
        }
        temperature *= config.alpha;
    }
}

fn campaign_discovery_count(campaign: &Campaign<'_>) -> usize {
    campaign.discovery_count()
}

/// Bounded re-draws applied to the line-17 restart.
const MAX_RESTART_REDRAWS: usize = 8;

/// Draw the fresh random point a discovery restarts the walk from.
///
/// Algorithm 1 line 5 applies to the restart too: a random draw can land
/// inside the MFS that was just extracted (its region is by construction a
/// productive part of the space), and measuring it would both waste an
/// experiment and re-flag a known anomaly. Re-draw — bounded, so a set of
/// MFSes that happens to cover most of the space cannot livelock the
/// schedule — until the point is uncovered.
fn draw_restart_point(campaign: &mut Campaign<'_>) -> crate::space::SearchPoint {
    let mut point = campaign.space.random_point(&mut campaign.rng);
    for _ in 0..MAX_RESTART_REDRAWS {
        if !campaign.matches_known_mfs(&point) {
            return point;
        }
        point = campaign.space.random_point(&mut campaign.rng);
    }
    point
}

#[cfg(test)]
mod tests {
    use super::super::campaign::Campaign;
    use super::draw_restart_point;
    use crate::engine::WorkloadEngine;
    use crate::monitor::{AnomalyMonitor, FeatureCondition, Mfs, Symptom};
    use crate::search::{run_search, SearchConfig, SignalMode};
    use crate::space::{Feature, SearchPoint, SearchSpace};
    use collie_rnic::subsystems::SubsystemId;
    use collie_sim::time::SimDuration;

    #[test]
    fn restart_points_avoid_known_mfs_regions() {
        // Algorithm 1 line 5 applies to the line-17 restart: after a
        // discovery, the fresh random point must not sit inside an
        // already-extracted MFS (the walk would restart right where it just
        // finished). Plant an MFS covering a large slice of the space and
        // check that restart draws consistently land outside it.
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let monitor = AnomalyMonitor::new();
        let config = SearchConfig::collie(9);
        let mut campaign = Campaign::new(&mut engine, &space, &monitor, &config);
        let mut conditions = std::collections::BTreeMap::new();
        conditions.insert(Feature::WqeBatch, FeatureCondition::AtLeast(16));
        let planted = Mfs {
            symptom: Symptom::PauseStorm,
            conditions,
            example: SearchPoint::benign(),
        };
        campaign.plant_mfs(planted.clone());
        for _ in 0..25 {
            let point = draw_restart_point(&mut campaign);
            assert!(
                !planted.matches(&point),
                "restart landed inside a known MFS: {point}"
            );
        }
    }

    #[test]
    fn annealing_with_diag_counters_finds_multiple_distinct_anomalies() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig::collie(5).with_budget(SimDuration::from_secs(2 * 3600));
        let outcome = run_search(&mut engine, &space, &config);
        assert!(
            outcome.distinct_known_anomalies().len() >= 2,
            "found only {:?}",
            outcome.distinct_known_anomalies()
        );
        // The Figure-6 trace exists and contains anomaly markers.
        assert!(!outcome.trace.is_empty());
        assert!(!outcome.trace.anomaly_samples().is_empty());
    }

    #[test]
    fn performance_counter_mode_also_works() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig::collie(6)
            .with_signal(SignalMode::Performance)
            .with_budget(SimDuration::from_secs(3600));
        let outcome = run_search(&mut engine, &space, &config);
        assert!(!outcome.discoveries.is_empty());
    }
}
