//! The workload generator: counter-guided search (§5.1, Algorithm 1).
//!
//! Collie treats anomaly hunting as an optimisation problem over the
//! workload space: drive performance counters to low-value regions and
//! diagnostic counters to high-value regions, because a subsystem under
//! that kind of stress is where anomalies live. The optimiser is simulated
//! annealing extended with the minimal-feature-set skip (Algorithm 1); the
//! baselines of §7.2 — random input generation and Bayesian optimisation —
//! are implemented alongside so the Figure 4/5 comparisons can be
//! regenerated.
//!
//! A campaign charges every experiment the time it would take on hardware
//! (20–60 s) and stops when the configured budget (10 simulated hours in
//! the paper) is spent, so "time to find N anomalies" is measured on the
//! same axis as the paper's figures.

mod campaign;
pub mod domain;
pub mod kernel;

pub use campaign::{Discovery, RuleHit, SearchOutcome, WorkloadDomain};
pub use domain::{CampaignReport, ExtractionCost, SearchDomain};

use crate::engine::WorkloadEngine;
use crate::eval::Evaluator;
use crate::monitor::AnomalyMonitor;
use crate::space::{SearchPoint, SearchSpace};
use collie_rnic::subsystem::Measurement;
use collie_sim::time::SimDuration;
use kernel::CampaignLoop;
use serde::{Deserialize, Serialize};

/// Which counter family guides the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalMode {
    /// Performance counters (bytes/s, packets/s), driven towards low
    /// values. Available on every commodity RNIC.
    Performance,
    /// Vendor diagnostic counters, driven towards high values. More
    /// informative but vendor-dependent.
    Diagnostic,
}

impl SignalMode {
    /// The counter recorded in a campaign's Figure-6 style trace.
    ///
    /// Diagnostic campaigns trace the receive-WQE-cache-miss counter, which
    /// is exactly the series the paper's Figure 6 plots. A performance-mode
    /// campaign has no business tracing a vendor diagnostic counter (the
    /// whole premise of the mode is that only generic counters exist), so it
    /// traces the receive-side throughput gauge instead — the signal that
    /// collapses when such a campaign steers into an anomaly.
    pub fn traced_counter(self) -> &'static str {
        match self {
            SignalMode::Performance => collie_rnic::counters::perf::RX_BYTES_PER_SEC,
            SignalMode::Diagnostic => collie_rnic::counters::diag::RECV_WQE_CACHE_MISS,
        }
    }
}

/// Which search algorithm explores the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Uniform random sampling of the search space (black-box fuzzing).
    Random,
    /// Bayesian-optimisation-style surrogate search (the §7.2 baseline,
    /// implemented as a nearest-neighbour surrogate with an exploration
    /// bonus — see [`kernel::run_bayesian`] for the simplification note).
    Bayesian,
    /// Simulated annealing over counter values (Collie, Algorithm 1).
    SimulatedAnnealing,
}

impl SearchStrategy {
    /// Short label used in reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            SearchStrategy::Random => "Random",
            SearchStrategy::Bayesian => "BO",
            SearchStrategy::SimulatedAnnealing => "Collie",
        }
    }
}

/// Configuration of one search campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// The algorithm.
    pub strategy: SearchStrategy,
    /// The counter family used as the optimisation signal (ignored by
    /// [`SearchStrategy::Random`]).
    pub signal: SignalMode,
    /// Whether the minimal-feature-set skip is applied (the "w/o MFS"
    /// ablation of Figure 5 turns this off).
    pub use_mfs: bool,
    /// Whether measurements are memoized by the campaign's
    /// [`Evaluator`]. Memoization only skips the
    /// flow-model recompute — simulated hardware cost is charged either way
    /// — so the [`SearchOutcome`] is bit-identical with it on or off; the
    /// toggle exists for the cache-ablation bench and identity tests.
    ///
    /// Defaults to on; the `COLLIE_MEMOIZE=0` environment variable flips
    /// the constructor default so CI can run the whole suite uncached and
    /// cache divergence can never hide behind the default. Tests that
    /// assert cache *statistics* must pin the toggle with
    /// [`SearchConfig::with_memoization`]. Like
    /// [`SearchConfig::speculation`], the knob is an execution detail
    /// excluded from serialization, so it cannot leak into golden
    /// fixtures; deserialized configs fall back to the uncached path,
    /// which is always correct.
    #[serde(skip)]
    pub memoize: bool,
    /// Seed for the campaign's randomness.
    pub seed: u64,
    /// Total simulated wall-clock budget (the paper runs each search for
    /// 10 hours).
    pub budget: SimDuration,
    /// Initial annealing temperature (T0 in Algorithm 1).
    pub initial_temperature: f64,
    /// Temperature at which an annealing schedule ends (T_min).
    pub min_temperature: f64,
    /// Multiplicative temperature decay per schedule step (α).
    pub alpha: f64,
    /// SA iterations per temperature step (n in Algorithm 1).
    pub iterations_per_temperature: u32,
    /// Consecutive MFS-skipped proposals after which an annealing walk
    /// abandons its neighbourhood and restarts from a fresh random point
    /// (the walk's skips are free, but it makes no progress parked next to
    /// a discovered MFS region). `None` disables the escape — the
    /// pre-kernel two-host behaviour, used by the golden-trace
    /// compatibility grids.
    pub stuck_skip_limit: Option<u32>,
    /// Whether discovery dedup requires a matching MFS to share the new
    /// anomaly's *observable identity* (symptom, plus the cross-host
    /// hallmark on fabric domains). With identity keying a loose MFS
    /// cannot shadow a distinct-identity discovery; `false` restores the
    /// pre-kernel two-host containment-only dedup for the golden-trace
    /// compatibility grids.
    pub identity_dedup: bool,
    /// Speculative lookahead depth: `Some(k)` lets the campaign pre-draw up
    /// to `k` likely-next proposals from a forked RNG and evaluate them on
    /// worker threads through a shared memo cache, committing results
    /// strictly in serial stream order (DESIGN.md §9). `None` runs the
    /// classic serial loop. Speculation is an execution strategy, not a
    /// search strategy: the campaign output is bit-identical either way, so
    /// the knob is excluded from serialization and cannot leak into golden
    /// fixtures.
    ///
    /// Defaults to `None`; the `COLLIE_SPECULATION` environment variable
    /// sets the constructor default (a depth such as `4`, or `on` for the
    /// default depth) so CI can run the whole suite speculatively.
    #[serde(skip)]
    pub speculation: Option<usize>,
    /// Whether the engine's incremental evaluation path is enabled: the
    /// subsystem caches per-flow rule reports and per-direction fluid
    /// outcomes so a one-knob mutation recomputes only the stages the
    /// changed flow feeds (DESIGN.md §11). Purely an execution strategy —
    /// cached stage results are bit-identical to recomputed ones, so the
    /// campaign output is byte-for-byte the same either way — hence, like
    /// [`SearchConfig::speculation`], the knob is excluded from
    /// serialization and cannot leak into golden fixtures.
    ///
    /// Defaults to on; the `COLLIE_INCREMENTAL` environment variable
    /// disables it (`0`, `false`, or `off`) so CI can run the whole suite
    /// through the from-scratch path.
    #[serde(skip)]
    pub incremental: bool,
}

impl SearchConfig {
    /// The configuration used for the paper-style campaigns: Collie with
    /// diagnostic counters and the MFS skip, a 10-hour budget, and the
    /// relaxed temperature schedule §5.1 argues for.
    pub fn collie(seed: u64) -> SearchConfig {
        SearchConfig {
            strategy: SearchStrategy::SimulatedAnnealing,
            signal: SignalMode::Diagnostic,
            use_mfs: true,
            memoize: SearchConfig::default_memoize(),
            seed,
            budget: SimDuration::from_secs(10 * 3600),
            initial_temperature: 1.0,
            min_temperature: 0.05,
            alpha: 0.8,
            iterations_per_temperature: 8,
            stuck_skip_limit: Some(24),
            identity_dedup: true,
            speculation: SearchConfig::default_speculation(),
            incremental: SearchConfig::default_incremental(),
        }
    }

    /// The random-fuzzing baseline with the same budget.
    pub fn random(seed: u64) -> SearchConfig {
        SearchConfig {
            strategy: SearchStrategy::Random,
            ..SearchConfig::collie(seed)
        }
    }

    /// The Bayesian-optimisation baseline with the same budget.
    pub fn bayesian(seed: u64) -> SearchConfig {
        SearchConfig {
            strategy: SearchStrategy::Bayesian,
            ..SearchConfig::collie(seed)
        }
    }

    /// Switch the guiding signal (Figure 5's Perf/Diag ablation).
    pub fn with_signal(mut self, signal: SignalMode) -> SearchConfig {
        self.signal = signal;
        self
    }

    /// Enable or disable the MFS skip (Figure 5's MFS ablation).
    pub fn with_mfs(mut self, use_mfs: bool) -> SearchConfig {
        self.use_mfs = use_mfs;
        self
    }

    /// Replace the budget (tests and quick examples use minutes, not hours).
    pub fn with_budget(mut self, budget: SimDuration) -> SearchConfig {
        self.budget = budget;
        self
    }

    /// Enable or disable measurement memoization (on by default; turning it
    /// off is the uncached reference path of the evaluation-cache bench).
    pub fn with_memoization(mut self, memoize: bool) -> SearchConfig {
        self.memoize = memoize;
        self
    }

    /// Replace the stuck-walk escape threshold (`None` disables; see
    /// [`SearchConfig::stuck_skip_limit`]).
    pub fn with_stuck_skip_limit(mut self, limit: Option<u32>) -> SearchConfig {
        self.stuck_skip_limit = limit;
        self
    }

    /// Enable or disable identity-keyed discovery dedup (see
    /// [`SearchConfig::identity_dedup`]).
    pub fn with_identity_dedup(mut self, identity_dedup: bool) -> SearchConfig {
        self.identity_dedup = identity_dedup;
        self
    }

    /// Set the speculative lookahead depth (`None` keeps the serial loop;
    /// see [`SearchConfig::speculation`]).
    pub fn with_speculation(mut self, speculation: Option<usize>) -> SearchConfig {
        self.speculation = speculation;
        self
    }

    /// Enable or disable the engine's incremental evaluation path (see
    /// [`SearchConfig::incremental`]). Tests that assert stage-reuse
    /// counters must pin the toggle here rather than rely on the
    /// environment-dependent default.
    pub fn with_incremental(mut self, incremental: bool) -> SearchConfig {
        self.incremental = incremental;
        self
    }

    /// The pre-kernel two-host campaign semantics: no stuck-walk escape
    /// and containment-only discovery dedup. The golden-trace suite runs
    /// the fig4/fig5 grids in this mode to prove the kernel unification
    /// moved neither RNG stream; new code should keep the defaults.
    ///
    /// **Two-host only.** The fabric stack always had the escape and
    /// identity-keyed dedup, so a config built this way must not be fed to
    /// [`run_fabric_search`](crate::fabric::run_fabric_search) — it would
    /// select a fabric behaviour that never existed (a loose local-storm
    /// MFS could shadow a victim-collapse discovery, and a saturated
    /// space could stall the fabric annealer).
    pub fn with_legacy_two_host_semantics(self) -> SearchConfig {
        self.with_stuck_skip_limit(None).with_identity_dedup(false)
    }

    /// A descriptive label such as "Collie(Diag)" or "BO w/o MFS(Perf)".
    pub fn label(&self) -> String {
        let signal = match self.signal {
            SignalMode::Performance => "Perf",
            SignalMode::Diagnostic => "Diag",
        };
        match self.strategy {
            SearchStrategy::Random => "Random".to_string(),
            _ if self.use_mfs => format!("{}({signal})", self.strategy.label()),
            _ => format!("{} w/o MFS({signal})", self.strategy.label()),
        }
    }
}

impl SearchConfig {
    /// The constructor default for [`SearchConfig::memoize`]: on, unless
    /// the `COLLIE_MEMOIZE` environment variable disables it (`0`,
    /// `false`, or `off`) so CI can run the whole suite through the
    /// uncached path. A thin wrapper over the [`crate::env`] registry —
    /// the hook's grammar, clamp, and documentation live there, exactly
    /// once.
    pub fn default_memoize() -> bool {
        crate::env::memoize()
    }

    /// The constructor default for [`SearchConfig::speculation`]: `None`
    /// (serial), unless the `COLLIE_SPECULATION` environment variable
    /// enables a lookahead depth so CI can run the whole suite
    /// speculatively. A thin wrapper over the [`crate::env`] registry.
    pub fn default_speculation() -> Option<usize> {
        crate::env::speculation()
    }

    /// The constructor default for [`SearchConfig::incremental`]: on,
    /// unless the `COLLIE_INCREMENTAL` environment variable disables it
    /// (`0`, `false`, or `off`) so CI can run the whole suite through the
    /// from-scratch path. A thin wrapper over the [`crate::env`]
    /// registry.
    pub fn default_incremental() -> bool {
        crate::env::incremental()
    }
}

/// Run one search campaign on a subsystem.
pub fn run_search(
    engine: &mut WorkloadEngine,
    space: &SearchSpace,
    config: &SearchConfig,
) -> SearchOutcome {
    run_search_with_stats(engine, space, config).0
}

/// Run one search campaign and also report the evaluation-cache statistics
/// (the outcome itself is independent of the cache; the stats are what the
/// harness logs to quantify the memoization win).
pub fn run_search_with_stats(
    engine: &mut WorkloadEngine,
    space: &SearchSpace,
    config: &SearchConfig,
) -> (SearchOutcome, crate::eval::EvalStats) {
    let (outcome, profile) = run_search_in_context(engine, space, config, None);
    (outcome, profile.stats)
}

/// Run one search campaign with an optional matrix-scoped
/// [`SharedCache`](crate::eval::SharedCache) attached (see
/// [`crate::eval::EvalContext`]): local misses read through the shared
/// cache and computes are published for sibling cells, while commits still
/// go through the evaluator's local cache so the outcome and its
/// [`EvalStats`](crate::eval::EvalStats) are bit-identical with or without
/// `shared`. Returns the full [`EvalProfile`](crate::eval::EvalProfile)
/// for perf harnesses.
pub fn run_search_in_context(
    engine: &mut WorkloadEngine,
    space: &SearchSpace,
    config: &SearchConfig,
    shared: Option<std::sync::Arc<crate::eval::SharedCache<SearchPoint, Measurement>>>,
) -> (SearchOutcome, crate::eval::EvalProfile) {
    let monitor = AnomalyMonitor::new();
    engine.set_incremental(config.incremental);
    let mut evaluator = if config.memoize {
        Evaluator::new(engine)
    } else {
        Evaluator::uncached(engine)
    };
    if let Some(shared) = shared {
        evaluator.attach_shared(shared);
    }
    let outcome = {
        let domain = WorkloadDomain::new(&mut evaluator, &monitor, space, config.signal);
        let mut campaign = CampaignLoop::new(domain, config);
        if let Some(lookahead) = config.speculation {
            campaign.enable_speculation(lookahead);
        }
        match config.strategy {
            SearchStrategy::Random => kernel::run_random(&mut campaign),
            SearchStrategy::Bayesian => kernel::run_bayesian(&mut campaign),
            SearchStrategy::SimulatedAnnealing => kernel::run_annealing(&mut campaign),
        }
        SearchOutcome::from_report(config.label(), campaign.finish())
    };
    let profile = evaluator.profile();
    (outcome, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_rnic::subsystems::SubsystemId;

    fn quick_config(strategy: SearchStrategy, seed: u64) -> SearchConfig {
        SearchConfig {
            strategy,
            ..SearchConfig::collie(seed)
        }
        .with_budget(SimDuration::from_secs(3600))
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(SearchConfig::collie(1).label(), "Collie(Diag)");
        assert_eq!(
            SearchConfig::collie(1)
                .with_signal(SignalMode::Performance)
                .label(),
            "Collie(Perf)"
        );
        assert_eq!(
            SearchConfig::collie(1).with_mfs(false).label(),
            "Collie w/o MFS(Diag)"
        );
        assert_eq!(SearchConfig::random(1).label(), "Random");
        assert_eq!(SearchConfig::bayesian(1).label(), "BO(Diag)");
    }

    #[test]
    fn every_strategy_stays_within_budget_and_finds_something() {
        for strategy in [
            SearchStrategy::Random,
            SearchStrategy::Bayesian,
            SearchStrategy::SimulatedAnnealing,
        ] {
            let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
            let space = SearchSpace::for_host(&SubsystemId::F.host());
            let config = quick_config(strategy, 7);
            let outcome = run_search(&mut engine, &space, &config);
            // A campaign may overshoot its budget by at most one experiment
            // plus one MFS extraction (an anomaly discovered just before the
            // deadline is still characterised, as on real hardware).
            assert!(
                outcome.elapsed <= config.budget + SimDuration::from_secs(4500),
                "{}: overspent budget ({})",
                strategy.label(),
                outcome.elapsed
            );
            assert!(outcome.experiments > 10, "{}", strategy.label());
            assert!(
                !outcome.discoveries.is_empty(),
                "{} found nothing in an hour on subsystem F",
                strategy.label()
            );
        }
    }

    #[test]
    fn random_search_finds_simple_anomalies_on_subsystem_f() {
        // The black-box fuzzing baseline: the space itself is expressive
        // enough that uniform sampling stumbles on the simple triggers.
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig {
            strategy: SearchStrategy::Random,
            ..SearchConfig::collie(11)
        }
        .with_budget(SimDuration::from_secs(2 * 3600));
        let outcome = run_search(&mut engine, &space, &config);
        assert!(
            !outcome.distinct_known_anomalies().is_empty(),
            "two simulated hours of random probing should stumble on something"
        );
        assert!(outcome.experiments > 50);
    }

    #[test]
    fn annealing_with_diag_counters_finds_multiple_distinct_anomalies() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig::collie(5).with_budget(SimDuration::from_secs(2 * 3600));
        let outcome = run_search(&mut engine, &space, &config);
        assert!(
            outcome.distinct_known_anomalies().len() >= 2,
            "found only {:?}",
            outcome.distinct_known_anomalies()
        );
        // The Figure-6 trace exists and contains anomaly markers.
        assert!(!outcome.trace.is_empty());
        assert!(!outcome.trace.anomaly_samples().is_empty());
    }

    #[test]
    fn performance_counter_mode_also_works() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig::collie(6)
            .with_signal(SignalMode::Performance)
            .with_budget(SimDuration::from_secs(3600));
        let outcome = run_search(&mut engine, &space, &config);
        assert!(!outcome.discoveries.is_empty());
    }

    #[test]
    fn constructor_defaults_delegate_to_the_env_registry() {
        // The parsers themselves are pinned in `crate::env::tests`; this
        // asserts the constructor defaults read through the registry (the
        // same process environment must produce the same answers).
        assert_eq!(SearchConfig::default_memoize(), crate::env::memoize());
        assert_eq!(
            SearchConfig::default_speculation(),
            crate::env::speculation()
        );
        assert_eq!(
            SearchConfig::default_incremental(),
            crate::env::incremental()
        );
    }

    #[test]
    fn memoize_knob_never_serializes_into_fixtures() {
        // Like speculation and incremental, memoization is an execution
        // detail: a recorded golden fixture must not change because the
        // recording host had COLLIE_MEMOIZE set, and deserialized configs
        // fall back to the always-correct uncached path.
        let config = SearchConfig::collie(1).with_memoization(true);
        let json = serde_json::to_string(&config).unwrap();
        assert!(!json.contains("memoize"), "knob leaked into JSON: {json}");
        let back: SearchConfig = serde_json::from_str(&json).unwrap();
        assert!(!back.memoize);
    }

    #[test]
    fn incremental_knob_does_not_change_the_outcome_or_the_stats() {
        // Facade-level statement of the tentpole contract: cached stage
        // results substitute bit-identically for recomputed ones, so the
        // public entry point's outcome and evaluator statistics are
        // byte-for-byte equal with the knob on or off.
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        for strategy in [
            SearchStrategy::Random,
            SearchStrategy::SimulatedAnnealing,
            SearchStrategy::Bayesian,
        ] {
            let config = SearchConfig {
                strategy,
                ..SearchConfig::collie(17)
            }
            .with_budget(SimDuration::from_secs(3600))
            .with_memoization(true)
            .with_speculation(None)
            .with_incremental(false);
            let mut scratch_engine = WorkloadEngine::for_catalog(SubsystemId::F);
            let scratch = run_search_with_stats(&mut scratch_engine, &space, &config);
            let mut inc_engine = WorkloadEngine::for_catalog(SubsystemId::F);
            let incremental = run_search_with_stats(
                &mut inc_engine,
                &space,
                &config.clone().with_incremental(true),
            );
            assert_eq!(scratch, incremental, "{strategy:?}");
            assert!(
                inc_engine.subsystem().incremental_use().total_hits() > 0,
                "{strategy:?}: the incremental leg never reused a stage"
            );
        }
    }

    #[test]
    fn incremental_knob_never_serializes_into_fixtures() {
        // Same rationale as the speculation knob: an execution detail must
        // not change a recorded fixture, and deserialized configs fall
        // back to the from-scratch path.
        let config = SearchConfig::collie(1).with_incremental(true);
        let json = serde_json::to_string(&config).unwrap();
        assert!(
            !json.contains("incremental"),
            "knob leaked into JSON: {json}"
        );
        let back: SearchConfig = serde_json::from_str(&json).unwrap();
        assert!(!back.incremental);
    }

    #[test]
    fn speculation_knob_does_not_change_the_outcome_or_the_stats() {
        // The facade-level statement of the tentpole contract: the public
        // entry point produces byte-identical outcomes and evaluator
        // statistics with the knob on or off.
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        for strategy in [
            SearchStrategy::Random,
            SearchStrategy::SimulatedAnnealing,
            SearchStrategy::Bayesian,
        ] {
            let config = SearchConfig {
                strategy,
                ..SearchConfig::collie(17)
            }
            .with_budget(SimDuration::from_secs(3600))
            .with_memoization(true)
            .with_speculation(None);
            let mut serial_engine = WorkloadEngine::for_catalog(SubsystemId::F);
            let serial = run_search_with_stats(&mut serial_engine, &space, &config);
            let mut spec_engine = WorkloadEngine::for_catalog(SubsystemId::F);
            let speculative = run_search_with_stats(
                &mut spec_engine,
                &space,
                &config.clone().with_speculation(Some(3)),
            );
            assert_eq!(serial, speculative, "{strategy:?}");
        }
    }

    #[test]
    fn speculation_knob_never_serializes_into_fixtures() {
        // The knob is an execution detail; a recorded golden fixture must
        // not change because the recording host had COLLIE_SPECULATION
        // set, and deserialized configs must fall back to serial.
        let config = SearchConfig::collie(1).with_speculation(Some(8));
        let json = serde_json::to_string(&config).unwrap();
        assert!(
            !json.contains("speculation"),
            "knob leaked into JSON: {json}"
        );
        let back: SearchConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.speculation, None);
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let config = quick_config(SearchStrategy::SimulatedAnnealing, 42)
            .with_budget(SimDuration::from_secs(1800));
        let mut a_engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let a = run_search(&mut a_engine, &space, &config);
        let mut b_engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let b = run_search(&mut b_engine, &space, &config);
        assert_eq!(a.experiments, b.experiments);
        assert_eq!(a.distinct_known_anomalies(), b.distinct_known_anomalies());
    }
}
