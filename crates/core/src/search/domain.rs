//! The search-domain abstraction behind the generic campaign kernel.
//!
//! Collie's contribution is one procedure — counter-guided exploration of a
//! vector space, anomaly monitoring, and minimal-feature-set extraction —
//! that applies to any workload space with point sampling, one-coordinate
//! neighbourhoods, and a feature projection. [`SearchDomain`] names exactly
//! the operations that procedure needs, so the two-host stack
//! ([`WorkloadDomain`](crate::search::WorkloadDomain)), the fabric stack
//! ([`FabricDomain`](crate::fabric::FabricDomain)), and any future search
//! dimension share one campaign loop
//! ([`CampaignLoop`](crate::search::kernel::CampaignLoop)) and one extractor
//! ([`MfsExtractor`](crate::search::kernel::MfsExtractor)) instead of
//! hand-synchronized copies.
//!
//! **RNG-stream stability.** The kernel draws from the campaign RNG in
//! exactly the order the pre-unification loops did, and a domain must not
//! consume campaign randomness inside its own methods (none of the required
//! operations need any). This is what keeps every per-seed discovery
//! sequence bit-identical across the refactor — the contract
//! `tests/golden_traces.rs` enforces against committed fixtures.

use crate::eval::EvalStats;
use crate::monitor::{FeatureCondition, Symptom};
use crate::search::RuleHit;
use crate::space::FeatureValue;
use collie_sim::rng::SimRng;
use collie_sim::series::TimeSeries;
use collie_sim::time::SimDuration;
use std::collections::BTreeMap;

/// Experiments and simulated wall-clock charged by an MFS extraction.
///
/// Probes run on real hardware in the paper's setting, so the extractor
/// charges each one the full experiment cost — the flat segments after each
/// red cross in Figure 6 — whether or not the memo cache answered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractionCost {
    /// Experiments spent probing.
    pub experiments: u32,
    /// Simulated wall-clock spent probing.
    pub elapsed: SimDuration,
}

impl ExtractionCost {
    /// Charge one probe of `cost`.
    pub fn charge(&mut self, cost: SimDuration) {
        self.experiments += 1;
        self.elapsed += cost;
    }
}

/// One search domain: a vector space the generic campaign kernel can
/// explore and extract minimal feature sets over.
///
/// Implementations bind together the space (sampling, mutation, feature
/// ladders), the memoized evaluator, and the anomaly monitor for one kind
/// of experiment. The kernel owns every loop — budget accounting, the MFS
/// skip, discovery dedup, annealing restarts, the stuck-walk escape — and
/// calls back into the domain for the operations that differ per space.
///
/// # Adding a new search dimension
///
/// Implement this trait for a point type over the new coordinates (see
/// DESIGN.md §8 for the walkthrough): define the point/feature/MFS types,
/// delegate sampling and mutation to the space, route `assess` through a
/// memoizing evaluator, and pick the anomaly identity that should dedup
/// discoveries. `run_random`/`run_annealing` and the generic extractor then
/// work unchanged.
pub trait SearchDomain {
    /// A point of the space (one experiment description). `Eq + Hash`
    /// because points key memo caches — both the evaluator's local map and
    /// the concurrent cache speculation shares across threads.
    type Point: Clone + Eq + std::hash::Hash;
    /// One coordinate name of the feature projection.
    type Feature: Copy + Ord;
    /// One measurement of a point.
    type Measurement;
    /// The observable identity of an anomaly: what a discovery must share
    /// with an existing MFS to count as a redundant sighting of the same
    /// finding. The two-host stack keys on the symptom; the fabric stack on
    /// (symptom, cross-host hallmark).
    type Identity: Clone + PartialEq;
    /// A minimal feature set over the domain's features.
    type Mfs: Clone;
    /// The public discovery record the domain's outcome type carries.
    type Discovery;
    /// What an extraction probe must reproduce to count as "still the same
    /// anomaly" (e.g. symptom + dominant diagnostic counter).
    type Signature;

    // --- sampling and neighbourhood ---

    /// Draw a uniform random point (Algorithm 1 line 1 / the random
    /// baseline's generator).
    fn random_point(&mut self, rng: &mut SimRng) -> Self::Point;
    /// Mutate one randomly chosen coordinate (Algorithm 1 line 4).
    fn mutate(&mut self, point: &Self::Point, rng: &mut SimRng) -> Self::Point;

    // --- feature projection (MFS extraction) ---

    /// Every feature of the projection, in the stable order extraction
    /// probes them.
    fn features(&self) -> Vec<Self::Feature>;
    /// Read the current value of one feature.
    fn feature_value(&self, point: &Self::Point, feature: Self::Feature) -> FeatureValue;
    /// Overwrite one feature with a concrete value (probe construction).
    fn apply(&self, point: &mut Self::Point, feature: Self::Feature, value: &FeatureValue);
    /// Candidate alternative values for one feature.
    fn alternatives(&self, point: &Self::Point, feature: Self::Feature) -> Vec<FeatureValue>;

    // --- measurement ---

    /// How long this experiment would take on real hardware.
    fn experiment_cost(&self, point: &Self::Point) -> SimDuration;
    /// The §6 four-sample measurement procedure through the domain's memo
    /// cache, plus the anomaly assessment: `Some(identity)` iff anomalous.
    fn assess(&mut self, point: &Self::Point) -> (Self::Measurement, Option<Self::Identity>);
    /// The end-to-end symptom of an anomaly identity.
    fn symptom(identity: &Self::Identity) -> Symptom;
    /// Ground-truth oracle for scoring (never consulted by the search).
    fn ground_truth(&self, point: &Self::Point) -> Vec<&'static str>;
    /// Whether the domain's outcome type reports rule-hit scoring.
    /// Domains that drop it (the fabric outcome carries no rule hits)
    /// return `false` and the kernel skips the bookkeeping — scoring
    /// only, so the choice never affects the search or any RNG draw.
    fn reports_rule_hits(&self) -> bool {
        true
    }
    /// Cache statistics of the domain's evaluator.
    fn eval_stats(&self) -> EvalStats;

    // --- speculation (optional) ---

    /// Prepare speculative evaluation: wire a shared concurrent memo cache
    /// into the domain's evaluator and fork `workers` independent compute
    /// engines. Domains that cannot (or whose evaluator is uncached)
    /// return `None` and the kernel stays serial.
    fn speculation(
        &mut self,
        workers: usize,
    ) -> Option<crate::eval::SpeculationParts<Self::Point, Self::Measurement>> {
        let _ = workers;
        None
    }

    /// Re-derive the anomaly identity from a bare measurement *without*
    /// touching the evaluator or its stats — a pure prediction hint the
    /// speculation planner uses to guess whether a measured point would
    /// commit a new MFS. `None` means the domain offers no such hint (the
    /// planner then assumes no discovery). Never consulted on the commit
    /// path, so it cannot affect campaign output.
    fn judge(&self, measurement: &Self::Measurement) -> Option<Self::Identity> {
        let _ = measurement;
        None
    }

    // --- guiding signal ---

    /// The counter recorded in the campaign's Figure-6 style trace.
    fn traced_counter(&self) -> &'static str;
    /// The traced counter's value in one measurement.
    fn trace_value(&self, measurement: &Self::Measurement) -> f64;
    /// The guiding value of a measurement: one specific counter when
    /// `target` names it, otherwise the domain's configured aggregate.
    fn signal_value(&self, measurement: &Self::Measurement, target: Option<&str>) -> f64;
    /// Counters the annealing outer loop ranks by variability and then
    /// optimises one after another (§7.2). An empty list means the domain
    /// has a single fixed guiding signal and the annealer runs un-targeted
    /// schedules (the fabric stack).
    fn rankable_counters(&self) -> Vec<String>;

    // --- surrogate encoding (Bayesian baseline) ---

    /// Encode a point into the numeric feature vector the BO baseline's
    /// surrogate measures distances in
    /// ([`run_bayesian`](crate::search::kernel::run_bayesian)).
    ///
    /// The vector must have a stable length for the domain, and distinct
    /// points that differ in any coordinate of the feature projection must
    /// encode to distinct vectors (`tests/surrogate_properties.rs` states
    /// this per domain). Numeric coordinates should be normalised —
    /// log-scale wide ladders so no single dimension dominates the
    /// Euclidean metric — and categorical coordinates become small integer
    /// codes. Encoding must not consume campaign randomness (same contract
    /// as every other domain operation).
    fn surrogate_features(&self, point: &Self::Point) -> Vec<f64>;

    // --- minimal feature sets ---

    /// The observable identity an MFS dedups against.
    fn mfs_identity(mfs: &Self::Mfs) -> Self::Identity;
    /// True if the extraction found no necessary condition. Empty MFSes
    /// match the whole space vacuously, so the kernel excludes them from
    /// both the skip and the discovery dedup.
    fn mfs_is_empty(mfs: &Self::Mfs) -> bool;
    /// True if `point` satisfies every condition of `mfs`.
    fn mfs_matches(mfs: &Self::Mfs, point: &Self::Point) -> bool;
    /// Capture the reproduction signature probes are compared against,
    /// charging any reference experiments to `cost` (the two-host stack
    /// measures the anomalous point once more to record its dominant
    /// diagnostic counter; the fabric signature is free).
    fn begin_extraction(
        &mut self,
        anomalous: &Self::Point,
        identity: &Self::Identity,
        cost: &mut ExtractionCost,
    ) -> Self::Signature;
    /// Run one probe experiment and report whether it still reproduces the
    /// anomaly under extraction.
    fn reproduces(&mut self, probe: &Self::Point, signature: &Self::Signature) -> bool;
    /// Assemble the domain's MFS type from the extracted conditions.
    fn make_mfs(
        &self,
        identity: &Self::Identity,
        conditions: BTreeMap<Self::Feature, FeatureCondition>,
        example: Self::Point,
    ) -> Self::Mfs;

    // --- reporting ---

    /// Assemble the domain's discovery record.
    fn make_discovery(
        &self,
        at: SimDuration,
        point: Self::Point,
        identity: Self::Identity,
        mfs: Self::Mfs,
        matched_rules: Vec<String>,
    ) -> Self::Discovery;
}

/// Everything a finished campaign hands back to the domain's outcome
/// wrapper ([`SearchOutcome`](crate::search::SearchOutcome) /
/// [`FabricOutcome`](crate::fabric::FabricOutcome)).
#[derive(Debug)]
pub struct CampaignReport<D: SearchDomain> {
    /// Every anomaly discovered, in discovery order.
    pub discoveries: Vec<D::Discovery>,
    /// First-trigger times of every catalogued anomaly hit by a measured
    /// experiment (scoring only; dropped by domains that do not report it).
    pub rule_hits: Vec<RuleHit>,
    /// Trace of the domain's guiding counter, with anomaly markers.
    pub trace: TimeSeries,
    /// Experiments actually run (skipped points are free).
    pub experiments: u32,
    /// Points skipped by the MFS filter.
    pub skipped_by_mfs: u32,
    /// Simulated wall-clock consumed.
    pub elapsed: SimDuration,
}
