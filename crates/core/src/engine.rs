//! The workload engine.
//!
//! The paper's workload engine (§4, "Workload engine") takes the settings
//! of a search point, registers the memory regions, creates and connects
//! the queue pairs, and generates traffic with the requested batching and
//! message pattern. Ours does the same against the simulated subsystem,
//! with two equivalent paths:
//!
//! * [`WorkloadEngine::measure`] — the fast path used by the search: the
//!   point is translated directly into the flow-level workload and handed
//!   to the subsystem model. This is what lets a campaign evaluate
//!   thousands of points in a benchmark run.
//! * [`WorkloadEngine::run_via_verbs`] — the faithful path used by examples
//!   and validation tests: every QP, MR, and work request is actually
//!   created through the verbs API and the fabric derives the same
//!   flow-level workload from the posted traffic.
//!
//! The engine also models experiment *cost*: on hardware one iteration
//! takes 20–60 s depending mostly on how many QPs and MRs must be set up
//! (§5). Search campaigns charge that cost per experiment so that the
//! "running time" axes of Figures 4–6 are reproduced in simulated hours.

use crate::space::SearchPoint;
use collie_host::memory::MemoryTarget;
use collie_rnic::bottleneck::{evaluate_rules, FlowContext};
use collie_rnic::subsystem::{Measurement, Subsystem};
use collie_rnic::subsystems::SubsystemId;
use collie_rnic::workload::{Direction, FlowSpec, MessagePattern, WorkloadSpec};
use collie_sim::time::SimDuration;
use collie_sim::units::ByteSize;
use collie_verbs::{
    AccessFlags, CompletionQueue, Fabric, Mtu, QpCaps, QueuePair, SendWr, Sge, VerbsError, WrOpcode,
};

/// Sets up and runs experiments on one subsystem.
#[derive(Debug)]
pub struct WorkloadEngine {
    subsystem: Subsystem,
}

impl WorkloadEngine {
    /// An engine driving `subsystem`.
    pub fn new(subsystem: Subsystem) -> Self {
        WorkloadEngine { subsystem }
    }

    /// An engine driving one of the Table-1 subsystems.
    pub fn for_catalog(id: SubsystemId) -> Self {
        WorkloadEngine::new(id.build())
    }

    /// An independent engine over the same subsystem configuration.
    ///
    /// Speculation workers need their own engine: `Subsystem` is `Clone`,
    /// but a clone would share the counter registry handle with the
    /// original, so two engines measuring concurrently would race on
    /// counter state. The fork instead reassembles the subsystem from its
    /// configuration, giving it a fresh registry, counters, and switch —
    /// [`WorkloadEngine::measure`]'s determinism contract guarantees the
    /// fork measures identically to its parent.
    pub fn fork(&self) -> Self {
        let s = &self.subsystem;
        let mut engine = WorkloadEngine::new(Subsystem::new(
            s.name.clone(),
            s.rnic.clone(),
            s.host_a.clone(),
            s.host_b.clone(),
        ));
        // The incremental mode travels with the fork (its delta caches
        // start empty; they refill as the fork measures).
        engine.set_incremental(s.incremental());
        engine
    }

    /// Enable or disable the subsystem's incremental evaluation path.
    /// Measurements are byte-identical either way; on only caches per-flow
    /// and per-direction stage results between calls. Off by default, so
    /// raw `measure` users (e.g. the from-scratch bench baseline) keep
    /// rebuilding the full model.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.subsystem.set_incremental(enabled);
    }

    /// The subsystem under test.
    pub fn subsystem(&self) -> &Subsystem {
        &self.subsystem
    }

    /// Mutable access (used by reconfiguration experiments, e.g. applying
    /// the vendor register fix of Anomalies #17/#18).
    pub fn subsystem_mut(&mut self) -> &mut Subsystem {
        &mut self.subsystem
    }

    /// Translate a search point into the flow-level workload it describes.
    ///
    /// Layout conventions (matching how the paper's engine is invoked):
    /// the primary flow is transmitted by host A; `bidirectional` adds the
    /// mirrored flow from host B; `with_loopback` adds a collocated flow on
    /// host A — and, if the workload is otherwise unidirectional, the
    /// primary flow is turned around so that the loopback traffic coexists
    /// with *receive* traffic on host A, which is the §2.2 / Anomaly #13
    /// scenario (a worker and a server scheduled on the same machine while
    /// remote workers keep sending to the server).
    pub fn translate(&self, point: &SearchPoint) -> WorkloadSpec {
        let template = FlowSpec {
            direction: Direction::AToB,
            transport: point.transport,
            opcode: point.opcode,
            num_qps: point.num_qps,
            mtu: point.mtu,
            wqe_batch: point.wqe_batch,
            sge_per_wqe: point.sge_per_wqe,
            send_queue_depth: point.send_queue_depth,
            recv_queue_depth: point.recv_queue_depth,
            mrs_per_qp: point.mrs_per_qp,
            mr_size: ByteSize::from_bytes(point.mr_size_bytes),
            messages: MessagePattern::new(point.messages.clone()),
            src_memory: point.src_memory,
            dst_memory: point.dst_memory,
        };

        let mut flows = Vec::new();
        let primary_direction = if point.with_loopback && !point.bidirectional {
            Direction::BToA
        } else {
            Direction::AToB
        };
        let mut primary = template.clone();
        primary.direction = primary_direction;
        flows.push(primary);

        if point.bidirectional {
            let mut reverse = template.clone();
            reverse.direction = Direction::BToA;
            flows.push(reverse);
        }
        if point.with_loopback {
            let mut loopback = template.clone();
            loopback.direction = Direction::LoopbackA;
            flows.push(loopback);
        }
        WorkloadSpec { flows }
    }

    /// Run one experiment for the point and return the measurement.
    ///
    /// **Determinism contract:** for a fixed subsystem configuration this is
    /// a pure function of `point` — `Subsystem::evaluate` resets all counter
    /// and switch state on entry — which is what allows
    /// [`Evaluator`](crate::eval::Evaluator) to substitute a cached
    /// measurement for a recompute. Anything that makes `measure` stateful
    /// (e.g. history-dependent counters) must invalidate that cache.
    pub fn measure(&mut self, point: &SearchPoint) -> Measurement {
        let workload = self.translate(point);
        self.subsystem.evaluate(&workload)
    }

    /// Run one experiment per point, in order — the batched entry the
    /// speculation planners feed whole lookahead sets through. Semantically
    /// identical to calling [`WorkloadEngine::measure`] per point (the
    /// determinism contract makes that a definition, not an
    /// approximation); with the incremental path enabled the points of a
    /// batch share per-flow rule and per-direction fluid stage work through
    /// the subsystem's delta caches, which is where the batch speedup comes
    /// from.
    pub fn measure_batch(&mut self, points: &[SearchPoint]) -> Vec<Measurement> {
        points.iter().map(|point| self.measure(point)).collect()
    }

    /// How long this experiment would take on real hardware. The paper
    /// reports 20–60 s per experiment, "mostly depending on the number of
    /// QPs to create and the number of MRs to register".
    pub fn experiment_cost(point: &SearchPoint) -> SimDuration {
        let qp_cost = point.num_qps as f64 / 100.0;
        let mr_cost = point.total_mrs() as f64 / 2_000.0;
        let seconds = (20.0 + qp_cost + mr_cost).min(60.0);
        SimDuration::from_secs_f64(seconds)
    }

    /// Ground-truth oracle: which catalogued bottleneck rules the point's
    /// workload triggers on this subsystem.
    ///
    /// The search never sees this — it works purely from counters and the
    /// anomaly definition — but the evaluation harness needs it to score a
    /// campaign against Table 2 the way the paper scores against its known
    /// anomaly list.
    pub fn ground_truth(&self, point: &SearchPoint) -> Vec<&'static str> {
        let workload = self.translate(point);
        let mut triggered = Vec::new();
        for flow in &workload.flows {
            let sender_host = self.subsystem.host(flow.direction.sender_host());
            let receiver_host = self.subsystem.host(flow.direction.receiver_host());
            let ctx = FlowContext {
                flow,
                workload: &workload,
                spec: &self.subsystem.rnic,
                sender_host,
                receiver_host,
            };
            for report in evaluate_rules(&ctx) {
                if report.triggered() && !triggered.contains(&report.rule) {
                    triggered.push(report.rule);
                }
            }
        }
        triggered.sort();
        triggered
    }

    /// Faithful path: set the workload up through the verbs API (register
    /// MRs, create/connect QPs, post batched WQEs) and run it on the
    /// fabric. Intended for examples and validation; the QP and MR counts
    /// of the point are honoured as-is, so callers should keep them modest.
    pub fn run_via_verbs(&self, point: &SearchPoint) -> Result<Measurement, VerbsError> {
        let mut fabric = Fabric::new(self.subsystem.clone());
        let mtu = Mtu::from_bytes(point.mtu).ok_or(VerbsError::InvalidAttribute {
            reason: format!("{} is not a valid RDMA MTU", point.mtu),
        })?;

        let mut endpoints: Vec<(QueuePair, QueuePair)> = Vec::new();
        let mut setups: Vec<(usize, usize)> = vec![(0, 1)];
        if point.bidirectional {
            setups.push((1, 0));
        }
        if point.with_loopback {
            if !point.bidirectional {
                setups[0] = (1, 0);
            }
            setups.push((0, 0));
        }

        let caps = QpCaps {
            max_send_wr: point.send_queue_depth,
            max_recv_wr: point.recv_queue_depth,
            max_send_sge: 16,
            max_recv_sge: 16,
        };
        let mr_size = ByteSize::from_bytes(
            point
                .mr_size_bytes
                .max(point.messages.iter().copied().max().unwrap_or(1)),
        );

        for &(sender_host, receiver_host) in &setups {
            for _ in 0..point.num_qps {
                let send_ctx = fabric.device(sender_host).open();
                let recv_ctx = fabric.device(receiver_host).open();
                let send_pd = send_ctx.alloc_pd();
                let recv_pd = recv_ctx.alloc_pd();
                let mut send_mr_key = 0;
                for i in 0..point.mrs_per_qp {
                    let mr = send_pd.reg_mr(mr_size, point.src_memory, AccessFlags::FULL)?;
                    if i == 0 {
                        send_mr_key = mr.lkey;
                    }
                }
                let mut recv_mr_key = 0;
                for i in 0..point.mrs_per_qp {
                    let mr = recv_pd.reg_mr(mr_size, point.dst_memory, AccessFlags::FULL)?;
                    if i == 0 {
                        recv_mr_key = mr.lkey;
                    }
                }
                let send_cq = CompletionQueue::new(4096);
                let recv_cq = CompletionQueue::new(4096);
                let mut requester =
                    QueuePair::create(&send_pd, &send_cq, &send_cq, point.transport, caps)?;
                let mut responder =
                    QueuePair::create(&recv_pd, &recv_cq, &recv_cq, point.transport, caps)?;
                Fabric::connect(&mut requester, &mut responder, mtu)?;

                // Pre-post receive WQEs when the opcode needs them.
                if point.opcode.is_two_sided() {
                    for slot in 0..point.recv_queue_depth.min(point.wqe_batch * 2) {
                        responder.post_recv(collie_verbs::RecvWr {
                            wr_id: slot as u64,
                            sge: vec![Sge::new(recv_mr_key, 0, mr_size.as_bytes())],
                        })?;
                    }
                }

                // Post one doorbell batch following the message pattern.
                let opcode = match point.opcode {
                    collie_rnic::workload::Opcode::Send => WrOpcode::Send,
                    collie_rnic::workload::Opcode::Write => WrOpcode::RdmaWrite,
                    collie_rnic::workload::Opcode::Read => WrOpcode::RdmaRead,
                };
                let batch: Vec<SendWr> = (0..point.wqe_batch.min(point.send_queue_depth))
                    .map(|i| {
                        let size = point.messages[i as usize % point.messages.len()]
                            .min(mr_size.as_bytes());
                        // A message smaller than the SG list cannot fill
                        // every entry: clamp the effective SGE count to the
                        // message size so the last entry's remainder cannot
                        // underflow and per-entry lengths cannot inflate
                        // the total past the message.
                        let sge_count = (point.sge_per_wqe.max(1) as u64).min(size.max(1));
                        let chunk = size / sge_count;
                        let sge: Vec<Sge> = (0..sge_count)
                            .map(|s| {
                                let len = if s == sge_count - 1 {
                                    size - chunk * (sge_count - 1)
                                } else {
                                    chunk
                                };
                                Sge::new(send_mr_key, 0, len.max(1))
                            })
                            .collect();
                        SendWr {
                            wr_id: i as u64,
                            opcode,
                            sge,
                            rkey: recv_mr_key + 1,
                            remote_offset: 0,
                            signaled: true,
                        }
                    })
                    .collect();
                requester.post_send_batch(batch)?;
                endpoints.push((requester, responder));
            }
        }

        let mut refs: Vec<&mut QueuePair> = Vec::new();
        for (a, b) in endpoints.iter_mut() {
            refs.push(a);
            refs.push(b);
        }
        fabric.run(&mut refs)
    }
}

/// Convenience: the memory targets a benign local-DRAM point uses.
pub fn local_dram_pair() -> (MemoryTarget, MemoryTarget) {
    (MemoryTarget::local_dram(), MemoryTarget::local_dram())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchPoint;
    use collie_rnic::workload::{Opcode, Transport};

    fn engine() -> WorkloadEngine {
        WorkloadEngine::for_catalog(SubsystemId::F)
    }

    #[test]
    fn translate_builds_expected_flow_layout() {
        let e = engine();
        let mut p = SearchPoint::benign();
        assert_eq!(e.translate(&p).flows.len(), 1);
        assert_eq!(e.translate(&p).flows[0].direction, Direction::AToB);

        p.bidirectional = true;
        let w = e.translate(&p);
        assert_eq!(w.flows.len(), 2);
        assert!(w.is_bidirectional());

        p.with_loopback = true;
        let w = e.translate(&p);
        assert_eq!(w.flows.len(), 3);
        assert!(w.has_loopback());

        // Loopback without bidirectional turns the primary flow around so
        // it coexists with receive traffic on host A.
        p.bidirectional = false;
        let w = e.translate(&p);
        assert_eq!(w.flows.len(), 2);
        assert_eq!(w.flows[0].direction, Direction::BToA);
        assert_eq!(w.flows[1].direction, Direction::LoopbackA);
    }

    #[test]
    fn measure_benign_point_is_healthy() {
        let mut e = engine();
        let m = e.measure(&SearchPoint::benign());
        assert!(m.max_pause_ratio() < 0.001);
        assert!(m.total_throughput().gbps() > 150.0);
        assert!(e.ground_truth(&SearchPoint::benign()).is_empty());
    }

    #[test]
    fn ground_truth_flags_a_known_trigger() {
        let e = engine();
        let mut p = SearchPoint::benign();
        p.transport = Transport::Ud;
        p.opcode = Opcode::Send;
        p.wqe_batch = 64;
        p.recv_queue_depth = 256;
        p.messages = vec![2048];
        p.mtu = 2048;
        let rules = e.ground_truth(&p);
        assert!(rules.contains(&"collie/1"), "{rules:?}");
    }

    #[test]
    fn forked_engines_measure_identically_and_independently() {
        let mut e = engine();
        let mut p = SearchPoint::benign();
        p.transport = Transport::Ud;
        p.opcode = Opcode::Send;
        p.wqe_batch = 64;
        p.recv_queue_depth = 256;
        p.messages = vec![2048];
        p.mtu = 2048;
        let mut fork = e.fork();
        // Dirty the fork's state with a different point, then confirm both
        // engines still agree: measurements are pure functions of the point.
        let _ = fork.measure(&SearchPoint::benign());
        assert_eq!(e.measure(&p), fork.measure(&p));
        assert_eq!(
            e.measure(&SearchPoint::benign()),
            fork.measure(&SearchPoint::benign())
        );
    }

    #[test]
    fn experiment_cost_is_bounded_between_20_and_60_seconds() {
        let mut p = SearchPoint::benign();
        let cheap = WorkloadEngine::experiment_cost(&p);
        assert!(cheap.as_secs_f64() >= 20.0 && cheap.as_secs_f64() <= 60.0);
        p.num_qps = 2048;
        p.mrs_per_qp = 1024;
        let expensive = WorkloadEngine::experiment_cost(&p);
        assert!(expensive.as_secs_f64() > cheap.as_secs_f64());
        assert!(expensive.as_secs_f64() <= 60.0);
    }

    #[test]
    fn verbs_path_and_fast_path_agree_on_a_small_point() {
        let mut e = engine();
        let mut p = SearchPoint::benign();
        p.num_qps = 4;
        p.wqe_batch = 8;
        p.mr_size_bytes = 4 * 1024 * 1024;
        p.messages = vec![262_144];
        let fast = e.measure(&p);
        let faithful = e.run_via_verbs(&p).expect("verbs path should succeed");
        let fast_dir = fast.direction(Direction::AToB).unwrap().throughput.gbps();
        let faithful_dir = faithful
            .direction(Direction::AToB)
            .unwrap()
            .throughput
            .gbps();
        assert!(
            (fast_dir - faithful_dir).abs() < 0.15 * fast_dir.max(1.0),
            "fast {fast_dir} vs verbs {faithful_dir}"
        );
        assert_eq!(
            fast.max_pause_ratio() > 0.001,
            faithful.max_pause_ratio() > 0.001
        );
    }

    #[test]
    fn verbs_sge_split_survives_messages_smaller_than_the_sge_list() {
        // Regression: an 8-byte message split across 16 SGEs used to compute
        // `size - chunk * (sge_count - 1)` = 8 - 1*15, which wraps (and
        // panics in debug builds). The effective SGE count is now clamped
        // to the message size.
        let e = engine();
        let mut p = SearchPoint::benign();
        p.num_qps = 1;
        p.wqe_batch = 4;
        p.sge_per_wqe = 16;
        p.messages = vec![8];
        let m = e
            .run_via_verbs(&p)
            .expect("tiny messages must not underflow the SGE split");
        assert!(m.total_throughput().bits_per_sec() >= 0.0);
    }

    #[test]
    fn measure_batch_matches_serial_measures_in_both_modes() {
        let mut p2 = SearchPoint::benign();
        p2.transport = Transport::Ud;
        p2.opcode = Opcode::Send;
        p2.wqe_batch = 64;
        p2.recv_queue_depth = 256;
        p2.messages = vec![2048];
        p2.mtu = 2048;
        let mut p3 = p2.clone();
        p3.wqe_batch = 8;
        let points = [SearchPoint::benign(), p2, p3, SearchPoint::benign()];

        let mut serial = engine();
        let expected: Vec<_> = points.iter().map(|p| serial.measure(p)).collect();
        for incremental in [false, true] {
            let mut batched = engine();
            batched.set_incremental(incremental);
            assert_eq!(batched.measure_batch(&points), expected);
            let reuse = batched.subsystem().incremental_use();
            assert_eq!(reuse.total_hits() > 0, incremental, "{reuse:?}");
        }
    }

    #[test]
    fn forks_inherit_the_incremental_mode() {
        let mut e = engine();
        assert!(!e.fork().subsystem().incremental());
        e.set_incremental(true);
        let mut fork = e.fork();
        assert!(fork.subsystem().incremental());
        // And the fork still measures identically to its parent.
        let p = SearchPoint::benign();
        assert_eq!(e.measure(&p), fork.measure(&p));
    }

    #[test]
    fn verbs_path_rejects_invalid_mtu() {
        let e = engine();
        let mut p = SearchPoint::benign();
        p.mtu = 1500;
        assert!(matches!(
            e.run_via_verbs(&p).unwrap_err(),
            VerbsError::InvalidAttribute { .. }
        ));
    }
}
