//! The single source of truth for every `COLLIE_*` environment hook.
//!
//! Determinism contract (DESIGN.md §13, rule `env-registry`): an
//! environment variable may steer *how* a campaign executes — never *what*
//! it computes — and every such hook must be declared exactly once, here,
//! with its grammar, clamp, and documentation. `collie-lint` enforces the
//! contract statically: any `std::env::var("COLLIE_…")` whose name is not
//! in [`HOOKS`] is a violation, and every registered hook must appear in
//! the README's environment-hook table so operators can discover it.
//!
//! The parsers are separated from the env reads so they can be tested
//! without mutating process-global state under a parallel test runner;
//! the typed readers ([`memoize`], [`speculation`], [`incremental`],
//! [`workers`]) are the only places in the workspace that actually read a
//! `COLLIE_*` variable.

/// One registered environment hook: the variable name, its default when
/// unset, the accepted grammar (clamps included), and what it steers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hook {
    /// The environment variable, e.g. `COLLIE_MEMOIZE`.
    pub name: &'static str,
    /// Human-readable default when the variable is unset.
    pub default: &'static str,
    /// Accepted values and how out-of-range values are clamped.
    pub grammar: &'static str,
    /// One-line description of the execution detail the hook steers.
    pub doc: &'static str,
}

/// Every `COLLIE_*` hook the workspace honours. `collie-lint` rejects any
/// env read whose name is missing here, and checks each entry is
/// documented in the README table.
pub const HOOKS: [Hook; 4] = [
    Hook {
        name: "COLLIE_MEMOIZE",
        default: "on",
        grammar: "`0` / `false` / `off` (case-insensitive) disable; anything else is on",
        doc: "Constructor default for measurement memoization; outcomes are \
              bit-identical either way (CI runs an uncached leg).",
    },
    Hook {
        name: "COLLIE_SPECULATION",
        default: "off (serial)",
        grammar: "a lookahead depth (clamped to 64; `0` disables) or `on` / `true` / `yes` \
                  for the default depth 4; malformed values stay serial",
        doc: "Constructor default for speculative lookahead; commits stay in \
              RNG-stream order so outcomes are bit-identical either way.",
    },
    Hook {
        name: "COLLIE_INCREMENTAL",
        default: "on",
        grammar: "`0` / `false` / `off` (case-insensitive) disable; anything else is on",
        doc: "Constructor default for the engine's delta-cached evaluation \
              path; cached stage results are bit-identical to recomputed ones.",
    },
    Hook {
        name: "COLLIE_WORKERS",
        default: "auto (machine parallelism through the global worker budget)",
        grammar: "a positive integer; `0` clamps to 1; malformed values fall back to auto",
        doc: "Matrix worker-pool width override; bypasses the speculation-aware \
              worker budget entirely.",
    },
];

/// Look a hook up by variable name (`None` for unregistered names — the
/// condition `collie-lint` rule `env-registry` reports).
pub fn hook(name: &str) -> Option<&'static Hook> {
    HOOKS.iter().find(|hook| hook.name == name)
}

/// The lookahead depth `COLLIE_SPECULATION=on` selects.
pub const DEFAULT_SPECULATION_LOOKAHEAD: usize = 4;

/// Ceiling on the lookahead depth an environment value can request: deeper
/// speculation only wastes mis-speculated work, and a typo like
/// `COLLIE_SPECULATION=1000000` must not spawn a thread per unit.
pub const MAX_SPECULATION_LOOKAHEAD: usize = 64;

/// Read one registered hook from the process environment. Private so the
/// typed readers below stay the only consumers; `debug_assert`s that the
/// name went through the registry.
fn read(name: &'static str) -> Option<String> {
    debug_assert!(hook(name).is_some(), "unregistered env hook {name}");
    std::env::var(name).ok()
}

/// The process-wide `COLLIE_MEMOIZE` setting (see [`HOOKS`]).
pub fn memoize() -> bool {
    parse_memoize(read("COLLIE_MEMOIZE").as_deref())
}

/// The process-wide `COLLIE_SPECULATION` setting (see [`HOOKS`]).
pub fn speculation() -> Option<usize> {
    parse_speculation(read("COLLIE_SPECULATION").as_deref())
}

/// The process-wide `COLLIE_INCREMENTAL` setting (see [`HOOKS`]).
pub fn incremental() -> bool {
    parse_incremental(read("COLLIE_INCREMENTAL").as_deref())
}

/// The process-wide `COLLIE_WORKERS` override (see [`HOOKS`]); `None`
/// when unset or malformed (the caller falls back to the automatic
/// budgeted width).
pub fn workers() -> Option<usize> {
    parse_workers(read("COLLIE_WORKERS").as_deref())
}

/// `COLLIE_MEMOIZE` parser. Disable values are matched case-insensitively
/// so an operator's `COLLIE_MEMOIZE=OFF` cannot silently leave the cache
/// on.
pub fn parse_memoize(value: Option<&str>) -> bool {
    parse_enabled(value)
}

/// `COLLIE_SPECULATION` parser. Numeric values pick the lookahead depth
/// (`0` disables); `on`/`true`/`yes` pick the default depth; `off`/
/// `false`/empty and anything unparsable stay serial — speculation is an
/// opt-in accelerator, so a malformed value must fail safe (serial is
/// always correct).
pub fn parse_speculation(value: Option<&str>) -> Option<usize> {
    let value = value?.trim();
    if value.is_empty() {
        return None;
    }
    if let Ok(depth) = value.parse::<usize>() {
        return (depth > 0).then(|| depth.min(MAX_SPECULATION_LOOKAHEAD));
    }
    ["on", "true", "yes"]
        .iter()
        .any(|enable| value.eq_ignore_ascii_case(enable))
        .then_some(DEFAULT_SPECULATION_LOOKAHEAD)
}

/// `COLLIE_INCREMENTAL` parser. Same grammar as [`parse_memoize`]:
/// disable values are matched case-insensitively so an operator's
/// `COLLIE_INCREMENTAL=OFF` cannot silently leave the delta caches on.
pub fn parse_incremental(value: Option<&str>) -> bool {
    parse_enabled(value)
}

/// `COLLIE_WORKERS` parser. Positive integers are honoured as-is; `0`
/// clamps to 1 (a pool cannot be empty); anything unparsable falls back
/// to the automatic width.
pub fn parse_workers(value: Option<&str>) -> Option<usize> {
    value?.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// The shared on-unless-disabled grammar of `COLLIE_MEMOIZE` and
/// `COLLIE_INCREMENTAL`.
fn parse_enabled(value: Option<&str>) -> bool {
    match value {
        Some(value) => {
            let value = value.trim();
            !["0", "false", "off"]
                .iter()
                .any(|disable| value.eq_ignore_ascii_case(disable))
        }
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_documented() {
        for (index, hook) in HOOKS.iter().enumerate() {
            assert!(hook.name.starts_with("COLLIE_"), "{}", hook.name);
            assert!(!hook.default.is_empty(), "{}", hook.name);
            assert!(!hook.grammar.is_empty(), "{}", hook.name);
            assert!(!hook.doc.is_empty(), "{}", hook.name);
            assert!(
                !HOOKS[..index].iter().any(|other| other.name == hook.name),
                "duplicate hook {}",
                hook.name
            );
        }
        assert_eq!(
            hook("COLLIE_MEMOIZE").map(|h| h.name),
            Some("COLLIE_MEMOIZE")
        );
        assert_eq!(hook("COLLIE_NO_SUCH_HOOK"), None);
    }

    #[test]
    fn memoize_parser_honours_the_toggle_values() {
        // CI exports COLLIE_MEMOIZE=0 for the uncached matrix leg; this
        // pins the parser without touching process-global state.
        for (value, expected) in [
            (Some("0"), false),
            (Some("false"), false),
            (Some("off"), false),
            (Some("OFF"), false),
            (Some("False"), false),
            (Some(" 0 "), false),
            (Some("1"), true),
            (None, true),
        ] {
            assert_eq!(parse_memoize(value), expected, "COLLIE_MEMOIZE={value:?}");
        }
    }

    #[test]
    fn speculation_parser_honours_the_toggle_values() {
        // CI exports COLLIE_SPECULATION=4 for the speculative matrix leg;
        // this pins the parser without touching process-global state.
        for (value, expected) in [
            (None, None),
            (Some(""), None),
            (Some("  "), None),
            (Some("0"), None),
            (Some("off"), None),
            (Some("OFF"), None),
            (Some("false"), None),
            (Some("no such depth"), None),
            (Some("-3"), None),
            (Some("4"), Some(4)),
            (Some(" 2 "), Some(2)),
            (Some("1"), Some(1)),
            (Some("1000000"), Some(64)),
            (Some("on"), Some(4)),
            (Some("TRUE"), Some(4)),
            (Some("yes"), Some(4)),
        ] {
            assert_eq!(
                parse_speculation(value),
                expected,
                "COLLIE_SPECULATION={value:?}"
            );
        }
    }

    #[test]
    fn incremental_parser_honours_the_toggle_values() {
        // CI exports COLLIE_INCREMENTAL=0 for the from-scratch matrix leg;
        // this pins the parser without touching process-global state.
        for (value, expected) in [
            (Some("0"), false),
            (Some("false"), false),
            (Some("off"), false),
            (Some("OFF"), false),
            (Some("False"), false),
            (Some(" 0 "), false),
            (Some("1"), true),
            (Some("on"), true),
            (None, true),
        ] {
            assert_eq!(
                parse_incremental(value),
                expected,
                "COLLIE_INCREMENTAL={value:?}"
            );
        }
    }

    #[test]
    fn workers_parser_parses_and_clamps() {
        // CI and operators pin the matrix pool with COLLIE_WORKERS; this
        // pins the parser without touching process-global state.
        for (value, expected) in [
            (None, None),
            (Some(""), None),
            (Some("  "), None),
            (Some("not a pool"), None),
            (Some("-2"), None),
            (Some("0"), Some(1)),
            (Some("1"), Some(1)),
            (Some(" 3 "), Some(3)),
            (Some("24"), Some(24)),
        ] {
            assert_eq!(parse_workers(value), expected, "COLLIE_WORKERS={value:?}");
        }
    }
}
