//! Mitigations and bypasses for the catalogued anomalies.
//!
//! Section 7.1 of the paper reports that, of the eighteen anomalies, seven
//! were fixed after they were reported — "by firmware upgrade or detailed
//! configuration following our vendors' instructions" — and the rest have
//! to be *bypassed* by changing the application workload until a fix exists
//! (§7.3). Appendix A records what each fix was:
//!
//! | anomaly | fix |
//! |---|---|
//! | #3  | raise the deployment MTU from 1500 (1024 RDMA) to 4200 (4096 RDMA) |
//! | #9  | configure the RNIC as a forced relaxed-ordering PCIe device |
//! | #10 | vendor firmware release fixing the shared bidirectional packet-processing stage |
//! | #11 | install one NIC per socket so traffic never crosses the socket interconnect |
//! | #12 | correct the PCIe bridge ACS configuration so GPU P2P traffic is not detoured through the root complex |
//! | #17 | configure specific vendor registers on the Broadcom RNIC |
//! | #18 | same register configuration as #17 |
//!
//! Anomalies #1, #2, #4–#8 and #13–#16 had no fix at publication time; the
//! workload has to avoid them (e.g. #13 is bypassed by moving collocated
//! traffic to shared memory instead of RDMA loopback).
//!
//! [`Mitigation`] encodes both kinds: subsystem-side changes are applied to
//! a [`Subsystem`] (firmware flags, PCIe/BIOS settings), workload-side
//! bypasses are applied to a [`SearchPoint`]. The `mitigation_fixes`
//! example and the `tests/mitigations.rs` integration tests demonstrate the
//! before/after behaviour for every entry of the table above.

use crate::catalog::KnownAnomaly;
use crate::space::SearchPoint;
use collie_host::memory::MemoryTarget;
use collie_rnic::subsystem::Subsystem;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a mitigation is deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MitigationKind {
    /// A BIOS / PCIe / NIC-register configuration change on the servers.
    SubsystemConfiguration,
    /// A firmware upgrade of the RNIC.
    FirmwareUpgrade,
    /// A hardware change (e.g. installing one NIC per socket).
    HardwareChange,
    /// A change to the application workload (a bypass, not a fix).
    WorkloadChange,
}

impl fmt::Display for MitigationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MitigationKind::SubsystemConfiguration => write!(f, "configuration"),
            MitigationKind::FirmwareUpgrade => write!(f, "firmware upgrade"),
            MitigationKind::HardwareChange => write!(f, "hardware change"),
            MitigationKind::WorkloadChange => write!(f, "workload change"),
        }
    }
}

/// One documented fix or bypass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mitigation {
    /// Raise the deployment MTU so the RDMA path MTU becomes 4096 (the fix
    /// for Anomaly #3: small MTUs trigger the 200 Gbps packet-processing
    /// bottleneck on large READs).
    RaiseMtu,
    /// Configure the RNIC as a forced relaxed-ordering PCIe device (the fix
    /// for Anomaly #9).
    ForceRelaxedOrdering,
    /// Apply the vendor firmware release that fixes the shared
    /// bidirectional packet-processing stage (the fix for Anomaly #10).
    FirmwareBidirFix,
    /// Install one NIC per socket and keep each NIC's traffic on its local
    /// socket (the fix for Anomaly #11). Modelled as pinning every memory
    /// target to the RNIC-local NUMA node.
    NicPerSocket,
    /// Correct the PCIe bridge ACS configuration so GPU peer-to-peer
    /// traffic no longer detours through the root complex (the fix for
    /// Anomaly #12).
    FixAcsConfiguration,
    /// Configure the vendor-specified RNIC registers (the fix for the
    /// Broadcom Anomalies #17 and #18).
    VendorRegisterFix,
    /// Use a different IPC mechanism (e.g. shared memory) for collocated
    /// peers instead of RDMA loopback (the bypass for Anomaly #13 — not
    /// considered a fix by the paper).
    AvoidLoopbackViaIpc,
    /// Hypothetical NIC-side loopback rate limiter ("we are glad to see
    /// that some latest RNICs have done so", Appendix A) — an alternative
    /// mitigation for Anomaly #13 on newer silicon.
    LoopbackRateLimiter,
}

impl Mitigation {
    /// Every mitigation, in a stable order.
    pub const ALL: [Mitigation; 8] = [
        Mitigation::RaiseMtu,
        Mitigation::ForceRelaxedOrdering,
        Mitigation::FirmwareBidirFix,
        Mitigation::NicPerSocket,
        Mitigation::FixAcsConfiguration,
        Mitigation::VendorRegisterFix,
        Mitigation::AvoidLoopbackViaIpc,
        Mitigation::LoopbackRateLimiter,
    ];

    /// The paper anomaly numbers this mitigation addresses.
    pub fn fixes(self) -> &'static [u32] {
        match self {
            Mitigation::RaiseMtu => &[3],
            Mitigation::ForceRelaxedOrdering => &[9],
            Mitigation::FirmwareBidirFix => &[10],
            Mitigation::NicPerSocket => &[11],
            Mitigation::FixAcsConfiguration => &[12],
            Mitigation::VendorRegisterFix => &[17, 18],
            Mitigation::AvoidLoopbackViaIpc | Mitigation::LoopbackRateLimiter => &[13],
        }
    }

    /// How the mitigation is deployed.
    pub fn kind(self) -> MitigationKind {
        match self {
            Mitigation::RaiseMtu
            | Mitigation::ForceRelaxedOrdering
            | Mitigation::FixAcsConfiguration
            | Mitigation::VendorRegisterFix => MitigationKind::SubsystemConfiguration,
            Mitigation::FirmwareBidirFix => MitigationKind::FirmwareUpgrade,
            // "We are glad to see that some latest RNICs have done so"
            // (Appendix A): the rate limiter ships with newer silicon, so
            // deploying it means swapping the NIC, not flashing firmware.
            Mitigation::NicPerSocket | Mitigation::LoopbackRateLimiter => {
                MitigationKind::HardwareChange
            }
            Mitigation::AvoidLoopbackViaIpc => MitigationKind::WorkloadChange,
        }
    }

    /// Whether the paper counts this as one of the seven anomalies that were
    /// actually fixed (as opposed to bypassed or still open).
    pub fn counted_as_fixed(self) -> bool {
        !matches!(
            self,
            Mitigation::AvoidLoopbackViaIpc | Mitigation::LoopbackRateLimiter
        )
    }

    /// The documented mitigations for one anomaly (empty if the paper
    /// reports no fix and no workload bypass beyond "avoid the MFS").
    pub fn for_anomaly(id: u32) -> Vec<Mitigation> {
        Mitigation::ALL
            .into_iter()
            .filter(|m| m.fixes().contains(&id))
            .collect()
    }

    /// The anomaly numbers the paper reports as fixed after disclosure.
    pub fn paper_fixed_anomalies() -> Vec<u32> {
        let mut fixed: Vec<u32> = Mitigation::ALL
            .into_iter()
            .filter(|m| m.counted_as_fixed())
            .flat_map(|m| m.fixes().iter().copied())
            .collect();
        fixed.sort_unstable();
        fixed.dedup();
        fixed
    }

    /// Apply the mitigation to the subsystem under test (firmware flags,
    /// PCIe/BIOS settings, NIC registers). Workload-side mitigations leave
    /// the subsystem untouched.
    pub fn apply_to_subsystem(self, subsystem: &mut Subsystem) {
        match self {
            Mitigation::ForceRelaxedOrdering => {
                subsystem.host_a.pcie_settings.relaxed_ordering = true;
                subsystem.host_b.pcie_settings.relaxed_ordering = true;
            }
            Mitigation::FixAcsConfiguration => {
                subsystem.host_a.pcie_settings.acs_redirect_p2p = false;
                subsystem.host_b.pcie_settings.acs_redirect_p2p = false;
            }
            Mitigation::FirmwareBidirFix => {
                subsystem.rnic.firmware_bidir_fix = true;
            }
            Mitigation::VendorRegisterFix => {
                subsystem.rnic.vendor_register_fix = true;
            }
            Mitigation::LoopbackRateLimiter => {
                subsystem.rnic.loopback_rate_limited = true;
            }
            // Deployment-MTU, NIC-per-socket, and IPC changes act on the
            // workload description, not the subsystem model.
            Mitigation::RaiseMtu | Mitigation::NicPerSocket | Mitigation::AvoidLoopbackViaIpc => {}
        }
    }

    /// Apply the mitigation to a workload description (the bypass half:
    /// what an application developer changes). Subsystem-side mitigations
    /// leave the workload untouched.
    pub fn apply_to_workload(self, point: &mut SearchPoint) {
        match self {
            Mitigation::RaiseMtu => {
                point.mtu = 4096;
            }
            Mitigation::NicPerSocket => {
                // With one NIC per socket every flow can use NIC-local DRAM.
                if !point.src_memory.is_gpu() {
                    point.src_memory = MemoryTarget::local_dram();
                }
                if !point.dst_memory.is_gpu() {
                    point.dst_memory = MemoryTarget::local_dram();
                }
            }
            Mitigation::AvoidLoopbackViaIpc => {
                point.with_loopback = false;
            }
            Mitigation::ForceRelaxedOrdering
            | Mitigation::FirmwareBidirFix
            | Mitigation::FixAcsConfiguration
            | Mitigation::VendorRegisterFix
            | Mitigation::LoopbackRateLimiter => {}
        }
    }

    /// One-line operator-facing description.
    pub fn description(self) -> &'static str {
        match self {
            Mitigation::RaiseMtu => {
                "raise the deployment MTU to 4200 so the RDMA path MTU becomes 4096"
            }
            Mitigation::ForceRelaxedOrdering => {
                "configure the RNIC as a forced relaxed-ordering PCIe device"
            }
            Mitigation::FirmwareBidirFix => {
                "apply the vendor firmware release fixing the shared bidirectional packet-processing stage"
            }
            Mitigation::NicPerSocket => {
                "install one NIC per socket and keep traffic on the NIC-local socket"
            }
            Mitigation::FixAcsConfiguration => {
                "correct the PCIe bridge ACS configuration so GPU peer-to-peer DMA is switched locally"
            }
            Mitigation::VendorRegisterFix => {
                "configure the vendor-specified RNIC registers"
            }
            Mitigation::AvoidLoopbackViaIpc => {
                "move collocated worker/server communication to shared memory instead of RDMA loopback"
            }
            Mitigation::LoopbackRateLimiter => {
                "use an RNIC generation that rate-limits loopback traffic"
            }
        }
    }
}

impl fmt::Display for Mitigation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.description(), self.kind())
    }
}

/// A remediation plan for one anomaly: the anomaly plus every documented
/// mitigation, in the order an operator would try them (fixes before
/// bypasses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemediationPlan {
    /// The anomaly being remediated.
    pub anomaly_id: u32,
    /// Mitigations, fixes first.
    pub mitigations: Vec<Mitigation>,
}

impl RemediationPlan {
    /// Build the plan for one catalogued anomaly.
    pub fn for_anomaly(anomaly: &KnownAnomaly) -> RemediationPlan {
        let mut mitigations = Mitigation::for_anomaly(anomaly.id);
        mitigations.sort_by_key(|m| !m.counted_as_fixed());
        RemediationPlan {
            anomaly_id: anomaly.id,
            mitigations,
        }
    }

    /// True if the paper reports a real fix (not just a bypass).
    pub fn has_fix(&self) -> bool {
        self.mitigations.iter().any(|m| m.counted_as_fixed())
    }

    /// Apply every subsystem-side mitigation of the plan.
    pub fn apply_subsystem_side(&self, subsystem: &mut Subsystem) {
        for m in &self.mitigations {
            m.apply_to_subsystem(subsystem);
        }
    }

    /// Apply every workload-side mitigation of the plan.
    pub fn apply_workload_side(&self, point: &mut SearchPoint) {
        for m in &self.mitigations {
            m.apply_to_workload(point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkloadEngine;
    use crate::monitor::AnomalyMonitor;

    fn is_anomalous(engine: &mut WorkloadEngine, point: &SearchPoint) -> bool {
        let monitor = AnomalyMonitor::new();
        let (_, verdict) = monitor.measure_and_assess(engine, point);
        verdict.is_anomalous()
    }

    #[test]
    fn seven_anomalies_are_counted_as_fixed() {
        let fixed = Mitigation::paper_fixed_anomalies();
        assert_eq!(fixed, vec![3, 9, 10, 11, 12, 17, 18]);
        assert_eq!(fixed.len(), 7, "the paper reports 7 fixed anomalies");
    }

    #[test]
    fn every_fixed_anomaly_stops_mapping_to_its_rule_after_its_mitigation() {
        // Rule-level check: after the documented fix for anomaly #N, the
        // trigger no longer maps to rule collie/N. (End-to-end health is
        // checked in tests/mitigations.rs with the full remediation set,
        // because some triggers — notably #12's — also fall into a second,
        // separately-fixed anomaly.)
        for id in Mitigation::paper_fixed_anomalies() {
            let anomaly = KnownAnomaly::by_id(id).expect("catalogued anomaly");
            let plan = RemediationPlan::for_anomaly(&anomaly);
            assert!(plan.has_fix(), "#{id} should have a real fix");

            let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
            assert!(
                is_anomalous(&mut engine, &anomaly.trigger),
                "#{id} should trigger before the fix"
            );
            assert!(engine
                .ground_truth(&anomaly.trigger)
                .iter()
                .any(|r| *r == anomaly.rule));

            plan.apply_subsystem_side(engine.subsystem_mut());
            let mut workload = anomaly.trigger.clone();
            plan.apply_workload_side(&mut workload);
            let rules = engine.ground_truth(&workload);
            assert!(
                !rules.iter().any(|r| *r == anomaly.rule),
                "#{id} should no longer map to {} after {:?}, still maps to {rules:?}",
                anomaly.rule,
                plan.mitigations
            );
        }
    }

    #[test]
    fn loopback_bypass_clears_anomaly_13_and_the_rate_limiter_removes_its_rule() {
        let anomaly = KnownAnomaly::by_id(13).unwrap();

        // Workload-side bypass: stop using RDMA loopback → healthy end to
        // end (this is what the paper's deployment actually did).
        let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
        let mut bypassed = anomaly.trigger.clone();
        Mitigation::AvoidLoopbackViaIpc.apply_to_workload(&mut bypassed);
        assert!(!is_anomalous(&mut engine, &bypassed));

        // NIC-side alternative: a loopback rate limiter removes the in-NIC
        // incast bottleneck (the rule stops firing), though the collocated
        // traffic still shares the host's PCIe bandwidth — which is why the
        // paper does not consider #13 fixed.
        let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
        assert!(is_anomalous(&mut engine, &anomaly.trigger));
        Mitigation::LoopbackRateLimiter.apply_to_subsystem(engine.subsystem_mut());
        let rules = engine.ground_truth(&anomaly.trigger);
        assert!(
            !rules.iter().any(|r| *r == anomaly.rule),
            "the rate limiter should remove {}, still maps to {rules:?}",
            anomaly.rule
        );
    }

    #[test]
    fn mitigations_do_not_hurt_benign_workloads() {
        let mut engine = WorkloadEngine::for_catalog(collie_rnic::subsystems::SubsystemId::F);
        for m in Mitigation::ALL {
            m.apply_to_subsystem(engine.subsystem_mut());
        }
        let mut benign = SearchPoint::benign();
        for m in Mitigation::ALL {
            m.apply_to_workload(&mut benign);
        }
        assert!(!is_anomalous(&mut engine, &benign));
    }

    #[test]
    fn remediation_plans_order_fixes_before_bypasses() {
        let anomaly = KnownAnomaly::by_id(13).unwrap();
        let plan = RemediationPlan::for_anomaly(&anomaly);
        // #13 has no real fix: only the IPC bypass and the newer-silicon
        // rate limiter.
        assert!(!plan.has_fix());
        assert_eq!(plan.mitigations.len(), 2);

        let anomaly4 = KnownAnomaly::by_id(4).unwrap();
        let plan4 = RemediationPlan::for_anomaly(&anomaly4);
        assert!(plan4.mitigations.is_empty(), "#4 has no documented fix");
        assert!(!plan4.has_fix());
    }

    #[test]
    fn kinds_and_descriptions_are_populated() {
        for m in Mitigation::ALL {
            assert!(!m.description().is_empty());
            assert!(!m.fixes().is_empty());
            let _ = m.kind();
            assert!(m.to_string().contains(&m.kind().to_string()));
        }
        assert_eq!(
            Mitigation::VendorRegisterFix.kind(),
            MitigationKind::SubsystemConfiguration
        );
        assert_eq!(
            Mitigation::NicPerSocket.kind(),
            MitigationKind::HardwareChange
        );
        assert_eq!(
            Mitigation::FirmwareBidirFix.kind(),
            MitigationKind::FirmwareUpgrade
        );
        // Regression pin: the loopback rate limiter is newer silicon, not a
        // firmware flash (it was misclassified as FirmwareUpgrade once).
        assert_eq!(
            Mitigation::LoopbackRateLimiter.kind(),
            MitigationKind::HardwareChange
        );
        assert_eq!(
            Mitigation::AvoidLoopbackViaIpc.kind(),
            MitigationKind::WorkloadChange
        );
    }
}
