//! Multi-host fabric campaigns.
//!
//! The two-host search ([`crate::search`]) can only reach anomalies whose
//! blast radius is the misbehaving pair itself. The paper's headline
//! cross-host failure — a PFC pause storm where one bad RNIC back-pressures
//! the switch and collapses victim flows on *other* ports — needs a fabric.
//! This module threads that capability through the same layer stack as the
//! two-host pipeline:
//!
//! * [`FabricEngine`] wraps a [`WorkloadEngine`]: the culprit's workload is
//!   measured on the calibrated two-host model, then
//!   [`evaluate_fabric`] relays the
//!   culprit's pause through the N-port switch and derives the victim and
//!   spread gauges.
//! * [`FabricEvaluator`] is the memoized evaluation layer (the fabric
//!   counterpart of [`Evaluator`](crate::eval::Evaluator)): fabric
//!   measurements are a pure function of the [`FabricPoint`], so whole
//!   measurements are memoized by canonical point and campaigns are
//!   bit-identical with the cache on or off.
//! * [`assess_fabric`] applies the §5.2 anomaly conditions to the fabric
//!   observables and additionally labels the cross-host hallmark: a victim
//!   flow collapsing while the culprit's own throughput stays healthy.
//! * [`FabricMfsExtractor`] extracts minimal
//!   feature sets over workload *and* fabric coordinates, so an MFS can
//!   state "needs at least 3 hosts, incast at least 2".
//! * [`run_fabric_search`] runs the
//!   counter-guided campaign over the fabric space.

mod campaign;
mod mfs;

pub use campaign::{
    run_fabric_search, run_fabric_search_in_context, run_fabric_search_with_stats, FabricDiscovery,
    FabricDomain, FabricOutcome,
};
pub use mfs::{FabricExtractionOutcome, FabricMfs, FabricMfsExtractor, FabricSignature};

use crate::engine::WorkloadEngine;
use crate::eval::{EvalProfile, EvalStats, SharedCache, SharedUse, SpecWorker, SpeculationParts};
use crate::monitor::{AnomalyMonitor, Symptom};
use crate::space::{FabricPoint, SearchPoint};
use collie_rnic::fabric::{evaluate_fabric, FabricMeasurement};
use collie_rnic::subsystem::{Measurement, Subsystem};
use collie_rnic::subsystems::SubsystemId;
use collie_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
// collie-lint: allow(wall-clock, reason = "FabricEvaluator's EvalProfile records real compute latency; it never feeds a campaign decision")
use std::time::Instant;

/// Sets up and runs fabric experiments: N homogeneous hosts around the
/// wrapped two-host engine.
///
/// **Determinism contract:** like [`WorkloadEngine::measure`], `measure` is
/// a pure function of the point — the inner engine resets all state per
/// evaluation and the switch relay is arithmetic on its outputs — which is
/// what makes [`FabricEvaluator`]'s memoization sound.
#[derive(Debug)]
pub struct FabricEngine {
    engine: WorkloadEngine,
    baseline: Measurement,
}

impl FabricEngine {
    /// A fabric engine around an existing two-host engine. Measures the
    /// benign reference workload once: that is what a victim flow achieves
    /// on an idle fabric.
    pub fn new(mut engine: WorkloadEngine) -> Self {
        let baseline = engine.measure(&SearchPoint::benign());
        FabricEngine { engine, baseline }
    }

    /// A fabric engine over one of the Table-1 subsystems.
    pub fn for_catalog(id: SubsystemId) -> Self {
        FabricEngine::new(WorkloadEngine::for_catalog(id))
    }

    /// An independent engine over the same fabric configuration (see
    /// [`WorkloadEngine::fork`]); the benign baseline is reused rather than
    /// re-measured, which the determinism contract makes exact.
    pub fn fork(&self) -> Self {
        FabricEngine {
            engine: self.engine.fork(),
            baseline: self.baseline.clone(),
        }
    }

    /// The subsystem under test (every host of the fabric is a copy of its
    /// host configuration).
    pub fn subsystem(&self) -> &Subsystem {
        self.engine.subsystem()
    }

    /// The wrapped two-host engine.
    pub fn inner(&self) -> &WorkloadEngine {
        &self.engine
    }

    /// Toggle incremental evaluation on the wrapped two-host engine (see
    /// [`WorkloadEngine::set_incremental`]). Forks inherit the mode.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.engine.set_incremental(enabled);
    }

    /// The benign-fabric reference measurement.
    pub fn baseline(&self) -> &Measurement {
        &self.baseline
    }

    /// Run one fabric experiment: the culprit's workload on the two-host
    /// model, then the switch-level pause relay across the shape.
    pub fn measure(&mut self, point: &FabricPoint) -> FabricMeasurement {
        let culprit = self.engine.measure(&point.workload);
        evaluate_fabric(
            &self.engine.subsystem().rnic,
            point.shape(),
            &culprit,
            &self.baseline,
        )
    }

    /// How long this experiment would take on real hardware: the two-host
    /// setup cost plus connection setup fanned out across the extra hosts
    /// (each additional host re-runs the out-of-band exchange).
    pub fn experiment_cost(point: &FabricPoint) -> SimDuration {
        let base = WorkloadEngine::experiment_cost(&point.workload);
        let extra_hosts = point.shape().normalized().host_count.saturating_sub(2);
        SimDuration::from_secs_f64((base.as_secs_f64() + 2.0 * extra_hosts as f64).min(90.0))
    }

    /// Ground-truth oracle pass-through for the culprit's workload
    /// (scoring only; the fabric search never sees it).
    pub fn ground_truth(&self, point: &FabricPoint) -> Vec<&'static str> {
        self.engine.ground_truth(&point.workload)
    }
}

/// The verdict on one fabric experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricVerdict {
    /// The detected symptom, if any (pause frames on a port whose own
    /// endpoints are healthy).
    pub symptom: Option<Symptom>,
    /// The cross-host hallmark: the victim flow collapsed below the
    /// throughput threshold while the culprit's own traffic stayed at or
    /// above it — the signature the paper's operators actually chase.
    pub cross_host: bool,
    /// Observed pause ratio on the victim flow's sender port.
    pub victim_pause: f64,
    /// Victim flow's achieved / expected throughput fraction.
    pub victim_frac: f64,
    /// Culprit host's own spec fraction.
    pub culprit_frac: f64,
}

impl FabricVerdict {
    /// True if any anomaly was detected.
    pub fn is_anomalous(&self) -> bool {
        self.symptom.is_some()
    }
}

/// Apply the anomaly conditions to a fabric measurement. The pause
/// condition is the paper's (§5.2): pause frames without congestion — on a
/// fabric, pause observed on a *victim's* sender port is by construction
/// host-caused, since traffic matrices are admissible.
pub fn assess_fabric(monitor: &AnomalyMonitor, fm: &FabricMeasurement) -> FabricVerdict {
    let thresholds = monitor.thresholds();
    let symptom = if fm.victim_pause_ratio > thresholds.pause_ratio {
        Some(Symptom::PauseStorm)
    } else {
        None
    };
    let cross_host = symptom.is_some()
        && fm.victim_throughput_frac < thresholds.throughput_fraction
        && fm.culprit_throughput_frac >= thresholds.throughput_fraction;
    FabricVerdict {
        symptom,
        cross_host,
        victim_pause: fm.victim_pause_ratio,
        victim_frac: fm.victim_throughput_frac,
        culprit_frac: fm.culprit_throughput_frac,
    }
}

/// A memoizing wrapper around one fabric engine (the fabric counterpart of
/// [`Evaluator`](crate::eval::Evaluator); same cost-accounting split: the
/// campaign keeps charging simulated hardware time per measurement whether
/// or not it hit the cache). With speculation enabled
/// ([`FabricEvaluator::speculation`]) a local miss first consults the
/// worker-filled [`SharedCache`]; stats are counted off the local cache
/// alone, so they are bit-identical either way.
#[derive(Debug)]
pub struct FabricEvaluator<'e> {
    engine: &'e mut FabricEngine,
    cache: HashMap<FabricPoint, Arc<FabricMeasurement>>,
    shared: Option<Arc<SharedCache<FabricPoint, FabricMeasurement>>>,
    memoize: bool,
    stats: EvalStats,
    shared_use: SharedUse,
    compute_micros: Vec<u64>,
}

struct ForkedFabricWorker {
    engine: FabricEngine,
}

impl SpecWorker<FabricPoint, FabricMeasurement> for ForkedFabricWorker {
    fn compute(&mut self, point: &FabricPoint) -> FabricMeasurement {
        self.engine.measure(point)
    }
}

impl<'e> FabricEvaluator<'e> {
    /// A memoizing evaluator over `engine`.
    pub fn new(engine: &'e mut FabricEngine) -> Self {
        FabricEvaluator {
            engine,
            cache: HashMap::new(),
            shared: None,
            memoize: true,
            stats: EvalStats::default(),
            shared_use: SharedUse::default(),
            compute_micros: Vec::new(),
        }
    }

    /// Attach a matrix-scoped shared cache (see
    /// [`Evaluator::attach_shared`](crate::eval::Evaluator::attach_shared)):
    /// local misses are answered through `shared` while [`Self::stats`] stay
    /// bit-identical. No-op when memoization is off.
    pub fn attach_shared(&mut self, shared: Arc<SharedCache<FabricPoint, FabricMeasurement>>) {
        if self.memoize {
            self.shared = Some(shared);
        }
    }

    /// An evaluator that always recomputes (the uncached reference path of
    /// the bit-identity tests).
    pub fn uncached(engine: &'e mut FabricEngine) -> Self {
        FabricEvaluator {
            memoize: false,
            ..FabricEvaluator::new(engine)
        }
    }

    /// Measure one fabric point, answering from the memo cache when the
    /// identical point was measured before.
    pub fn measure(&mut self, point: &FabricPoint) -> FabricMeasurement {
        if !self.memoize {
            self.stats.misses += 1;
            return self.timed_compute(point);
        }
        if let Some(measurement) = self.cache.get(point) {
            self.stats.hits += 1;
            return (**measurement).clone();
        }
        self.stats.misses += 1;
        let measurement = if let Some(shared) = self.shared.as_ref().map(Arc::clone) {
            let engine = &mut *self.engine;
            let micros = &mut self.compute_micros;
            let mut computed_here = false;
            let measurement = shared.get_or_compute(point, || {
                computed_here = true;
                // collie-lint: allow(wall-clock, reason = "perf-harness latency sample; the measurement itself is deterministic")
                let started = Instant::now();
                let measurement = engine.measure(point);
                micros.push(started.elapsed().as_micros() as u64);
                measurement
            });
            if computed_here {
                self.shared_use.computed += 1;
            } else {
                self.shared_use.served += 1;
            }
            measurement
        } else {
            Arc::new(self.timed_compute(point))
        };
        self.cache.insert(point.clone(), Arc::clone(&measurement));
        (*measurement).clone()
    }

    /// Run the fabric model for one point, recording its wall-clock cost.
    fn timed_compute(&mut self, point: &FabricPoint) -> FabricMeasurement {
        // collie-lint: allow(wall-clock, reason = "perf-harness latency sample; the measurement itself is deterministic")
        let started = Instant::now();
        let measurement = self.engine.measure(point);
        self.compute_micros
            .push(started.elapsed().as_micros() as u64);
        measurement
    }

    /// The §6 measurement procedure through the cache: sample the fabric
    /// experiment `samples_per_iteration` times (repeats are cache hits)
    /// and assess the final sample.
    pub fn measure_and_assess(
        &mut self,
        monitor: &AnomalyMonitor,
        point: &FabricPoint,
    ) -> (FabricMeasurement, FabricVerdict) {
        let samples = monitor.samples_per_iteration.max(1);
        let measurement = self.measure(point);
        if self.memoize {
            // Repeats of an identical deterministic sample are guaranteed
            // cache hits; account for them without the redundant lookups.
            self.stats.hits += u64::from(samples - 1);
        } else {
            for _ in 1..samples {
                let _ = self.measure(point);
            }
        }
        let verdict = assess_fabric(monitor, &measurement);
        (measurement, verdict)
    }

    /// Prepare shared-cache speculation (see
    /// [`Evaluator::speculation`](crate::eval::Evaluator::speculation)):
    /// `None` when memoization is off or no workers were requested.
    pub fn speculation(
        &mut self,
        workers: usize,
    ) -> Option<SpeculationParts<FabricPoint, FabricMeasurement>> {
        if !self.memoize || workers == 0 {
            return None;
        }
        // Reuse a matrix-scoped cache when one is attached so speculation
        // workers publish where sibling cells can read; otherwise the cache
        // is private to this campaign.
        let shared = match &self.shared {
            Some(shared) => Arc::clone(shared),
            None => Arc::new(SharedCache::new()),
        };
        self.shared = Some(Arc::clone(&shared));
        let workers = (0..workers)
            .map(|_| {
                Box::new(ForkedFabricWorker {
                    engine: self.engine.fork(),
                }) as Box<dyn SpecWorker<FabricPoint, FabricMeasurement>>
            })
            .collect();
        Some(SpeculationParts { shared, workers })
    }

    /// The subsystem under test.
    pub fn subsystem(&self) -> &Subsystem {
        self.engine.subsystem()
    }

    /// Ground-truth oracle pass-through (scoring only).
    pub fn ground_truth(&self, point: &FabricPoint) -> Vec<&'static str> {
        self.engine.ground_truth(point)
    }

    /// Cache hit/miss counters so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Shared-cache interaction counters (see
    /// [`Evaluator::shared_use`](crate::eval::Evaluator::shared_use)).
    pub fn shared_use(&self) -> SharedUse {
        self.shared_use
    }

    /// The full evaluation profile: local stats, shared-cache interaction,
    /// and one wall-clock latency per fabric-model run on this thread.
    pub fn profile(&self) -> EvalProfile {
        EvalProfile {
            stats: self.stats,
            shared: self.shared_use,
            compute_micros: self.compute_micros.clone(),
            incremental: self.engine.subsystem().incremental_use(),
        }
    }

    /// Number of distinct points held in the cache.
    pub fn cached_points(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::FabricSpace;
    use collie_rnic::fabric::TrafficPattern;
    use collie_rnic::workload::{Opcode, Transport};
    use collie_sim::rng::SimRng;

    /// A culprit workload with moderate pause and healthy throughput: the
    /// cross-socket receive path.
    pub(crate) fn cross_host_culprit() -> FabricPoint {
        let mut workload = SearchPoint::benign();
        workload.bidirectional = true;
        workload.dst_memory = collie_host::memory::MemoryTarget::HostDram { numa_node: 1 };
        FabricPoint {
            workload,
            host_count: 8,
            incast_degree: 6,
            pattern: TrafficPattern::Ring,
        }
    }

    /// A severe local pause storm (anomaly #4's workload: bidirectional
    /// RC READ with long SG lists, severity 0.30) on a fabric — the
    /// culprit's own throughput collapses well below the health threshold.
    pub(crate) fn storming_culprit() -> FabricPoint {
        let mut workload = SearchPoint::benign();
        workload.transport = Transport::Rc;
        workload.opcode = Opcode::Read;
        workload.bidirectional = true;
        workload.wqe_batch = 64;
        workload.sge_per_wqe = 8;
        workload.num_qps = 256;
        FabricPoint {
            workload,
            host_count: 4,
            incast_degree: 2,
            pattern: TrafficPattern::Incast,
        }
    }

    #[test]
    fn benign_fabric_is_healthy() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let fm = engine.measure(&FabricPoint::benign());
        let verdict = assess_fabric(&monitor, &fm);
        assert!(!verdict.is_anomalous(), "{verdict:?}");
        assert!(verdict.victim_frac > 0.9);
    }

    #[test]
    fn cross_host_culprit_is_flagged_with_the_hallmark() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let fm = engine.measure(&cross_host_culprit());
        let verdict = assess_fabric(&monitor, &fm);
        assert_eq!(verdict.symptom, Some(Symptom::PauseStorm));
        assert!(
            verdict.cross_host,
            "victim should collapse while the culprit stays healthy: {verdict:?}"
        );
    }

    #[test]
    fn severe_local_storm_is_anomalous_but_not_the_cross_host_hallmark() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let fm = engine.measure(&storming_culprit());
        let verdict = assess_fabric(&monitor, &fm);
        assert_eq!(verdict.symptom, Some(Symptom::PauseStorm));
        // The culprit's own throughput has already collapsed, so the
        // anomaly is visible from the culprit itself — not the silent
        // victim-only signature.
        assert!(!verdict.cross_host, "{verdict:?}");
    }

    #[test]
    fn two_host_shapes_never_produce_fabric_anomalies() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let point = FabricPoint::two_host(storming_culprit().workload);
        let verdict = assess_fabric(&monitor, &engine.measure(&point));
        // No victim exists on the paper's testbed; the two-host campaign
        // owns that regime.
        assert!(!verdict.is_anomalous());
    }

    #[test]
    fn fabric_measure_is_deterministic_so_memoization_is_sound() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let point = cross_host_culprit();
        let a = engine.measure(&point);
        let _ = engine.measure(&FabricPoint::benign());
        let b = engine.measure(&point);
        assert_eq!(a, b, "measure must be a pure function of the point");
    }

    #[test]
    fn evaluator_hits_the_cache_on_repeats_and_agrees() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let mut evaluator = FabricEvaluator::new(&mut engine);
        let p = cross_host_culprit();
        let first = evaluator.measure(&p);
        let second = evaluator.measure(&p);
        assert_eq!(first, second);
        assert_eq!(evaluator.stats(), EvalStats { hits: 1, misses: 1 });
        assert_eq!(evaluator.cached_points(), 1);
    }

    #[test]
    fn measure_and_assess_samples_through_the_cache() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let mut evaluator = FabricEvaluator::new(&mut engine);
        let monitor = AnomalyMonitor::new();
        let (_, verdict) = evaluator.measure_and_assess(&monitor, &cross_host_culprit());
        assert!(verdict.is_anomalous());
        // Four samples per iteration: one compute, three cache hits.
        assert_eq!(evaluator.stats(), EvalStats { hits: 3, misses: 1 });
    }

    #[test]
    fn uncached_evaluator_never_hits() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let mut evaluator = FabricEvaluator::uncached(&mut engine);
        let p = FabricPoint::benign();
        let a = evaluator.measure(&p);
        let b = evaluator.measure(&p);
        assert_eq!(a, b);
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 2 });
        assert_eq!(evaluator.cached_points(), 0);
    }

    #[test]
    fn forked_fabric_engines_measure_identically() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let mut fork = engine.fork();
        let p = cross_host_culprit();
        let _ = fork.measure(&storming_culprit());
        assert_eq!(engine.measure(&p), fork.measure(&p));
        assert_eq!(engine.baseline(), fork.baseline());
    }

    #[test]
    fn fabric_speculation_workers_fill_the_shared_cache() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let mut reference = FabricEngine::for_catalog(SubsystemId::F);
        let mut evaluator = FabricEvaluator::new(&mut engine);
        let parts = evaluator.speculation(1).expect("memoized evaluator");
        let p = cross_host_culprit();
        let mut workers = parts.workers;
        let m = workers[0].compute(&p);
        assert_eq!(m, reference.measure(&p));
        parts.shared.fulfill(p.clone(), m);
        assert_eq!(evaluator.measure(&p), reference.measure(&p));
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 1 });
        assert_eq!(parts.shared.computed_count(), 1);

        let mut uncached = FabricEvaluator::uncached(&mut reference);
        assert!(uncached.speculation(2).is_none());
    }

    #[test]
    fn fabric_speculation_reuses_an_attached_shared_cache() {
        let shared: Arc<SharedCache<FabricPoint, FabricMeasurement>> = Arc::new(SharedCache::new());
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let mut evaluator = FabricEvaluator::new(&mut engine);
        evaluator.attach_shared(Arc::clone(&shared));
        let parts = evaluator.speculation(1).expect("memoized evaluator");
        assert!(
            Arc::ptr_eq(&parts.shared, &shared),
            "speculation workers must publish into the matrix-scoped cache"
        );
    }

    #[test]
    fn attached_fabric_cache_tracks_shared_use_without_touching_stats() {
        let shared: Arc<SharedCache<FabricPoint, FabricMeasurement>> = Arc::new(SharedCache::new());
        let mut reference = FabricEngine::for_catalog(SubsystemId::F);
        let p = cross_host_culprit();
        shared.fulfill(p.clone(), reference.measure(&p));

        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let mut evaluator = FabricEvaluator::new(&mut engine);
        evaluator.attach_shared(Arc::clone(&shared));
        let got = evaluator.measure(&p);
        assert_eq!(got, reference.measure(&p));
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 1 });
        assert_eq!(
            evaluator.shared_use(),
            SharedUse {
                computed: 0,
                served: 1
            }
        );
        assert!(evaluator.profile().compute_micros.is_empty());
        let _ = evaluator.measure(&FabricPoint::benign());
        assert_eq!(
            evaluator.shared_use(),
            SharedUse {
                computed: 1,
                served: 1
            }
        );
        assert_eq!(evaluator.profile().compute_micros.len(), 1);

        let mut uncached = FabricEvaluator::uncached(&mut reference);
        uncached.attach_shared(Arc::clone(&shared));
        let _ = uncached.measure(&p);
        assert_eq!(uncached.shared_use(), SharedUse::default());
        assert_eq!(uncached.profile().compute_micros.len(), 1);
    }

    #[test]
    fn experiment_cost_scales_with_host_count_and_stays_bounded() {
        let mut p = FabricPoint::benign();
        p.host_count = 2;
        let two = FabricEngine::experiment_cost(&p);
        p.host_count = 8;
        let eight = FabricEngine::experiment_cost(&p);
        assert!(eight > two);
        assert!((eight.as_secs_f64() - two.as_secs_f64() - 12.0).abs() < 1e-9);
        p.workload.num_qps = 2048;
        p.workload.mrs_per_qp = 1024;
        assert!(FabricEngine::experiment_cost(&p).as_secs_f64() <= 90.0);
        assert!(two.as_secs_f64() >= 20.0);
    }

    #[test]
    fn random_fabric_points_yield_finite_gauges() {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let space = FabricSpace::for_host(&SubsystemId::F.host());
        let mut rng = SimRng::new(41);
        for _ in 0..40 {
            let p = space.random_point(&mut rng);
            let fm = engine.measure(&p);
            assert!((0.0..=1.0).contains(&fm.victim_pause_ratio), "{p}");
            assert!((0.0..=1.0).contains(&fm.pause_spread), "{p}");
            assert!(fm.victim_throughput_frac.is_finite());
            assert!(fm.port_pause.len() >= 2);
        }
    }
}
