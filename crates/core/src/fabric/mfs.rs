//! Minimal feature sets over the fabric space.
//!
//! Same algorithm as the two-host extractor
//! ([`MfsExtractor`](crate::monitor::MfsExtractor)), lifted to
//! [`FabricFeature`]: every coordinate — the culprit workload's fifteen
//! features *and* the three fabric dimensions — is probed for necessity, so
//! a cross-host MFS can state conditions like "at least 3 hosts" or
//! "incast degree at least 2" alongside the usual transport conditions.
//!
//! A probe "reproduces" the anomaly when it shows the same observable
//! identity: the same end-to-end symptom *and* the same cross-host
//! classification. Requiring the classification to match keeps a genuine
//! victim-collapse anomaly from being blurred into the (operationally very
//! different) self-evident local storm when a probe merely pushes the
//! culprit over its own throughput threshold.

use super::campaign::FabricDomain;
use super::{FabricEvaluator, FabricVerdict};
use crate::monitor::{AnomalyMonitor, FeatureCondition, Symptom};
use crate::search::SignalMode;
use crate::space::{FabricFeature, FabricPoint, FabricSpace};
use collie_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fabric minimal feature set: the necessary conditions to reproduce one
/// cross-host anomaly, plus an example fabric point that does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricMfs {
    /// The end-to-end symptom.
    pub symptom: Symptom,
    /// Whether the anomaly carries the cross-host hallmark (victim
    /// collapsed, culprit healthy).
    pub cross_host: bool,
    /// The necessary conditions, keyed by fabric feature.
    pub conditions: BTreeMap<FabricFeature, FeatureCondition>,
    /// A concrete fabric point that reproduces the anomaly.
    pub example: FabricPoint,
}

impl FabricMfs {
    /// True if `point` satisfies every condition of this MFS.
    pub fn matches(&self, point: &FabricPoint) -> bool {
        self.conditions
            .iter()
            .all(|(feature, condition)| condition.admits(&point.feature_value(*feature)))
    }

    /// Human-readable condition list.
    pub fn describe(&self) -> String {
        let mut lines: Vec<String> = self
            .conditions
            .iter()
            .map(|(f, c)| format!("{f} {c}"))
            .collect();
        lines.sort();
        let hallmark = if self.cross_host { ", cross-host" } else { "" };
        format!("[{}{hallmark}] {}", self.symptom, lines.join("; "))
    }

    /// Number of necessary conditions.
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// True if no condition was found necessary (kept total for
    /// robustness; empty MFSes never participate in campaign dedup).
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }
}

/// The observable identity probes are compared against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricSignature {
    pub(crate) symptom: Symptom,
    pub(crate) cross_host: bool,
}

impl FabricSignature {
    pub(crate) fn matches(self, verdict: &FabricVerdict) -> bool {
        verdict.symptom == Some(self.symptom) && verdict.cross_host == self.cross_host
    }
}

/// The result of one fabric extraction: the MFS plus the cost it incurred.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricExtractionOutcome {
    /// The extracted minimal feature set.
    pub mfs: FabricMfs,
    /// Experiments spent probing.
    pub experiments: u32,
    /// Simulated wall-clock spent probing.
    pub elapsed: SimDuration,
}

/// Extracts fabric MFSes by probing through a shared memoized evaluator.
///
/// This is the fabric convenience binding of the generic
/// [`kernel::MfsExtractor`](crate::search::kernel::MfsExtractor): it holds
/// the evaluator/monitor/space triple and instantiates the generic prober
/// over a [`FabricDomain`] per extraction.
pub struct FabricMfsExtractor<'a, 'e> {
    evaluator: &'a mut FabricEvaluator<'e>,
    monitor: &'a AnomalyMonitor,
    space: &'a FabricSpace,
    /// Maximum alternatives probed per categorical feature.
    pub max_alternatives: usize,
    /// Maximum bisection steps per numeric feature.
    pub max_bisection_steps: usize,
}

impl<'a, 'e> FabricMfsExtractor<'a, 'e> {
    /// A new extractor bound to an evaluator, monitor, and fabric space.
    pub fn new(
        evaluator: &'a mut FabricEvaluator<'e>,
        monitor: &'a AnomalyMonitor,
        space: &'a FabricSpace,
    ) -> Self {
        FabricMfsExtractor {
            evaluator,
            monitor,
            space,
            max_alternatives: 2,
            max_bisection_steps: 1,
        }
    }

    /// Extract the MFS of an anomalous fabric point.
    pub fn extract(
        &mut self,
        anomalous: &FabricPoint,
        symptom: Symptom,
        cross_host: bool,
    ) -> FabricExtractionOutcome {
        // The signal mode only affects campaign guidance, never extraction
        // (the fabric signature is the (symptom, cross-host) identity);
        // any mode binds the same probing behaviour.
        let mut domain = FabricDomain::new(
            &mut *self.evaluator,
            self.monitor,
            self.space,
            SignalMode::Diagnostic,
        );
        let parts = crate::search::kernel::MfsExtractor::new(&mut domain)
            .with_limits(self.max_alternatives, self.max_bisection_steps)
            .extract(anomalous, &(symptom, cross_host));
        FabricExtractionOutcome {
            mfs: parts.mfs,
            experiments: parts.experiments,
            elapsed: parts.elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{cross_host_culprit, storming_culprit};
    use super::*;
    use crate::fabric::{assess_fabric, FabricEngine};
    use collie_rnic::subsystems::SubsystemId;

    fn extract_for(point: &FabricPoint) -> FabricExtractionOutcome {
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let space = FabricSpace::for_host(&SubsystemId::F.host());
        let mut evaluator = FabricEvaluator::new(&mut engine);
        let (_, verdict) = evaluator.measure_and_assess(&monitor, point);
        let symptom = verdict.symptom.expect("point must be anomalous");
        let mut extractor = FabricMfsExtractor::new(&mut evaluator, &monitor, &space);
        extractor.extract(point, symptom, verdict.cross_host)
    }

    #[test]
    fn cross_host_mfs_contains_fabric_conditions() {
        let point = cross_host_culprit();
        let outcome = extract_for(&point);
        let mfs = &outcome.mfs;
        assert!(mfs.cross_host);
        assert!(mfs.matches(&point), "{}", mfs.describe());
        // The cross-host hallmark needs a victim, hence a third host.
        assert!(
            matches!(
                mfs.conditions.get(&FabricFeature::HostCount),
                Some(FeatureCondition::AtLeast(t)) if *t >= 3
            ),
            "{}",
            mfs.describe()
        );
        // Dropping to the two-host testbed breaks the match.
        let mut two_host = point.clone();
        two_host.host_count = 2;
        assert!(!mfs.matches(&two_host));
        assert!(outcome.experiments > 0);
        assert!(outcome.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn local_storm_mfs_keeps_its_workload_conditions() {
        let point = storming_culprit();
        let outcome = extract_for(&point);
        let mfs = &outcome.mfs;
        assert!(!mfs.cross_host);
        assert!(mfs.matches(&point), "{}", mfs.describe());
        assert!(!mfs.is_empty());
        // The local anomaly does not depend on the traffic shape staying
        // fixed — only on a victim existing — so the describe string names
        // at least one workload-side condition too.
        assert!(
            mfs.conditions
                .keys()
                .any(|f| matches!(f, FabricFeature::Workload(_))),
            "{}",
            mfs.describe()
        );
    }

    #[test]
    fn paired_probe_breaks_reproduction_so_shape_can_be_necessary() {
        // The paired pattern isolates the storm; if both alternative shapes
        // fail to reproduce, the extractor keeps the shape condition.
        let point = cross_host_culprit();
        let outcome = extract_for(&point);
        let mut paired = point.clone();
        paired.pattern = collie_rnic::fabric::TrafficPattern::Paired;
        let mut engine = FabricEngine::for_catalog(SubsystemId::F);
        let monitor = AnomalyMonitor::new();
        let verdict = assess_fabric(&monitor, &engine.measure(&paired));
        assert!(!verdict.cross_host);
        // Whether or not the shape ends up in the conditions (ring and
        // incast both reproduce), the extracted MFS must reject the paired
        // variant if it lists the shape, and must still match the example.
        assert!(outcome.mfs.matches(&point));
    }
}
