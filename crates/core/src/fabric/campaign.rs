//! Counter-guided search over the fabric space.
//!
//! Runs the generic campaign kernel
//! ([`CampaignLoop`](crate::search::kernel::CampaignLoop)) over the
//! [`FabricDomain`]: the loop charges simulated hardware time per
//! experiment, follows the §6 four-sample measurement procedure through the
//! shared memo cache, skips points inside already-discovered fabric MFSes
//! (with the same `!is_empty()` guard as every domain, so one degenerate
//! extraction can never silence the rest of the run), extracts an MFS per
//! discovery, and is a pure function of its seed.
//!
//! Strategies: random sampling, Bayesian-optimisation surrogate search,
//! and simulated annealing over the victim gauges
//! ([`SignalMode::Diagnostic`] maximises the victim-port pause ratio,
//! [`SignalMode::Performance`] minimises the victim throughput fraction).
//! All three are the generic kernel drivers; the BO surrogate measures
//! distances in the 19-dim fabric encoding
//! ([`SearchDomain::surrogate_features`]), so a
//! [`SearchStrategy::Bayesian`] config runs a real BO cell, not a
//! relabelled random baseline.

use super::{FabricEngine, FabricEvaluator};
use crate::eval::{EvalProfile, EvalStats, SharedCache};
use crate::monitor::{AnomalyMonitor, FeatureCondition, Symptom};
use crate::search::domain::{CampaignReport, ExtractionCost, SearchDomain};
use crate::search::kernel::{run_annealing, run_bayesian, run_random, CampaignLoop};
use crate::search::{SearchConfig, SearchStrategy, SignalMode};
use crate::space::{FabricFeature, FabricPoint, FabricSpace, FeatureValue};
use collie_rnic::counters::fabric as fabric_gauges;
use collie_rnic::fabric::FabricMeasurement;
use collie_sim::series::TimeSeries;
use collie_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

use super::mfs::{FabricMfs, FabricSignature};

/// One anomaly discovered by a fabric campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricDiscovery {
    /// Simulated wall-clock at which the anomaly was confirmed.
    pub at: SimDuration,
    /// The fabric point that triggered it.
    pub point: FabricPoint,
    /// The observed symptom.
    pub symptom: Symptom,
    /// Whether the discovery carries the cross-host hallmark (victim
    /// collapsed while the culprit stayed healthy).
    pub cross_host: bool,
    /// The extracted fabric minimal feature set.
    pub mfs: FabricMfs,
    /// Ground-truth catalogue rules the culprit workload triggers (scoring
    /// only, never consulted by the search).
    pub matched_rules: Vec<String>,
}

/// The result of one fabric campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricOutcome {
    /// Human-readable label of the configuration.
    pub label: String,
    /// Every anomaly discovered, in discovery order.
    pub discoveries: Vec<FabricDiscovery>,
    /// Trace of the guiding victim gauge over the campaign, with anomaly
    /// markers (the fabric counterpart of the Figure-6 series).
    pub trace: TimeSeries,
    /// Experiments actually run (skipped points are free).
    pub experiments: u32,
    /// Points skipped by the fabric MFS filter.
    pub skipped_by_mfs: u32,
    /// Simulated wall-clock consumed.
    pub elapsed: SimDuration,
}

impl FabricOutcome {
    /// Assemble the public outcome from a finished kernel report (the
    /// fabric outcome does not report rule-hit scoring).
    fn from_report(label: String, report: CampaignReport<FabricDomain<'_, '_>>) -> Self {
        FabricOutcome {
            label,
            discoveries: report.discoveries,
            trace: report.trace,
            experiments: report.experiments,
            skipped_by_mfs: report.skipped_by_mfs,
            elapsed: report.elapsed,
        }
    }

    /// The discoveries carrying the cross-host hallmark.
    pub fn cross_host_discoveries(&self) -> Vec<&FabricDiscovery> {
        self.discoveries.iter().filter(|d| d.cross_host).collect()
    }

    /// The discoveries' culprit workloads as triggers for the remediation →
    /// verification pipeline (see [`crate::remedy::Qualifier`]). The
    /// fabric-side dimensions (host count, incast degree, pattern) are
    /// dropped: mitigations act on the two-host subsystem and the culprit's
    /// workload description, which is also what `matched_rules` scores.
    pub fn discovered_triggers(&self) -> Vec<crate::remedy::DiscoveredTrigger> {
        self.discoveries
            .iter()
            .map(|d| crate::remedy::DiscoveredTrigger {
                point: d.point.workload.clone(),
                symptom: d.symptom,
                matched_rules: d.matched_rules.clone(),
            })
            .collect()
    }

    /// Distinct catalogued anomalies matched by the discoveries' culprit
    /// workloads (scoring only).
    pub fn distinct_known_anomalies(&self) -> BTreeSet<String> {
        self.discoveries
            .iter()
            .flat_map(|d| d.matched_rules.iter().cloned())
            .collect()
    }
}

/// The fabric search domain: N homogeneous hosts around one lossless
/// switch, hunting cross-host PFC storms over the 18-coordinate fabric
/// space (the culprit's fifteen workload features plus host count, incast
/// degree, and traffic shape).
///
/// The [`SearchDomain`] binding differs from the two-host
/// [`WorkloadDomain`](crate::search::WorkloadDomain) in exactly the ways
/// the fabric setting demands: the anomaly identity is *(symptom,
/// cross-host hallmark)* — a victim-collapse anomaly surfacing inside the
/// region of a loud local storm is operationally a different finding and
/// must not be shadowed by it — the guiding signal is a fixed victim-gauge
/// formula (no rankable counter family, so the annealer runs un-targeted
/// schedules), and the extraction signature carries the cross-host flag
/// instead of a dominant counter.
pub struct FabricDomain<'a, 'e> {
    evaluator: &'a mut FabricEvaluator<'e>,
    monitor: &'a AnomalyMonitor,
    space: &'a FabricSpace,
    signal: SignalMode,
}

impl<'a, 'e> FabricDomain<'a, 'e> {
    /// Bind a fabric domain to an evaluator, monitor, space, and guiding
    /// signal mode.
    pub fn new(
        evaluator: &'a mut FabricEvaluator<'e>,
        monitor: &'a AnomalyMonitor,
        space: &'a FabricSpace,
        signal: SignalMode,
    ) -> Self {
        FabricDomain {
            evaluator,
            monitor,
            space,
            signal,
        }
    }
}

impl SearchDomain for FabricDomain<'_, '_> {
    type Point = FabricPoint;
    type Feature = FabricFeature;
    type Measurement = FabricMeasurement;
    type Identity = (Symptom, bool);
    type Mfs = FabricMfs;
    type Discovery = FabricDiscovery;
    type Signature = FabricSignature;

    fn random_point(&mut self, rng: &mut collie_sim::rng::SimRng) -> FabricPoint {
        self.space.random_point(rng)
    }

    fn mutate(&mut self, point: &FabricPoint, rng: &mut collie_sim::rng::SimRng) -> FabricPoint {
        self.space.mutate(point, rng)
    }

    fn features(&self) -> Vec<FabricFeature> {
        FabricFeature::all()
    }

    fn feature_value(&self, point: &FabricPoint, feature: FabricFeature) -> FeatureValue {
        point.feature_value(feature)
    }

    fn apply(&self, point: &mut FabricPoint, feature: FabricFeature, value: &FeatureValue) {
        point.apply(feature, value);
    }

    fn alternatives(&self, point: &FabricPoint, feature: FabricFeature) -> Vec<FeatureValue> {
        self.space.alternatives(point, feature)
    }

    fn experiment_cost(&self, point: &FabricPoint) -> SimDuration {
        FabricEngine::experiment_cost(point)
    }

    fn assess(&mut self, point: &FabricPoint) -> (FabricMeasurement, Option<(Symptom, bool)>) {
        let (measurement, verdict) = self.evaluator.measure_and_assess(self.monitor, point);
        let identity = verdict.symptom.map(|s| (s, verdict.cross_host));
        (measurement, identity)
    }

    fn symptom(identity: &(Symptom, bool)) -> Symptom {
        identity.0
    }

    fn ground_truth(&self, point: &FabricPoint) -> Vec<&'static str> {
        self.evaluator.ground_truth(point)
    }

    fn reports_rule_hits(&self) -> bool {
        // FabricOutcome carries no rule-hit log; skip the bookkeeping.
        false
    }

    fn eval_stats(&self) -> EvalStats {
        self.evaluator.stats()
    }

    fn speculation(
        &mut self,
        workers: usize,
    ) -> Option<crate::eval::SpeculationParts<FabricPoint, Self::Measurement>> {
        self.evaluator.speculation(workers)
    }

    fn judge(&self, measurement: &Self::Measurement) -> Option<Self::Identity> {
        let verdict = crate::fabric::assess_fabric(self.monitor, measurement);
        verdict.symptom.map(|symptom| (symptom, verdict.cross_host))
    }

    fn traced_counter(&self) -> &'static str {
        match self.signal {
            SignalMode::Diagnostic => fabric_gauges::VICTIM_PAUSE_RATIO,
            SignalMode::Performance => fabric_gauges::VICTIM_THROUGHPUT_FRAC,
        }
    }

    fn trace_value(&self, measurement: &FabricMeasurement) -> f64 {
        measurement
            .counters
            .value(self.traced_counter())
            .unwrap_or(0.0)
    }

    /// Diagnostic mode maximises the victim-port pause *weighted by the
    /// culprit's health*: a storm whose culprit still looks fine is the
    /// silent cross-host failure the fabric campaign exists to find (a
    /// collapsed culprit is already visible to the two-host search), so
    /// the annealer is steered toward pause that hides behind a healthy
    /// culprit. Performance mode minimises the victim throughput gauge.
    /// The fabric signal is a fixed formula, so `target` is ignored.
    fn signal_value(&self, measurement: &FabricMeasurement, _target: Option<&str>) -> f64 {
        match self.signal {
            SignalMode::Diagnostic => {
                measurement.victim_pause_ratio * measurement.culprit_throughput_frac
            }
            SignalMode::Performance => measurement.victim_throughput_frac,
        }
    }

    fn rankable_counters(&self) -> Vec<String> {
        // One fixed guiding formula: the annealing outer loop runs
        // un-targeted schedules and spends no ranking probes.
        Vec::new()
    }

    /// The 19-dim fabric surrogate vector: the culprit workload's 16-dim
    /// encoding (so a fabric BO walk inherits the two-host geometry over
    /// the embedded culprit pair) followed by the three fabric
    /// coordinates. The small host/incast ladders are log-scaled like the
    /// workload ladders; the traffic shape becomes its ladder index.
    fn surrogate_features(&self, point: &FabricPoint) -> Vec<f64> {
        let mut features = crate::search::WorkloadDomain::workload_surrogate(&point.workload);
        features.push((point.host_count as f64).log2());
        features.push((point.incast_degree as f64).log2());
        features.push(match point.pattern {
            collie_rnic::fabric::TrafficPattern::Incast => 0.0,
            collie_rnic::fabric::TrafficPattern::Ring => 1.0,
            collie_rnic::fabric::TrafficPattern::Paired => 2.0,
        });
        features
    }

    fn mfs_identity(mfs: &FabricMfs) -> (Symptom, bool) {
        (mfs.symptom, mfs.cross_host)
    }

    fn mfs_is_empty(mfs: &FabricMfs) -> bool {
        mfs.is_empty()
    }

    fn mfs_matches(mfs: &FabricMfs, point: &FabricPoint) -> bool {
        mfs.matches(point)
    }

    fn begin_extraction(
        &mut self,
        _anomalous: &FabricPoint,
        identity: &(Symptom, bool),
        _cost: &mut ExtractionCost,
    ) -> FabricSignature {
        // The fabric signature is the identity itself — no reference
        // experiment is charged.
        FabricSignature {
            symptom: identity.0,
            cross_host: identity.1,
        }
    }

    fn reproduces(&mut self, probe: &FabricPoint, signature: &FabricSignature) -> bool {
        let (_, verdict) = self.evaluator.measure_and_assess(self.monitor, probe);
        signature.matches(&verdict)
    }

    fn make_mfs(
        &self,
        identity: &(Symptom, bool),
        conditions: BTreeMap<FabricFeature, FeatureCondition>,
        example: FabricPoint,
    ) -> FabricMfs {
        FabricMfs {
            symptom: identity.0,
            cross_host: identity.1,
            conditions,
            example,
        }
    }

    fn make_discovery(
        &self,
        at: SimDuration,
        point: FabricPoint,
        identity: (Symptom, bool),
        mfs: FabricMfs,
        matched_rules: Vec<String>,
    ) -> FabricDiscovery {
        FabricDiscovery {
            at,
            point,
            symptom: identity.0,
            cross_host: identity.1,
            mfs,
            matched_rules,
        }
    }
}

/// Run one fabric campaign.
pub fn run_fabric_search(
    engine: &mut FabricEngine,
    space: &FabricSpace,
    config: &SearchConfig,
) -> FabricOutcome {
    run_fabric_search_with_stats(engine, space, config).0
}

/// Run one fabric campaign and also report the evaluation-cache statistics
/// (the outcome itself is independent of the cache).
pub fn run_fabric_search_with_stats(
    engine: &mut FabricEngine,
    space: &FabricSpace,
    config: &SearchConfig,
) -> (FabricOutcome, EvalStats) {
    let (outcome, profile) = run_fabric_search_in_context(engine, space, config, None);
    (outcome, profile.stats)
}

/// Run one fabric campaign with an optional matrix-scoped [`SharedCache`]
/// attached (see [`crate::eval::EvalContext`]): the fabric counterpart of
/// [`run_search_in_context`](crate::search::run_search_in_context), with
/// the same bit-identity contract — commits go through the evaluator's
/// local cache, so the outcome and stats are independent of `shared`.
pub fn run_fabric_search_in_context(
    engine: &mut FabricEngine,
    space: &FabricSpace,
    config: &SearchConfig,
    shared: Option<std::sync::Arc<SharedCache<FabricPoint, FabricMeasurement>>>,
) -> (FabricOutcome, EvalProfile) {
    // The two-host legacy-compat knobs never describe a fabric behaviour:
    // the fabric stack always had identity-keyed dedup and a stuck-walk
    // escape (that is what the fig7 golden fixtures pin). Enforce both so
    // a config built with `with_legacy_two_host_semantics()` for the
    // two-host compat grids cannot silently select a fabric mode that
    // never existed. An explicit non-default escape threshold is honoured.
    let config = &SearchConfig {
        identity_dedup: true,
        stuck_skip_limit: config.stuck_skip_limit.or(Some(24)),
        ..config.clone()
    };
    let monitor = AnomalyMonitor::new();
    engine.set_incremental(config.incremental);
    let mut evaluator = if config.memoize {
        FabricEvaluator::new(engine)
    } else {
        FabricEvaluator::uncached(engine)
    };
    if let Some(shared) = shared {
        evaluator.attach_shared(shared);
    }
    let outcome = {
        let domain = FabricDomain::new(&mut evaluator, &monitor, space, config.signal);
        let mut campaign = CampaignLoop::new(domain, config);
        if let Some(lookahead) = config.speculation {
            campaign.enable_speculation(lookahead);
        }
        // One arm per strategy, each dispatching to the generic kernel driver
        // of the same name: the outcome's label (derived from the strategy by
        // `SearchConfig::label`) always names the driver that actually ran.
        // (A Bayesian config used to be silently normalised to the random
        // baseline while its report still said "BO" — the fabric surrogate
        // encoding removed the need for that mapping.)
        match config.strategy {
            SearchStrategy::SimulatedAnnealing => run_annealing(&mut campaign),
            SearchStrategy::Random => run_random(&mut campaign),
            SearchStrategy::Bayesian => run_bayesian(&mut campaign),
        }
        FabricOutcome::from_report(format!("{} fabric", config.label()), campaign.finish())
    };
    let profile = evaluator.profile();
    (outcome, profile)
}

#[cfg(test)]
mod tests {
    use super::super::tests::{cross_host_culprit, storming_culprit};
    use super::*;
    use crate::space::SearchPoint;
    use collie_rnic::subsystems::SubsystemId;
    use collie_sim::rng::SimRng;

    fn setup() -> (FabricEngine, FabricSpace, AnomalyMonitor, SearchConfig) {
        (
            FabricEngine::for_catalog(SubsystemId::F),
            FabricSpace::for_host(&SubsystemId::F.host()),
            AnomalyMonitor::new(),
            SearchConfig::collie(3).with_budget(SimDuration::from_secs(7200)),
        )
    }

    /// Build a campaign loop over a freshly bound fabric domain.
    macro_rules! campaign {
        ($engine:expr, $evaluator:ident, $space:expr, $monitor:expr, $config:expr) => {{
            $evaluator = FabricEvaluator::new($engine);
            CampaignLoop::new(
                FabricDomain::new(&mut $evaluator, $monitor, $space, $config.signal),
                $config,
            )
        }};
    }

    #[test]
    fn measuring_an_anomalous_fabric_point_records_a_discovery_with_mfs() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        let point = cross_host_culprit();
        campaign.measure(&point).unwrap();
        let outcome = FabricOutcome::from_report("test".to_string(), campaign.finish());
        assert_eq!(outcome.discoveries.len(), 1);
        let d = &outcome.discoveries[0];
        assert!(d.cross_host);
        assert!(d.mfs.matches(&point));
        assert!(
            outcome.experiments > 1,
            "MFS extraction charges experiments"
        );
        assert!(!outcome.trace.anomaly_samples().is_empty());
    }

    #[test]
    fn repeated_sightings_of_the_same_fabric_anomaly_count_once() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        let point = cross_host_culprit();
        campaign.measure(&point).unwrap();
        // A harsher variant inside the same MFS (wider fabric).
        let mut harsher = point.clone();
        harsher.host_count = 8;
        harsher.incast_degree = 6;
        if campaign.matches_known_mfs(&harsher) {
            campaign.measure(&harsher).unwrap();
            let outcome = FabricOutcome::from_report("test".to_string(), campaign.finish());
            assert_eq!(outcome.discoveries.len(), 1);
            assert_eq!(outcome.skipped_by_mfs, 1);
        }
    }

    #[test]
    fn an_empty_fabric_mfs_does_not_suppress_later_discoveries() {
        // The PR 2 regression, pinned on the fabric path: an extraction
        // that ends with no conditions matches the whole space vacuously
        // and must be excluded from both the skip and the dedup.
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        campaign.plant_mfs(FabricMfs {
            symptom: Symptom::PauseStorm,
            cross_host: true,
            conditions: BTreeMap::new(),
            example: FabricPoint::benign(),
        });
        let point = cross_host_culprit();
        assert!(!campaign.matches_known_mfs(&point));
        campaign.measure(&point).unwrap();
        let outcome = FabricOutcome::from_report("test".to_string(), campaign.finish());
        assert_eq!(
            outcome.discoveries.len(),
            1,
            "an empty fabric MFS must not mark new anomalies redundant"
        );
        assert_eq!(outcome.skipped_by_mfs, 0);
    }

    #[test]
    fn budget_is_enforced() {
        let (mut engine, space, monitor, _) = setup();
        let config = SearchConfig::collie(3).with_budget(SimDuration::from_secs(45));
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        let p = FabricPoint::two_host(SearchPoint::benign());
        assert!(campaign.measure(&p).is_some());
        campaign.measure(&p);
        assert!(campaign.measure(&p).is_none() || campaign.out_of_budget());
    }

    #[test]
    fn fabric_campaigns_find_cross_host_anomalies() {
        // Cross-host (victim-collapse) points cover roughly 1 % of the
        // fabric space, so which campaigns land on one depends on the
        // seeded walk; seed 5 does within 4 simulated hours and the engine
        // is deterministic, so this pins the capability end to end.
        let (mut engine, space, _, _) = setup();
        let config = SearchConfig::collie(5).with_budget(SimDuration::from_secs(4 * 3600));
        let outcome = run_fabric_search(&mut engine, &space, &config);
        assert!(!outcome.discoveries.is_empty());
        assert!(
            !outcome.cross_host_discoveries().is_empty(),
            "4 simulated hours of annealing (seed 5) should surface a victim-collapse \
             anomaly ({} discoveries, none cross-host)",
            outcome.discoveries.len()
        );
        for d in outcome.cross_host_discoveries() {
            assert_eq!(d.symptom, Symptom::PauseStorm);
            assert!(d.point.shape().normalized().host_count >= 3);
        }
    }

    #[test]
    fn fabric_strategy_labels_match_the_driver_that_ran() {
        // Regression for the BO mislabeling: `SearchStrategy::Bayesian`
        // used to be normalised to the random loop while the outcome (and
        // every EXPERIMENTS row derived from it) still said "BO". The
        // dispatch is now one arm per strategy, so each label must name a
        // driver that produced a distinct campaign: same seed and budget,
        // three strategies, three different RNG streams.
        let space = FabricSpace::for_host(&SubsystemId::F.host());
        let budget = SimDuration::from_secs(2 * 3600);
        let configs = [
            ("Random fabric", SearchConfig::random(5)),
            ("BO(Diag) fabric", SearchConfig::bayesian(5)),
            ("Collie(Diag) fabric", SearchConfig::collie(5)),
        ];
        let mut fingerprints = Vec::new();
        for (expected_label, config) in configs {
            let mut engine = FabricEngine::for_catalog(SubsystemId::F);
            let outcome = run_fabric_search(&mut engine, &space, &config.with_budget(budget));
            assert_eq!(outcome.label, expected_label);
            assert!(outcome.experiments > 10, "{expected_label}");
            fingerprints.push((
                outcome.experiments,
                outcome.elapsed,
                outcome.trace.samples().len(),
            ));
        }
        // In particular the BO cell is not the random baseline relabelled.
        assert_ne!(fingerprints[0], fingerprints[1], "BO == Random stream");
        assert_ne!(fingerprints[1], fingerprints[2], "BO == Collie stream");
        assert_ne!(fingerprints[0], fingerprints[2], "Random == Collie stream");
    }

    #[test]
    fn random_fabric_baseline_also_runs() {
        let (mut engine, space, _, _) = setup();
        let config = SearchConfig::random(5).with_budget(SimDuration::from_secs(3600));
        let outcome = run_fabric_search(&mut engine, &space, &config);
        assert!(outcome.experiments > 10);
        assert_eq!(outcome.label, "Random fabric");
    }

    #[test]
    fn fabric_campaigns_are_deterministic_per_seed() {
        let space = FabricSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig::collie(42).with_budget(SimDuration::from_secs(1800));
        let mut a_engine = FabricEngine::for_catalog(SubsystemId::F);
        let a = run_fabric_search(&mut a_engine, &space, &config);
        let mut b_engine = FabricEngine::for_catalog(SubsystemId::F);
        let b = run_fabric_search(&mut b_engine, &space, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn legacy_two_host_knobs_cannot_select_a_nonexistent_fabric_mode() {
        // `with_legacy_two_host_semantics()` exists solely for the
        // two-host golden compat grids; the fabric stack always had
        // identity-keyed dedup and the stuck-walk escape, so the runner
        // normalises the knobs away and the campaign is bit-identical to
        // the default configuration.
        let space = FabricSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig::collie(42).with_budget(SimDuration::from_secs(1800));
        let mut a_engine = FabricEngine::for_catalog(SubsystemId::F);
        let a = run_fabric_search(&mut a_engine, &space, &config);
        let mut b_engine = FabricEngine::for_catalog(SubsystemId::F);
        let b = run_fabric_search(
            &mut b_engine,
            &space,
            &config.clone().with_legacy_two_host_semantics(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn local_storm_discoveries_are_not_labelled_cross_host() {
        let (mut engine, space, monitor, config) = setup();
        let mut evaluator;
        let mut campaign = campaign!(&mut engine, evaluator, &space, &monitor, &config);
        campaign.measure(&storming_culprit()).unwrap();
        let outcome = FabricOutcome::from_report("test".to_string(), campaign.finish());
        assert_eq!(outcome.discoveries.len(), 1);
        assert!(!outcome.discoveries[0].cross_host);
    }

    #[test]
    fn a_two_host_mutation_walk_explores_the_fabric_dims() {
        // Domain sanity: the kernel's mutate delegates to the fabric
        // space, so a walk reaches all 18 coordinates.
        let (_, space, _, _) = setup();
        let mut rng = SimRng::new(9);
        let base = space.random_point(&mut rng);
        let mut shapes = std::collections::HashSet::new();
        for _ in 0..300 {
            shapes.insert(space.mutate(&base, &mut rng).shape());
        }
        assert!(shapes.len() > 3, "fabric dims should be reachable");
    }
}
