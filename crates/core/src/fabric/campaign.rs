//! Counter-guided search over the fabric space.
//!
//! Mirrors the two-host campaign ([`crate::search`]) layer for layer: the
//! campaign charges simulated hardware time per experiment, follows the §6
//! four-sample measurement procedure through the shared memo cache, skips
//! points inside already-discovered fabric MFSes (with the same
//! `!is_empty()` guard the two-host campaign applies, so one degenerate
//! extraction can never silence the rest of the run), extracts an MFS per
//! discovery, and is a pure function of its seed.
//!
//! Strategies: random sampling and simulated annealing over the victim
//! gauges ([`SignalMode::Diagnostic`] maximises the victim-port pause
//! ratio, [`SignalMode::Performance`] minimises the victim throughput
//! fraction). The Bayesian baseline is not ported to the fabric space —
//! a [`SearchStrategy::Bayesian`] config runs the random baseline.

use super::{FabricEngine, FabricEvaluator, FabricMfsExtractor};
use crate::eval::EvalStats;
use crate::monitor::{AnomalyMonitor, Symptom};
use crate::search::{SearchConfig, SearchStrategy, SignalMode};
use crate::space::{FabricPoint, FabricSpace};
use collie_rnic::counters::fabric as fabric_gauges;
use collie_rnic::fabric::FabricMeasurement;
use collie_sim::rng::SimRng;
use collie_sim::series::TimeSeries;
use collie_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use super::mfs::FabricMfs;

/// One anomaly discovered by a fabric campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricDiscovery {
    /// Simulated wall-clock at which the anomaly was confirmed.
    pub at: SimDuration,
    /// The fabric point that triggered it.
    pub point: FabricPoint,
    /// The observed symptom.
    pub symptom: Symptom,
    /// Whether the discovery carries the cross-host hallmark (victim
    /// collapsed while the culprit stayed healthy).
    pub cross_host: bool,
    /// The extracted fabric minimal feature set.
    pub mfs: FabricMfs,
    /// Ground-truth catalogue rules the culprit workload triggers (scoring
    /// only, never consulted by the search).
    pub matched_rules: Vec<String>,
}

/// The result of one fabric campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricOutcome {
    /// Human-readable label of the configuration.
    pub label: String,
    /// Every anomaly discovered, in discovery order.
    pub discoveries: Vec<FabricDiscovery>,
    /// Trace of the guiding victim gauge over the campaign, with anomaly
    /// markers (the fabric counterpart of the Figure-6 series).
    pub trace: TimeSeries,
    /// Experiments actually run (skipped points are free).
    pub experiments: u32,
    /// Points skipped by the fabric MFS filter.
    pub skipped_by_mfs: u32,
    /// Simulated wall-clock consumed.
    pub elapsed: SimDuration,
}

impl FabricOutcome {
    /// The discoveries carrying the cross-host hallmark.
    pub fn cross_host_discoveries(&self) -> Vec<&FabricDiscovery> {
        self.discoveries.iter().filter(|d| d.cross_host).collect()
    }

    /// Distinct catalogued anomalies matched by the discoveries' culprit
    /// workloads (scoring only).
    pub fn distinct_known_anomalies(&self) -> BTreeSet<String> {
        self.discoveries
            .iter()
            .flat_map(|d| d.matched_rules.iter().cloned())
            .collect()
    }
}

/// Mutable state shared by the fabric strategies.
struct FabricCampaign<'a> {
    evaluator: FabricEvaluator<'a>,
    space: &'a FabricSpace,
    monitor: &'a AnomalyMonitor,
    config: &'a SearchConfig,
    rng: SimRng,
    elapsed: SimDuration,
    experiments: u32,
    skipped: u32,
    discoveries: Vec<FabricDiscovery>,
    mfs_set: Vec<FabricMfs>,
    trace: TimeSeries,
}

impl<'a> FabricCampaign<'a> {
    fn new(
        engine: &'a mut FabricEngine,
        space: &'a FabricSpace,
        monitor: &'a AnomalyMonitor,
        config: &'a SearchConfig,
    ) -> Self {
        let evaluator = if config.memoize {
            FabricEvaluator::new(engine)
        } else {
            FabricEvaluator::uncached(engine)
        };
        let traced = match config.signal {
            SignalMode::Diagnostic => fabric_gauges::VICTIM_PAUSE_RATIO,
            SignalMode::Performance => fabric_gauges::VICTIM_THROUGHPUT_FRAC,
        };
        FabricCampaign {
            evaluator,
            space,
            monitor,
            config,
            rng: SimRng::new(config.seed),
            elapsed: SimDuration::ZERO,
            experiments: 0,
            skipped: 0,
            discoveries: Vec::new(),
            mfs_set: Vec::new(),
            trace: TimeSeries::new(traced),
        }
    }

    fn out_of_budget(&self) -> bool {
        self.elapsed >= self.config.budget
    }

    /// Algorithm 1 line 5 on the fabric space; empty MFSes never
    /// participate (they would match the entire space).
    fn matches_known_mfs(&mut self, point: &FabricPoint) -> bool {
        if !self.config.use_mfs {
            return false;
        }
        let matched = self
            .mfs_set
            .iter()
            .any(|m| !m.is_empty() && m.matches(point));
        if matched {
            self.skipped += 1;
        }
        matched
    }

    /// Run one fabric experiment, charge its cost, record the trace, and —
    /// if anomalous — extract the fabric MFS and log the discovery.
    fn measure(&mut self, point: &FabricPoint) -> Option<FabricMeasurement> {
        if self.out_of_budget() {
            return None;
        }
        self.elapsed += FabricEngine::experiment_cost(point);
        self.experiments += 1;
        let (measurement, verdict) = self.evaluator.measure_and_assess(self.monitor, point);

        let trace_value = measurement.counters.value(self.trace.name()).unwrap_or(0.0);
        let now = SimTime::ZERO + self.elapsed;
        if let Some(symptom) = verdict.symptom {
            self.trace.record_anomaly(now, trace_value);
            self.handle_anomaly(point, symptom, verdict.cross_host);
        } else {
            self.trace.record(now, trace_value);
        }
        Some(measurement)
    }

    fn handle_anomaly(&mut self, point: &FabricPoint, symptom: Symptom, cross_host: bool) {
        // Redundant sighting of a known fabric anomaly? Only an MFS with
        // the *same observable identity* (symptom + cross-host hallmark)
        // dedups: a victim-collapse anomaly surfacing inside the region of
        // a loud local storm is operationally a different finding and must
        // not be shadowed by it. Empty MFSes match vacuously and are
        // excluded, exactly as in the two-host campaign.
        if self.mfs_set.iter().any(|m| {
            !m.is_empty() && m.symptom == symptom && m.cross_host == cross_host && m.matches(point)
        }) {
            return;
        }
        let found_at = self.elapsed;
        let outcome = {
            let mut extractor =
                FabricMfsExtractor::new(&mut self.evaluator, self.monitor, self.space);
            extractor.extract(point, symptom, cross_host)
        };
        self.elapsed += outcome.elapsed;
        self.experiments += outcome.experiments;
        let trace_value = self.trace.samples().last().map(|s| s.value).unwrap_or(0.0);
        self.trace.record(SimTime::ZERO + self.elapsed, trace_value);

        let matched_rules = self
            .evaluator
            .ground_truth(point)
            .into_iter()
            .map(|r| r.to_string())
            .collect();
        self.mfs_set.push(outcome.mfs.clone());
        self.discoveries.push(FabricDiscovery {
            at: found_at,
            point: point.clone(),
            symptom,
            cross_host,
            mfs: outcome.mfs,
            matched_rules,
        });
    }

    /// The guiding-gauge value of a measurement under the configured
    /// signal mode.
    ///
    /// Diagnostic mode maximises the victim-port pause *weighted by the
    /// culprit's health*: a storm whose culprit still looks fine is the
    /// silent cross-host failure the fabric campaign exists to find (a
    /// collapsed culprit is already visible to the two-host search), so
    /// the annealer is steered toward pause that hides behind a healthy
    /// culprit. Performance mode minimises the victim throughput gauge.
    fn signal_value(&self, measurement: &FabricMeasurement) -> f64 {
        match self.config.signal {
            SignalMode::Diagnostic => {
                measurement.victim_pause_ratio * measurement.culprit_throughput_frac
            }
            SignalMode::Performance => measurement.victim_throughput_frac,
        }
    }

    /// Algorithm 1's energy delta (negative = better: higher victim pause
    /// in diagnostic mode, lower victim throughput in performance mode).
    fn energy_delta(&self, old: f64, new: f64) -> f64 {
        let eps = 1e-9;
        match self.config.signal {
            SignalMode::Performance => (new - old) / old.abs().max(eps),
            SignalMode::Diagnostic => (old - new) / new.abs().max(eps),
        }
    }

    fn finish(self, label: String) -> (FabricOutcome, EvalStats) {
        let stats = self.evaluator.stats();
        (
            FabricOutcome {
                label,
                discoveries: self.discoveries,
                trace: self.trace,
                experiments: self.experiments,
                skipped_by_mfs: self.skipped,
                elapsed: self.elapsed,
            },
            stats,
        )
    }
}

/// How many redundant (MFS-covered) samples the random baseline may reject
/// in a row before testing the next sample anyway.
const MAX_CONSECUTIVE_SKIPS: u32 = 256;

fn run_random(campaign: &mut FabricCampaign<'_>) {
    let mut consecutive_skips = 0u32;
    while !campaign.out_of_budget() {
        let point = campaign.space.random_point(&mut campaign.rng);
        if consecutive_skips < MAX_CONSECUTIVE_SKIPS && campaign.matches_known_mfs(&point) {
            consecutive_skips += 1;
            continue;
        }
        consecutive_skips = 0;
        if campaign.measure(&point).is_none() {
            break;
        }
    }
}

/// Bounded re-draws applied to the post-discovery restart.
const MAX_RESTART_REDRAWS: usize = 8;

fn draw_restart_point(campaign: &mut FabricCampaign<'_>) -> FabricPoint {
    let mut point = campaign.space.random_point(&mut campaign.rng);
    for _ in 0..MAX_RESTART_REDRAWS {
        if !campaign.matches_known_mfs(&point) {
            return point;
        }
        point = campaign.space.random_point(&mut campaign.rng);
    }
    point
}

fn run_annealing(campaign: &mut FabricCampaign<'_>) {
    while !campaign.out_of_budget() {
        anneal_schedule(campaign);
    }
}

/// Consecutive MFS-skipped proposals after which the walk abandons its
/// neighbourhood. A walk sitting next to a discovered MFS region keeps
/// proposing points inside it; the skips are free, but the walk makes no
/// progress — after this many in a row it restarts from a fresh point.
const MAX_STUCK_SKIPS: u32 = 24;

fn anneal_schedule(campaign: &mut FabricCampaign<'_>) {
    let config = campaign.config.clone();
    let mut current = campaign.space.random_point(&mut campaign.rng);
    let Some(measurement) = campaign.measure(&current) else {
        return;
    };
    let mut current_value = campaign.signal_value(&measurement);

    let mut temperature = config.initial_temperature;
    let mut stuck_skips = 0u32;
    while temperature > config.min_temperature {
        for _ in 0..config.iterations_per_temperature {
            if campaign.out_of_budget() {
                return;
            }
            let candidate = campaign.space.mutate(&current, &mut campaign.rng);
            if campaign.matches_known_mfs(&candidate) {
                stuck_skips += 1;
                if stuck_skips >= MAX_STUCK_SKIPS {
                    stuck_skips = 0;
                    current = draw_restart_point(campaign);
                    if let Some(m) = campaign.measure(&current) {
                        current_value = campaign.signal_value(&m);
                    }
                }
                continue;
            }
            stuck_skips = 0;
            let discoveries_before = campaign.discoveries.len();
            let Some(measurement) = campaign.measure(&candidate) else {
                return;
            };
            let candidate_value = campaign.signal_value(&measurement);

            // A new anomaly restarts the walk from a fresh random point.
            if campaign.discoveries.len() > discoveries_before {
                current = draw_restart_point(campaign);
                if let Some(m) = campaign.measure(&current) {
                    current_value = campaign.signal_value(&m);
                }
                continue;
            }

            let delta = campaign.energy_delta(current_value, candidate_value);
            let accept = if delta < 0.0 {
                true
            } else {
                let probability = (-delta / temperature.max(1e-6)).exp();
                campaign.rng.gen_f64() < probability
            };
            if accept {
                current = candidate;
                current_value = candidate_value;
            }
        }
        temperature *= config.alpha;
    }
}

/// Run one fabric campaign.
pub fn run_fabric_search(
    engine: &mut FabricEngine,
    space: &FabricSpace,
    config: &SearchConfig,
) -> FabricOutcome {
    run_fabric_search_with_stats(engine, space, config).0
}

/// Run one fabric campaign and also report the evaluation-cache statistics
/// (the outcome itself is independent of the cache).
pub fn run_fabric_search_with_stats(
    engine: &mut FabricEngine,
    space: &FabricSpace,
    config: &SearchConfig,
) -> (FabricOutcome, EvalStats) {
    let monitor = AnomalyMonitor::new();
    let mut campaign = FabricCampaign::new(engine, space, &monitor, config);
    match config.strategy {
        SearchStrategy::SimulatedAnnealing => run_annealing(&mut campaign),
        // The BO surrogate is not ported to the fabric space; its cells run
        // the random baseline so grids stay rectangular.
        SearchStrategy::Random | SearchStrategy::Bayesian => run_random(&mut campaign),
    }
    campaign.finish(format!("{} fabric", config.label()))
}

#[cfg(test)]
mod tests {
    use super::super::tests::{cross_host_culprit, storming_culprit};
    use super::*;
    use crate::space::SearchPoint;
    use collie_rnic::subsystems::SubsystemId;
    use std::collections::BTreeMap;

    fn setup() -> (FabricEngine, FabricSpace, AnomalyMonitor, SearchConfig) {
        (
            FabricEngine::for_catalog(SubsystemId::F),
            FabricSpace::for_host(&SubsystemId::F.host()),
            AnomalyMonitor::new(),
            SearchConfig::collie(3).with_budget(SimDuration::from_secs(7200)),
        )
    }

    #[test]
    fn measuring_an_anomalous_fabric_point_records_a_discovery_with_mfs() {
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = FabricCampaign::new(&mut engine, &space, &monitor, &config);
        let point = cross_host_culprit();
        campaign.measure(&point).unwrap();
        let (outcome, _) = campaign.finish("test".to_string());
        assert_eq!(outcome.discoveries.len(), 1);
        let d = &outcome.discoveries[0];
        assert!(d.cross_host);
        assert!(d.mfs.matches(&point));
        assert!(
            outcome.experiments > 1,
            "MFS extraction charges experiments"
        );
        assert!(!outcome.trace.anomaly_samples().is_empty());
    }

    #[test]
    fn repeated_sightings_of_the_same_fabric_anomaly_count_once() {
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = FabricCampaign::new(&mut engine, &space, &monitor, &config);
        let point = cross_host_culprit();
        campaign.measure(&point).unwrap();
        // A harsher variant inside the same MFS (wider fabric).
        let mut harsher = point.clone();
        harsher.host_count = 8;
        harsher.incast_degree = 6;
        if campaign.matches_known_mfs(&harsher) {
            campaign.measure(&harsher).unwrap();
            let (outcome, _) = campaign.finish("test".to_string());
            assert_eq!(outcome.discoveries.len(), 1);
            assert_eq!(outcome.skipped_by_mfs, 1);
        }
    }

    #[test]
    fn an_empty_fabric_mfs_does_not_suppress_later_discoveries() {
        // The PR 2 regression, pinned on the fabric path: an extraction
        // that ends with no conditions matches the whole space vacuously
        // and must be excluded from both the skip and the dedup.
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = FabricCampaign::new(&mut engine, &space, &monitor, &config);
        campaign.mfs_set.push(FabricMfs {
            symptom: Symptom::PauseStorm,
            cross_host: true,
            conditions: BTreeMap::new(),
            example: FabricPoint::benign(),
        });
        let point = cross_host_culprit();
        assert!(!campaign.matches_known_mfs(&point));
        campaign.measure(&point).unwrap();
        let (outcome, _) = campaign.finish("test".to_string());
        assert_eq!(
            outcome.discoveries.len(),
            1,
            "an empty fabric MFS must not mark new anomalies redundant"
        );
        assert_eq!(outcome.skipped_by_mfs, 0);
    }

    #[test]
    fn budget_is_enforced() {
        let (mut engine, space, monitor, _) = setup();
        let config = SearchConfig::collie(3).with_budget(SimDuration::from_secs(45));
        let mut campaign = FabricCampaign::new(&mut engine, &space, &monitor, &config);
        let p = FabricPoint::two_host(SearchPoint::benign());
        assert!(campaign.measure(&p).is_some());
        campaign.measure(&p);
        assert!(campaign.measure(&p).is_none() || campaign.out_of_budget());
    }

    #[test]
    fn fabric_campaigns_find_cross_host_anomalies() {
        // Cross-host (victim-collapse) points cover roughly 1 % of the
        // fabric space, so which campaigns land on one depends on the
        // seeded walk; seed 5 does within 4 simulated hours and the engine
        // is deterministic, so this pins the capability end to end.
        let (mut engine, space, _, _) = setup();
        let config = SearchConfig::collie(5).with_budget(SimDuration::from_secs(4 * 3600));
        let outcome = run_fabric_search(&mut engine, &space, &config);
        assert!(!outcome.discoveries.is_empty());
        assert!(
            !outcome.cross_host_discoveries().is_empty(),
            "4 simulated hours of annealing (seed 5) should surface a victim-collapse \
             anomaly ({} discoveries, none cross-host)",
            outcome.discoveries.len()
        );
        for d in outcome.cross_host_discoveries() {
            assert_eq!(d.symptom, Symptom::PauseStorm);
            assert!(d.point.shape().normalized().host_count >= 3);
        }
    }

    #[test]
    fn random_fabric_baseline_also_runs() {
        let (mut engine, space, _, _) = setup();
        let config = SearchConfig::random(5).with_budget(SimDuration::from_secs(3600));
        let outcome = run_fabric_search(&mut engine, &space, &config);
        assert!(outcome.experiments > 10);
        assert_eq!(outcome.label, "Random fabric");
    }

    #[test]
    fn fabric_campaigns_are_deterministic_per_seed() {
        let space = FabricSpace::for_host(&SubsystemId::F.host());
        let config = SearchConfig::collie(42).with_budget(SimDuration::from_secs(1800));
        let mut a_engine = FabricEngine::for_catalog(SubsystemId::F);
        let a = run_fabric_search(&mut a_engine, &space, &config);
        let mut b_engine = FabricEngine::for_catalog(SubsystemId::F);
        let b = run_fabric_search(&mut b_engine, &space, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn local_storm_discoveries_are_not_labelled_cross_host() {
        let (mut engine, space, monitor, config) = setup();
        let mut campaign = FabricCampaign::new(&mut engine, &space, &monitor, &config);
        campaign.measure(&storming_culprit()).unwrap();
        let (outcome, _) = campaign.finish("test".to_string());
        assert_eq!(outcome.discoveries.len(), 1);
        assert!(!outcome.discoveries[0].cross_host);
    }
}
