//! Memoized experiment evaluation.
//!
//! Every layer of the search re-measures workloads it has already seen: the
//! annealing walk re-proposes recently rejected points, the MFS extractor
//! re-measures the anomalous point it was handed and probes overlapping
//! neighbourhoods across extractions, and the monitor's §6 procedure samples
//! the same experiment four times per iteration. On real hardware those
//! repeats are unavoidable (and the campaign's *simulated* cost accounting
//! keeps charging them — each repeat still costs 20–60 simulated seconds, so
//! Figures 4–6 are unchanged); in the simulator they are pure recompute.
//!
//! [`Evaluator`] wraps [`WorkloadEngine::measure`] with a memo cache keyed
//! by the canonical [`SearchPoint`]. This is sound because the engine is
//! deterministic: [`Subsystem::evaluate`](collie_rnic::subsystem::Subsystem)
//! resets all counter and switch state on entry, so a measurement is a pure
//! function of the point (see the determinism test below and the contract
//! note on [`WorkloadEngine::measure`]). Campaigns route every experiment —
//! search, counter ranking, and MFS probing — through one shared evaluator,
//! so an extraction's probes warm the cache for the next one.

use crate::engine::WorkloadEngine;
use crate::monitor::{AnomalyMonitor, AnomalyVerdict};
use crate::space::{FabricPoint, SearchPoint};
use collie_rnic::fabric::FabricMeasurement;
use collie_rnic::subsystem::{IncrementalUse, Measurement, Subsystem};
use collie_rnic::subsystems::SubsystemId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
// collie-lint: allow(wall-clock, reason = "EvalProfile records real compute latency; it never feeds a campaign decision")
use std::time::Instant;

/// Cache effectiveness counters of one [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Measurements answered from the memo cache.
    pub hits: u64,
    /// Measurements that ran the flow model (and filled the cache).
    pub misses: u64,
}

impl EvalStats {
    /// Fraction of measurements answered from the cache (0 when nothing was
    /// measured).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARD_COUNT: usize = 16;

/// One entry of a [`SharedCache`] shard.
enum Slot<M> {
    /// Claimed: some thread is computing this point right now.
    Pending,
    /// Computed and published.
    Ready(Arc<M>),
}

/// Outcome of [`SharedCache::try_claim`].
pub enum Claim<M> {
    /// The caller owns the computation and **must** call
    /// [`SharedCache::fulfill`] for this point.
    Mine,
    /// Another thread is already computing this point.
    InFlight,
    /// The measurement is already published.
    Ready(Arc<M>),
}

struct Shard<P, M> {
    slots: parking_lot::Mutex<HashMap<P, Slot<M>>>,
    /// Signalled whenever a pending slot of this shard becomes ready.
    ready: Condvar,
}

/// A sharded concurrent memo cache shared between a committing evaluator
/// and its speculation workers — and, since the matrix-scoped refactor,
/// between every cell of a campaign matrix (see [`EvalContext`]).
///
/// Each point is computed exactly once no matter how many threads ask for
/// it: the first asker installs a pending claim, everyone else
/// either blocks on the shard's condvar ([`SharedCache::get_or_compute`])
/// or backs off ([`SharedCache::try_claim`]) until the claimant publishes
/// via [`SharedCache::fulfill`]. The stats invariant — `T` calls to
/// `get_or_compute` over `D` distinct keys give exactly `computed == D`
/// and `served == T − D` — is what the concurrency tests pin; a *bounded*
/// cache ([`SharedCache::bounded`]) relaxes only the `computed` half: an
/// evicted key recomputes on its next ask, so `computed` counts engine
/// runs exactly and `evicted` counts FIFO removals exactly.
pub struct SharedCache<P, M> {
    shards: Vec<Shard<P, M>>,
    /// `Some(n)`: hold at most `n` published measurements, evicting the
    /// oldest publication first. `None`: unbounded (the per-campaign
    /// speculation tier, whose lifetime already bounds it).
    capacity: Option<usize>,
    /// Publication order, oldest first — touched only on
    /// [`SharedCache::fulfill`], so the hot read path stays sharded. Never
    /// locked while a shard lock is held (and vice versa), so the two lock
    /// families cannot deadlock.
    order: parking_lot::Mutex<VecDeque<P>>,
    computed: AtomicU64,
    served: AtomicU64,
    evicted: AtomicU64,
}

impl<P: Clone + Eq + Hash, M> SharedCache<P, M> {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        SharedCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Shard {
                    slots: parking_lot::Mutex::new(HashMap::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            capacity: None,
            order: parking_lot::Mutex::new(VecDeque::new()),
            computed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// An empty cache holding at most `capacity` published measurements
    /// (clamped to at least 1), evicting in publication (FIFO) order. The
    /// matrix-scoped cache is bounded so a fleet-size grid cannot grow it
    /// without bound; eviction is safe because an evicted point simply
    /// recomputes on its next ask.
    pub fn bounded(capacity: usize) -> Self {
        SharedCache {
            capacity: Some(capacity.max(1)),
            ..SharedCache::new()
        }
    }

    fn shard(&self, point: &P) -> &Shard<P, M> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        point.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Return the published measurement for `point`, computing it with
    /// `compute` if this caller is the first asker, or blocking until the
    /// current claimant publishes it.
    pub fn get_or_compute(&self, point: &P, compute: impl FnOnce() -> M) -> Arc<M> {
        let shard = self.shard(point);
        let mut slots = shard.slots.lock();
        loop {
            match slots.get(point) {
                Some(Slot::Ready(measurement)) => {
                    self.served.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(measurement);
                }
                Some(Slot::Pending) => {
                    slots = shard.ready.wait(slots).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    slots.insert(point.clone(), Slot::Pending);
                    drop(slots);
                    let measurement = compute();
                    return self.fulfill(point.clone(), measurement);
                }
            }
        }
    }

    /// Claim `point` without blocking. A `Mine` claimant owns the compute
    /// and must publish through [`SharedCache::fulfill`]; nobody else may
    /// fulfill a point they did not claim.
    pub fn try_claim(&self, point: &P) -> Claim<M> {
        let mut slots = self.shard(point).slots.lock();
        match slots.get(point) {
            Some(Slot::Ready(measurement)) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                Claim::Ready(Arc::clone(measurement))
            }
            Some(Slot::Pending) => Claim::InFlight,
            None => {
                slots.insert(point.clone(), Slot::Pending);
                Claim::Mine
            }
        }
    }

    /// Publish the measurement for a point claimed earlier and wake every
    /// thread blocked on it. On a bounded cache this is also where FIFO
    /// eviction runs: the just-published key joins the back of the
    /// publication queue and the oldest keys beyond capacity are removed.
    pub fn fulfill(&self, point: P, measurement: M) -> Arc<M> {
        let shard = self.shard(&point);
        let measurement = Arc::new(measurement);
        shard
            .slots
            .lock()
            .insert(point.clone(), Slot::Ready(Arc::clone(&measurement)));
        self.computed.fetch_add(1, Ordering::Relaxed);
        shard.ready.notify_all();
        if let Some(capacity) = self.capacity {
            let victims = {
                let mut order = self.order.lock();
                order.push_back(point);
                let overflow = order.len().saturating_sub(capacity);
                order.drain(..overflow).collect::<Vec<_>>()
            };
            for victim in victims {
                let mut slots = self.shard(&victim).slots.lock();
                // Only published slots are evictable: if the key was
                // re-claimed between the queue pop and this lock, the
                // Pending slot has a claimant (and possibly waiters)
                // relying on it and must survive; the claimant's fulfill
                // re-queues the key.
                if matches!(slots.get(&victim), Some(Slot::Ready(_))) {
                    slots.remove(&victim);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        measurement
    }

    /// The published measurement, if any — never blocks, never counts as a
    /// serve (used by speculation heuristics, not by evaluators).
    pub fn peek(&self, point: &P) -> Option<Arc<M>> {
        match self.shard(point).slots.lock().get(point) {
            Some(Slot::Ready(measurement)) => Some(Arc::clone(measurement)),
            _ => None,
        }
    }

    /// Whether the point is claimed or published.
    pub fn contains(&self, point: &P) -> bool {
        self.shard(point).slots.lock().contains_key(point)
    }

    /// Number of measurements computed (each distinct point exactly once).
    pub fn computed_count(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of requests answered from an already-published slot.
    pub fn served_count(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Number of published measurements removed by the capacity bound
    /// (always 0 on an unbounded cache).
    pub fn evicted_count(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// This cache's computed/served/evicted counters as one snapshot.
    pub fn totals(&self) -> CacheTotals {
        CacheTotals {
            computed: self.computed_count(),
            served: self.served_count(),
            evicted: self.evicted_count(),
        }
    }
}

impl<P: Clone + Eq + Hash, M> Default for SharedCache<P, M> {
    fn default() -> Self {
        SharedCache::new()
    }
}

impl<P, M> fmt::Debug for SharedCache<P, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCache")
            .field("capacity", &self.capacity)
            .field("computed", &self.computed.load(Ordering::Relaxed))
            .field("served", &self.served.load(Ordering::Relaxed))
            .field("evicted", &self.evicted.load(Ordering::Relaxed))
            .finish()
    }
}

/// Aggregate shared-cache counters (one cache or a whole [`EvalContext`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheTotals {
    /// Engine runs (each distinct resident key exactly once; an evicted
    /// key recomputes on its next ask).
    pub computed: u64,
    /// Requests answered from an already-published slot.
    pub served: u64,
    /// Published measurements removed by a capacity bound.
    pub evicted: u64,
}

impl std::ops::Add for CacheTotals {
    type Output = CacheTotals;

    /// Component-wise sum.
    fn add(self, other: CacheTotals) -> CacheTotals {
        CacheTotals {
            computed: self.computed + other.computed,
            served: self.served + other.served,
            evicted: self.evicted + other.evicted,
        }
    }
}

/// How one evaluator interacted with its attached [`SharedCache`]: local
/// misses it computed through the cache vs. local misses another thread
/// (a speculation worker or a sibling matrix cell) had already published.
///
/// Kept separate from [`EvalStats`] on purpose: the hit/miss stats are part
/// of the bit-identity contract (equal across serial, speculative, shared,
/// and unshared runs), while these counters *describe* the sharing and are
/// timing-dependent by nature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedUse {
    /// Local misses this evaluator computed itself (through the shared
    /// cache when one is attached).
    pub computed: u64,
    /// Local misses answered by a measurement some other thread published.
    pub served: u64,
}

/// Everything one campaign's evaluator can report about its execution:
/// the bit-identical cache stats, the shared-cache interaction counters,
/// and the wall-clock of every flow-model compute (microseconds, in
/// compute order) for throughput/latency summaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvalProfile {
    /// Local-cache hit/miss counters (the bit-identity stats).
    pub stats: EvalStats,
    /// Shared-cache interaction counters (zero without an attached cache).
    pub shared: SharedUse,
    /// Wall-clock microseconds of each flow-model compute this evaluator
    /// ran itself.
    pub compute_micros: Vec<u64>,
    /// Incremental stage-reuse counters of the underlying subsystem (all
    /// zero when incremental evaluation is off). Like [`SharedUse`] these
    /// *describe* the execution; the bit-identity contract lives in
    /// `stats` and the measurements themselves.
    pub incremental: IncrementalUse,
}

/// The matrix-scoped evaluation context: one bundle of [`SharedCache`]s
/// created at the top of a campaign matrix and attached to every cell's
/// evaluator, so identical canonical points measured by different
/// strategy×seed cells are computed once per matrix instead of once per
/// cell.
///
/// Caches are scoped **per subsystem** (a [`SearchPoint`] measured on
/// subsystem F and on subsystem H are different experiments, so one flat
/// cache keyed by point would serve wrong measurements on a mixed grid)
/// and per point type (two-host workload vs. fabric). Ownership flows
/// matrix → campaign → evaluator: each cell's evaluator reads through the
/// attached cache on a local miss but keeps committing through its *local*
/// cache, so [`EvalStats`] and every golden-trace fixture are byte-identical
/// with the context attached or not.
#[derive(Debug)]
pub struct EvalContext {
    /// Capacity for each per-subsystem cache (`None` = unbounded).
    capacity: Option<usize>,
    workload: parking_lot::Mutex<HashMap<SubsystemId, Arc<SharedCache<SearchPoint, Measurement>>>>,
    fabric:
        parking_lot::Mutex<HashMap<SubsystemId, Arc<SharedCache<FabricPoint, FabricMeasurement>>>>,
}

impl EvalContext {
    /// A context of unbounded caches.
    pub fn new() -> Self {
        EvalContext {
            capacity: None,
            workload: parking_lot::Mutex::new(HashMap::new()),
            fabric: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// A context whose per-subsystem caches each hold at most `capacity`
    /// published measurements (see [`SharedCache::bounded`]).
    pub fn bounded(capacity: usize) -> Self {
        EvalContext {
            capacity: Some(capacity),
            ..EvalContext::new()
        }
    }

    fn cache_for<P: Clone + Eq + Hash, M>(
        map: &parking_lot::Mutex<HashMap<SubsystemId, Arc<SharedCache<P, M>>>>,
        capacity: Option<usize>,
        subsystem: SubsystemId,
    ) -> Arc<SharedCache<P, M>> {
        Arc::clone(map.lock().entry(subsystem).or_insert_with(|| {
            Arc::new(match capacity {
                Some(capacity) => SharedCache::bounded(capacity),
                None => SharedCache::new(),
            })
        }))
    }

    /// The two-host workload cache for `subsystem` (created on first use).
    pub fn workload_cache(
        &self,
        subsystem: SubsystemId,
    ) -> Arc<SharedCache<SearchPoint, Measurement>> {
        EvalContext::cache_for(&self.workload, self.capacity, subsystem)
    }

    /// The fabric cache for `subsystem` (created on first use).
    pub fn fabric_cache(
        &self,
        subsystem: SubsystemId,
    ) -> Arc<SharedCache<FabricPoint, FabricMeasurement>> {
        EvalContext::cache_for(&self.fabric, self.capacity, subsystem)
    }

    /// Computed/served/evicted counters summed over every cache this
    /// context created.
    pub fn totals(&self) -> CacheTotals {
        let workload = self
            .workload
            .lock()
            .values()
            .fold(CacheTotals::default(), |acc, c| acc + c.totals());
        self.fabric
            .lock()
            .values()
            .fold(workload, |acc, c| acc + c.totals())
    }
}

impl Default for EvalContext {
    fn default() -> Self {
        EvalContext::new()
    }
}

/// A speculation worker: computes measurements for pre-drawn points on its
/// own forked engine, publishing them into the [`SharedCache`].
pub trait SpecWorker<P, M>: Send {
    /// Compute the measurement for `point` from scratch.
    fn compute(&mut self, point: &P) -> M;

    /// Compute a whole batch, returning one measurement per point in
    /// order. Semantically identical to calling [`SpecWorker::compute`]
    /// point by point (the default does exactly that); workers backed by
    /// an incremental engine override this so the batch shares stage
    /// results.
    fn compute_batch(&mut self, points: &[P]) -> Vec<M> {
        points.iter().map(|point| self.compute(point)).collect()
    }
}

/// Everything a campaign loop needs to evaluate speculatively: the shared
/// memo cache (already wired into the committing evaluator) plus one
/// independent engine fork per evaluation thread.
pub struct SpeculationParts<P, M> {
    /// Concurrent cache shared by the committing evaluator and all workers.
    pub shared: Arc<SharedCache<P, M>>,
    /// One forked compute engine per worker thread.
    pub workers: Vec<Box<dyn SpecWorker<P, M>>>,
}

struct ForkedEngineWorker {
    engine: WorkloadEngine,
}

impl SpecWorker<SearchPoint, Measurement> for ForkedEngineWorker {
    fn compute(&mut self, point: &SearchPoint) -> Measurement {
        self.engine.measure(point)
    }

    fn compute_batch(&mut self, points: &[SearchPoint]) -> Vec<Measurement> {
        self.engine.measure_batch(points)
    }
}

/// A memoizing wrapper around one engine.
///
/// The evaluator does **not** do cost accounting: callers (the campaign,
/// the extractor) keep charging [`WorkloadEngine::experiment_cost`] per
/// measurement whether or not it hit the cache, because on hardware the
/// repeat would have to run. Memoization only skips the flow-model
/// recompute.
///
/// With speculation enabled ([`Evaluator::speculation`]) a local miss
/// first consults the [`SharedCache`] that worker threads fill; the
/// hit/miss stats are counted off the local cache alone, so they are
/// bit-identical whether or not workers got there first.
#[derive(Debug)]
pub struct Evaluator<'e> {
    engine: &'e mut WorkloadEngine,
    cache: HashMap<SearchPoint, Arc<Measurement>>,
    shared: Option<Arc<SharedCache<SearchPoint, Measurement>>>,
    memoize: bool,
    stats: EvalStats,
    shared_use: SharedUse,
    compute_micros: Vec<u64>,
}

impl<'e> Evaluator<'e> {
    /// A memoizing evaluator over `engine`.
    pub fn new(engine: &'e mut WorkloadEngine) -> Self {
        Evaluator {
            engine,
            cache: HashMap::new(),
            shared: None,
            memoize: true,
            stats: EvalStats::default(),
            shared_use: SharedUse::default(),
            compute_micros: Vec::new(),
        }
    }

    /// An evaluator that always recomputes (the uncached reference path,
    /// used by the ablation bench and the bit-identity tests).
    pub fn uncached(engine: &'e mut WorkloadEngine) -> Self {
        Evaluator {
            memoize: false,
            ..Evaluator::new(engine)
        }
    }

    /// Attach a matrix-scoped [`SharedCache`] (usually obtained from an
    /// [`EvalContext`]): local misses will consult it before running the
    /// flow model, and [`Evaluator::speculation`] will reuse it instead of
    /// creating a per-campaign cache. A no-op on an uncached evaluator —
    /// without a local memo cache the bit-identity contract could not
    /// absorb a shared answer.
    pub fn attach_shared(&mut self, shared: Arc<SharedCache<SearchPoint, Measurement>>) {
        if self.memoize {
            self.shared = Some(shared);
        }
    }

    fn timed_compute(&mut self, point: &SearchPoint) -> Measurement {
        // collie-lint: allow(wall-clock, reason = "perf-harness latency sample; the measurement itself is deterministic")
        let started = Instant::now();
        let measurement = self.engine.measure(point);
        self.compute_micros
            .push(started.elapsed().as_micros() as u64);
        measurement
    }

    /// Measure one point, answering from the memo cache when the identical
    /// point was measured before.
    pub fn measure(&mut self, point: &SearchPoint) -> Measurement {
        if !self.memoize {
            self.stats.misses += 1;
            return self.timed_compute(point);
        }
        if let Some(measurement) = self.cache.get(point) {
            self.stats.hits += 1;
            return (**measurement).clone();
        }
        self.stats.misses += 1;
        let measurement = if let Some(shared) = self.shared.as_ref().map(Arc::clone) {
            let engine = &mut *self.engine;
            let micros = &mut self.compute_micros;
            let mut computed_here = false;
            let measurement = shared.get_or_compute(point, || {
                computed_here = true;
                // collie-lint: allow(wall-clock, reason = "perf-harness latency sample; the measurement itself is deterministic")
                let started = Instant::now();
                let measurement = engine.measure(point);
                micros.push(started.elapsed().as_micros() as u64);
                measurement
            });
            if computed_here {
                self.shared_use.computed += 1;
            } else {
                self.shared_use.served += 1;
            }
            measurement
        } else {
            Arc::new(self.timed_compute(point))
        };
        self.cache.insert(point.clone(), Arc::clone(&measurement));
        (*measurement).clone()
    }

    /// Measure a whole batch of points in order, each through the memo
    /// cache exactly as [`Evaluator::measure`] would — the stats, the
    /// cache contents, and the returned measurements are identical to the
    /// point-by-point loop. The batch exists so callers holding a whole
    /// lookahead set can hand it over in one call and an incremental
    /// engine underneath can share stage results across the set.
    pub fn measure_batch(&mut self, points: &[SearchPoint]) -> Vec<Measurement> {
        points.iter().map(|point| self.measure(point)).collect()
    }

    /// The paper's §6 measurement procedure through the cache: sample the
    /// experiment `samples_per_iteration` times (repeats are cache hits)
    /// and assess the final sample. The engine is deterministic, so every
    /// sample is identical and no averaging is needed — the repeats exist
    /// for procedural fidelity, exactly as
    /// [`AnomalyMonitor::measure_and_assess`] documents; a future noisy
    /// engine would have to add real averaging here.
    pub fn measure_and_assess(
        &mut self,
        monitor: &AnomalyMonitor,
        point: &SearchPoint,
    ) -> (Measurement, AnomalyVerdict) {
        let samples = monitor.samples_per_iteration.max(1);
        let measurement = self.measure(point);
        if self.memoize {
            // Repeats of an identical deterministic sample are guaranteed
            // cache hits; account for them without the redundant lookups.
            self.stats.hits += u64::from(samples - 1);
        } else {
            for _ in 1..samples {
                let _ = self.measure(point);
            }
        }
        let verdict = monitor.assess(&measurement, &self.subsystem().rnic);
        (measurement, verdict)
    }

    /// The subsystem under test.
    pub fn subsystem(&self) -> &Subsystem {
        self.engine.subsystem()
    }

    /// Ground-truth oracle pass-through (scoring only; see
    /// [`WorkloadEngine::ground_truth`]).
    pub fn ground_truth(&self, point: &SearchPoint) -> Vec<&'static str> {
        self.engine.ground_truth(point)
    }

    /// Cache hit/miss counters so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Shared-cache interaction counters so far (all zero without an
    /// attached cache).
    pub fn shared_use(&self) -> SharedUse {
        self.shared_use
    }

    /// The full execution profile: stats, shared-cache interaction, and
    /// per-compute wall-clock.
    pub fn profile(&self) -> EvalProfile {
        EvalProfile {
            stats: self.stats,
            shared: self.shared_use,
            compute_micros: self.compute_micros.clone(),
            incremental: self.engine.subsystem().incremental_use(),
        }
    }

    /// Number of distinct points held in the cache.
    pub fn cached_points(&self) -> usize {
        self.cache.len()
    }

    /// Prepare shared-cache speculation: wires a [`SharedCache`] into this
    /// evaluator — reusing an attached matrix-scoped cache when one is
    /// present, so speculation workers publish where sibling cells read —
    /// and forks `workers` independent engines for the worker threads.
    /// Returns `None` when memoization is off (without a memo cache,
    /// speculated results could not be handed back to the committing loop)
    /// or when no workers were requested.
    pub fn speculation(
        &mut self,
        workers: usize,
    ) -> Option<SpeculationParts<SearchPoint, Measurement>> {
        if !self.memoize || workers == 0 {
            return None;
        }
        let shared = match &self.shared {
            Some(shared) => Arc::clone(shared),
            None => Arc::new(SharedCache::new()),
        };
        self.shared = Some(Arc::clone(&shared));
        let workers = (0..workers)
            .map(|_| {
                Box::new(ForkedEngineWorker {
                    engine: self.engine.fork(),
                }) as Box<dyn SpecWorker<SearchPoint, Measurement>>
            })
            .collect();
        Some(SpeculationParts { shared, workers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_rnic::subsystems::SubsystemId;
    use collie_rnic::workload::{Opcode, Transport};

    fn anomalous_point() -> SearchPoint {
        let mut p = SearchPoint::benign();
        p.transport = Transport::Ud;
        p.opcode = Opcode::Send;
        p.wqe_batch = 64;
        p.recv_queue_depth = 256;
        p.mtu = 2048;
        p.messages = vec![2048];
        p
    }

    #[test]
    fn repeated_measurements_hit_the_cache_and_agree() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let p = anomalous_point();
        let first = evaluator.measure(&p);
        let second = evaluator.measure(&p);
        assert_eq!(first, second);
        assert_eq!(evaluator.stats(), EvalStats { hits: 1, misses: 1 });
        assert_eq!(evaluator.cached_points(), 1);
    }

    #[test]
    fn engine_is_deterministic_so_memoization_is_sound() {
        // The cache substitutes a stored measurement for a recompute; this
        // pins the property that makes the substitution exact.
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let p = anomalous_point();
        let a = engine.measure(&p);
        let _ = engine.measure(&SearchPoint::benign());
        let b = engine.measure(&p);
        assert_eq!(a, b, "measure must be a pure function of the point");
    }

    #[test]
    fn uncached_evaluator_never_hits() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::uncached(&mut engine);
        let p = SearchPoint::benign();
        let a = evaluator.measure(&p);
        let b = evaluator.measure(&p);
        assert_eq!(a, b);
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 2 });
        assert_eq!(evaluator.cached_points(), 0);
    }

    #[test]
    fn distinct_points_occupy_distinct_slots() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let mut p = SearchPoint::benign();
        evaluator.measure(&p);
        p.num_qps *= 2;
        evaluator.measure(&p);
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 2 });
        assert_eq!(evaluator.cached_points(), 2);
    }

    #[test]
    fn measure_batch_is_the_point_by_point_loop_through_the_cache() {
        let mut reference = WorkloadEngine::for_catalog(SubsystemId::F);
        let points = [
            SearchPoint::benign(),
            anomalous_point(),
            SearchPoint::benign(),
        ];
        let expected: Vec<_> = points.iter().map(|p| reference.measure(p)).collect();
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        assert_eq!(evaluator.measure_batch(&points), expected);
        // The repeated benign point is a cache hit, exactly as in a loop.
        assert_eq!(evaluator.stats(), EvalStats { hits: 1, misses: 2 });
        assert_eq!(evaluator.cached_points(), 2);
    }

    #[test]
    fn spec_workers_batch_and_serial_computes_agree() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let mut workers = evaluator.speculation(1).expect("memoized").workers;
        let points = vec![SearchPoint::benign(), anomalous_point()];
        let batch = workers[0].compute_batch(&points);
        let serial: Vec<_> = points.iter().map(|p| workers[0].compute(p)).collect();
        assert_eq!(batch, serial);
    }

    #[test]
    fn profile_reports_the_engines_incremental_reuse() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        engine.set_incremental(true);
        let mut evaluator = Evaluator::uncached(&mut engine);
        let p = SearchPoint::benign();
        let _ = evaluator.measure(&p);
        let _ = evaluator.measure(&p);
        let profile = evaluator.profile();
        assert!(profile.incremental.total_hits() > 0);
        assert!(profile.incremental.total_misses() > 0);
    }

    #[test]
    fn measure_and_assess_samples_through_the_cache() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let monitor = AnomalyMonitor::new();
        let (_, verdict) = evaluator.measure_and_assess(&monitor, &anomalous_point());
        assert!(verdict.is_anomalous());
        // Four samples per iteration: one compute, three cache hits.
        assert_eq!(evaluator.stats(), EvalStats { hits: 3, misses: 1 });
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(EvalStats::default().hit_rate(), 0.0);
        let stats = EvalStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shared_cache_counts_are_exact_under_concurrent_access() {
        let cache: Arc<SharedCache<u64, u64>> = Arc::new(SharedCache::new());
        let threads = 8u64;
        let keys = 64u64;
        let repeats = 5u64;
        crossbeam::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move |_| {
                    for r in 0..repeats {
                        for k in 0..keys {
                            // Visit order differs per thread and per pass.
                            let k = (k + t + r) % keys;
                            let v = cache.get_or_compute(&k, || k * 3);
                            assert_eq!(*v, k * 3);
                        }
                    }
                });
            }
        })
        .expect("threads ok");
        let total = threads * repeats * keys;
        assert_eq!(
            cache.computed_count(),
            keys,
            "every key computed exactly once"
        );
        assert_eq!(
            cache.served_count(),
            total - keys,
            "no lost updates in the serve counter"
        );
    }

    #[test]
    fn claim_protocol_hands_each_point_to_exactly_one_claimant() {
        let cache: SharedCache<u32, u32> = SharedCache::new();
        assert!(matches!(cache.try_claim(&7), Claim::Mine));
        assert!(matches!(cache.try_claim(&7), Claim::InFlight));
        assert!(cache.contains(&7));
        assert!(cache.peek(&7).is_none(), "pending slots are not peekable");
        cache.fulfill(7, 49);
        assert!(matches!(cache.try_claim(&7), Claim::Ready(v) if *v == 49));
        assert_eq!(*cache.peek(&7).expect("ready"), 49);
        assert_eq!(cache.computed_count(), 1);
    }

    #[test]
    fn waiters_block_on_in_flight_points_instead_of_recomputing() {
        let cache: Arc<SharedCache<u32, u32>> = Arc::new(SharedCache::new());
        assert!(matches!(cache.try_claim(&1), Claim::Mine));
        crossbeam::thread::scope(|scope| {
            let waiter = {
                let cache = Arc::clone(&cache);
                scope.spawn(move |_| *cache.get_or_compute(&1, || panic!("must not recompute")))
            };
            // Give the waiter a chance to park before publishing.
            // collie-lint: allow(wall-clock, reason = "test-only sleep ordering a thread interleaving; no campaign path runs here")
            std::thread::sleep(std::time::Duration::from_millis(5));
            cache.fulfill(1, 11);
            assert_eq!(waiter.join().expect("waiter ok"), 11);
        })
        .expect("threads ok");
        assert_eq!(cache.computed_count(), 1);
        assert_eq!(cache.served_count(), 1);
    }

    #[test]
    fn speculation_workers_fill_the_cache_the_evaluator_reads() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut reference = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let SpeculationParts {
            shared,
            mut workers,
        } = evaluator.speculation(2).expect("memoized evaluator");
        assert_eq!(workers.len(), 2);
        let p = anomalous_point();
        let m = workers[0].compute(&p);
        assert_eq!(m, reference.measure(&p), "fork agrees with a fresh engine");
        shared.fulfill(p.clone(), m);
        // A local miss consults the shared cache: the stats still record a
        // miss (they are counted off the local cache alone), but the value
        // comes from the worker's publication, not a recompute.
        let got = evaluator.measure(&p);
        assert_eq!(got, reference.measure(&p));
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 1 });
        assert_eq!(shared.computed_count(), 1);
        assert_eq!(shared.served_count(), 1);
    }

    #[test]
    fn speculation_requires_memoization_and_workers() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        assert!(Evaluator::uncached(&mut engine).speculation(4).is_none());
        assert!(Evaluator::new(&mut engine).speculation(0).is_none());
    }

    #[test]
    fn bounded_cache_evicts_in_publication_order_with_exact_counters() {
        let cache: SharedCache<u32, u32> = SharedCache::bounded(2);
        for k in [1u32, 2, 3] {
            assert_eq!(*cache.get_or_compute(&k, || k * 10), k * 10);
        }
        // Capacity 2: publishing key 3 evicted key 1 (oldest first).
        assert_eq!(cache.computed_count(), 3);
        assert_eq!(cache.evicted_count(), 1);
        assert!(cache.peek(&1).is_none(), "key 1 must be evicted");
        assert!(cache.peek(&2).is_some() && cache.peek(&3).is_some());
        // An evicted key recomputes on its next ask (and its re-publication
        // evicts key 2, the new oldest resident).
        assert_eq!(*cache.get_or_compute(&1, || 10), 10);
        assert_eq!(cache.computed_count(), 4);
        assert_eq!(cache.evicted_count(), 2);
        assert!(cache.peek(&2).is_none(), "key 2 must be evicted");
        // Resident keys still serve without recompute.
        assert_eq!(*cache.get_or_compute(&3, || panic!("resident")), 30);
        assert_eq!(cache.served_count(), 1);
        assert_eq!(
            cache.totals(),
            CacheTotals {
                computed: 4,
                served: 1,
                evicted: 2
            }
        );
    }

    #[test]
    fn bounded_cache_capacity_clamps_to_one() {
        let cache: SharedCache<u32, u32> = SharedCache::bounded(0);
        assert_eq!(*cache.get_or_compute(&1, || 10), 10);
        assert_eq!(*cache.get_or_compute(&2, || 20), 20);
        assert_eq!(cache.evicted_count(), 1);
        assert!(cache.peek(&2).is_some(), "the newest key always survives");
    }

    #[test]
    fn speculation_reuses_an_attached_shared_cache() {
        let shared: Arc<SharedCache<SearchPoint, Measurement>> = Arc::new(SharedCache::new());
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        evaluator.attach_shared(Arc::clone(&shared));
        let parts = evaluator.speculation(1).expect("memoized evaluator");
        assert!(
            Arc::ptr_eq(&parts.shared, &shared),
            "speculation workers must publish into the matrix-scoped cache"
        );
    }

    #[test]
    fn attach_shared_is_a_no_op_without_memoization() {
        let shared: Arc<SharedCache<SearchPoint, Measurement>> = Arc::new(SharedCache::new());
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::uncached(&mut engine);
        evaluator.attach_shared(Arc::clone(&shared));
        let p = anomalous_point();
        let _ = evaluator.measure(&p);
        assert_eq!(shared.computed_count(), 0, "uncached path must not share");
        assert_eq!(evaluator.shared_use(), SharedUse::default());
    }

    #[test]
    fn attached_cache_tracks_shared_use_without_touching_stats() {
        let shared: Arc<SharedCache<SearchPoint, Measurement>> = Arc::new(SharedCache::new());
        let mut reference = WorkloadEngine::for_catalog(SubsystemId::F);
        let p = anomalous_point();
        shared.fulfill(p.clone(), reference.measure(&p));

        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        evaluator.attach_shared(Arc::clone(&shared));
        // Local miss served by the shared publication: stats still record a
        // plain miss (bit-identity), SharedUse records the serve, and no
        // compute latency is logged because no flow model ran here.
        let got = evaluator.measure(&p);
        assert_eq!(got, reference.measure(&p));
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 1 });
        assert_eq!(
            evaluator.shared_use(),
            SharedUse {
                computed: 0,
                served: 1
            }
        );
        assert!(evaluator.profile().compute_micros.is_empty());
        // A genuinely new point is computed through the shared cache.
        let _ = evaluator.measure(&SearchPoint::benign());
        assert_eq!(
            evaluator.shared_use(),
            SharedUse {
                computed: 1,
                served: 1
            }
        );
        assert_eq!(evaluator.profile().compute_micros.len(), 1);
    }

    #[test]
    fn profile_records_one_latency_per_compute() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let p = anomalous_point();
        let _ = evaluator.measure(&p);
        let _ = evaluator.measure(&p);
        assert_eq!(evaluator.profile().compute_micros.len(), 1);
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut uncached = Evaluator::uncached(&mut engine);
        let _ = uncached.measure(&p);
        let _ = uncached.measure(&p);
        assert_eq!(uncached.profile().compute_micros.len(), 2);
    }

    #[test]
    fn eval_context_scopes_caches_per_subsystem_and_point_type() {
        let ctx = EvalContext::new();
        let f = ctx.workload_cache(SubsystemId::F);
        assert!(
            Arc::ptr_eq(&f, &ctx.workload_cache(SubsystemId::F)),
            "same subsystem must share one cache"
        );
        assert!(
            !Arc::ptr_eq(&f, &ctx.workload_cache(SubsystemId::H)),
            "a SearchPoint means different experiments on different \
             subsystems; the caches must be distinct"
        );
        // Fabric caches are a separate family keyed by FabricPoint.
        let _ = ctx.fabric_cache(SubsystemId::F);
        assert_eq!(ctx.totals(), CacheTotals::default());
        f.fulfill(SearchPoint::benign(), {
            let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
            engine.measure(&SearchPoint::benign())
        });
        assert_eq!(
            ctx.totals(),
            CacheTotals {
                computed: 1,
                served: 0,
                evicted: 0
            }
        );
    }

    #[test]
    fn bounded_context_bounds_every_cache_it_creates() {
        let ctx = EvalContext::bounded(1);
        let cache = ctx.workload_cache(SubsystemId::F);
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let benign = SearchPoint::benign();
        cache.fulfill(benign.clone(), engine.measure(&benign));
        let p = anomalous_point();
        cache.fulfill(p.clone(), engine.measure(&p));
        assert_eq!(ctx.totals().evicted, 1);
        assert!(cache.peek(&benign).is_none());
    }
}
