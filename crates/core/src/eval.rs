//! Memoized experiment evaluation.
//!
//! Every layer of the search re-measures workloads it has already seen: the
//! annealing walk re-proposes recently rejected points, the MFS extractor
//! re-measures the anomalous point it was handed and probes overlapping
//! neighbourhoods across extractions, and the monitor's §6 procedure samples
//! the same experiment four times per iteration. On real hardware those
//! repeats are unavoidable (and the campaign's *simulated* cost accounting
//! keeps charging them — each repeat still costs 20–60 simulated seconds, so
//! Figures 4–6 are unchanged); in the simulator they are pure recompute.
//!
//! [`Evaluator`] wraps [`WorkloadEngine::measure`] with a memo cache keyed
//! by the canonical [`SearchPoint`]. This is sound because the engine is
//! deterministic: [`Subsystem::evaluate`](collie_rnic::subsystem::Subsystem)
//! resets all counter and switch state on entry, so a measurement is a pure
//! function of the point (see the determinism test below and the contract
//! note on [`WorkloadEngine::measure`]). Campaigns route every experiment —
//! search, counter ranking, and MFS probing — through one shared evaluator,
//! so an extraction's probes warm the cache for the next one.

use crate::engine::WorkloadEngine;
use crate::monitor::{AnomalyMonitor, AnomalyVerdict};
use crate::space::SearchPoint;
use collie_rnic::subsystem::{Measurement, Subsystem};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};

/// Cache effectiveness counters of one [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Measurements answered from the memo cache.
    pub hits: u64,
    /// Measurements that ran the flow model (and filled the cache).
    pub misses: u64,
}

impl EvalStats {
    /// Fraction of measurements answered from the cache (0 when nothing was
    /// measured).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARD_COUNT: usize = 16;

/// One entry of a [`SharedCache`] shard.
enum Slot<M> {
    /// Claimed: some thread is computing this point right now.
    Pending,
    /// Computed and published.
    Ready(Arc<M>),
}

/// Outcome of [`SharedCache::try_claim`].
pub enum Claim<M> {
    /// The caller owns the computation and **must** call
    /// [`SharedCache::fulfill`] for this point.
    Mine,
    /// Another thread is already computing this point.
    InFlight,
    /// The measurement is already published.
    Ready(Arc<M>),
}

struct Shard<P, M> {
    slots: parking_lot::Mutex<HashMap<P, Slot<M>>>,
    /// Signalled whenever a pending slot of this shard becomes ready.
    ready: Condvar,
}

/// A sharded concurrent memo cache shared between a committing evaluator
/// and its speculation workers.
///
/// Each point is computed exactly once no matter how many threads ask for
/// it: the first asker installs a pending claim, everyone else
/// either blocks on the shard's condvar ([`SharedCache::get_or_compute`])
/// or backs off ([`SharedCache::try_claim`]) until the claimant publishes
/// via [`SharedCache::fulfill`]. The stats invariant — `T` calls to
/// `get_or_compute` over `D` distinct keys give exactly `computed == D`
/// and `served == T − D` — is what the concurrency tests pin.
pub struct SharedCache<P, M> {
    shards: Vec<Shard<P, M>>,
    computed: AtomicU64,
    served: AtomicU64,
}

impl<P: Clone + Eq + Hash, M> SharedCache<P, M> {
    /// An empty cache.
    pub fn new() -> Self {
        SharedCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Shard {
                    slots: parking_lot::Mutex::new(HashMap::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            computed: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }

    fn shard(&self, point: &P) -> &Shard<P, M> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        point.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Return the published measurement for `point`, computing it with
    /// `compute` if this caller is the first asker, or blocking until the
    /// current claimant publishes it.
    pub fn get_or_compute(&self, point: &P, compute: impl FnOnce() -> M) -> Arc<M> {
        let shard = self.shard(point);
        let mut slots = shard.slots.lock();
        loop {
            match slots.get(point) {
                Some(Slot::Ready(measurement)) => {
                    self.served.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(measurement);
                }
                Some(Slot::Pending) => {
                    slots = shard.ready.wait(slots).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    slots.insert(point.clone(), Slot::Pending);
                    drop(slots);
                    let measurement = compute();
                    return self.fulfill(point.clone(), measurement);
                }
            }
        }
    }

    /// Claim `point` without blocking. A `Mine` claimant owns the compute
    /// and must publish through [`SharedCache::fulfill`]; nobody else may
    /// fulfill a point they did not claim.
    pub fn try_claim(&self, point: &P) -> Claim<M> {
        let mut slots = self.shard(point).slots.lock();
        match slots.get(point) {
            Some(Slot::Ready(measurement)) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                Claim::Ready(Arc::clone(measurement))
            }
            Some(Slot::Pending) => Claim::InFlight,
            None => {
                slots.insert(point.clone(), Slot::Pending);
                Claim::Mine
            }
        }
    }

    /// Publish the measurement for a point claimed earlier and wake every
    /// thread blocked on it.
    pub fn fulfill(&self, point: P, measurement: M) -> Arc<M> {
        let shard = self.shard(&point);
        let measurement = Arc::new(measurement);
        shard
            .slots
            .lock()
            .insert(point, Slot::Ready(Arc::clone(&measurement)));
        self.computed.fetch_add(1, Ordering::Relaxed);
        shard.ready.notify_all();
        measurement
    }

    /// The published measurement, if any — never blocks, never counts as a
    /// serve (used by speculation heuristics, not by evaluators).
    pub fn peek(&self, point: &P) -> Option<Arc<M>> {
        match self.shard(point).slots.lock().get(point) {
            Some(Slot::Ready(measurement)) => Some(Arc::clone(measurement)),
            _ => None,
        }
    }

    /// Whether the point is claimed or published.
    pub fn contains(&self, point: &P) -> bool {
        self.shard(point).slots.lock().contains_key(point)
    }

    /// Number of measurements computed (each distinct point exactly once).
    pub fn computed_count(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of requests answered from an already-published slot.
    pub fn served_count(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl<P: Clone + Eq + Hash, M> Default for SharedCache<P, M> {
    fn default() -> Self {
        SharedCache::new()
    }
}

impl<P, M> fmt::Debug for SharedCache<P, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCache")
            .field("computed", &self.computed.load(Ordering::Relaxed))
            .field("served", &self.served.load(Ordering::Relaxed))
            .finish()
    }
}

/// A speculation worker: computes measurements for pre-drawn points on its
/// own forked engine, publishing them into the [`SharedCache`].
pub trait SpecWorker<P, M>: Send {
    /// Compute the measurement for `point` from scratch.
    fn compute(&mut self, point: &P) -> M;
}

/// Everything a campaign loop needs to evaluate speculatively: the shared
/// memo cache (already wired into the committing evaluator) plus one
/// independent engine fork per evaluation thread.
pub struct SpeculationParts<P, M> {
    /// Concurrent cache shared by the committing evaluator and all workers.
    pub shared: Arc<SharedCache<P, M>>,
    /// One forked compute engine per worker thread.
    pub workers: Vec<Box<dyn SpecWorker<P, M>>>,
}

struct ForkedEngineWorker {
    engine: WorkloadEngine,
}

impl SpecWorker<SearchPoint, Measurement> for ForkedEngineWorker {
    fn compute(&mut self, point: &SearchPoint) -> Measurement {
        self.engine.measure(point)
    }
}

/// A memoizing wrapper around one engine.
///
/// The evaluator does **not** do cost accounting: callers (the campaign,
/// the extractor) keep charging [`WorkloadEngine::experiment_cost`] per
/// measurement whether or not it hit the cache, because on hardware the
/// repeat would have to run. Memoization only skips the flow-model
/// recompute.
///
/// With speculation enabled ([`Evaluator::speculation`]) a local miss
/// first consults the [`SharedCache`] that worker threads fill; the
/// hit/miss stats are counted off the local cache alone, so they are
/// bit-identical whether or not workers got there first.
#[derive(Debug)]
pub struct Evaluator<'e> {
    engine: &'e mut WorkloadEngine,
    cache: HashMap<SearchPoint, Arc<Measurement>>,
    shared: Option<Arc<SharedCache<SearchPoint, Measurement>>>,
    memoize: bool,
    stats: EvalStats,
}

impl<'e> Evaluator<'e> {
    /// A memoizing evaluator over `engine`.
    pub fn new(engine: &'e mut WorkloadEngine) -> Self {
        Evaluator {
            engine,
            cache: HashMap::new(),
            shared: None,
            memoize: true,
            stats: EvalStats::default(),
        }
    }

    /// An evaluator that always recomputes (the uncached reference path,
    /// used by the ablation bench and the bit-identity tests).
    pub fn uncached(engine: &'e mut WorkloadEngine) -> Self {
        Evaluator {
            memoize: false,
            ..Evaluator::new(engine)
        }
    }

    /// Measure one point, answering from the memo cache when the identical
    /// point was measured before.
    pub fn measure(&mut self, point: &SearchPoint) -> Measurement {
        if !self.memoize {
            self.stats.misses += 1;
            return self.engine.measure(point);
        }
        if let Some(measurement) = self.cache.get(point) {
            self.stats.hits += 1;
            return (**measurement).clone();
        }
        self.stats.misses += 1;
        let measurement = if let Some(shared) = self.shared.as_ref().map(Arc::clone) {
            let engine = &mut *self.engine;
            shared.get_or_compute(point, || engine.measure(point))
        } else {
            Arc::new(self.engine.measure(point))
        };
        self.cache.insert(point.clone(), Arc::clone(&measurement));
        (*measurement).clone()
    }

    /// The paper's §6 measurement procedure through the cache: sample the
    /// experiment `samples_per_iteration` times (repeats are cache hits)
    /// and assess the final sample. The engine is deterministic, so every
    /// sample is identical and no averaging is needed — the repeats exist
    /// for procedural fidelity, exactly as
    /// [`AnomalyMonitor::measure_and_assess`] documents; a future noisy
    /// engine would have to add real averaging here.
    pub fn measure_and_assess(
        &mut self,
        monitor: &AnomalyMonitor,
        point: &SearchPoint,
    ) -> (Measurement, AnomalyVerdict) {
        let samples = monitor.samples_per_iteration.max(1);
        let measurement = self.measure(point);
        if self.memoize {
            // Repeats of an identical deterministic sample are guaranteed
            // cache hits; account for them without the redundant lookups.
            self.stats.hits += u64::from(samples - 1);
        } else {
            for _ in 1..samples {
                let _ = self.measure(point);
            }
        }
        let verdict = monitor.assess(&measurement, &self.subsystem().rnic);
        (measurement, verdict)
    }

    /// The subsystem under test.
    pub fn subsystem(&self) -> &Subsystem {
        self.engine.subsystem()
    }

    /// Ground-truth oracle pass-through (scoring only; see
    /// [`WorkloadEngine::ground_truth`]).
    pub fn ground_truth(&self, point: &SearchPoint) -> Vec<&'static str> {
        self.engine.ground_truth(point)
    }

    /// Cache hit/miss counters so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Number of distinct points held in the cache.
    pub fn cached_points(&self) -> usize {
        self.cache.len()
    }

    /// Prepare shared-cache speculation: wires a [`SharedCache`] into this
    /// evaluator and forks `workers` independent engines for the worker
    /// threads. Returns `None` when memoization is off (without a memo
    /// cache, speculated results could not be handed back to the
    /// committing loop) or when no workers were requested.
    pub fn speculation(
        &mut self,
        workers: usize,
    ) -> Option<SpeculationParts<SearchPoint, Measurement>> {
        if !self.memoize || workers == 0 {
            return None;
        }
        let shared = Arc::new(SharedCache::new());
        self.shared = Some(Arc::clone(&shared));
        let workers = (0..workers)
            .map(|_| {
                Box::new(ForkedEngineWorker {
                    engine: self.engine.fork(),
                }) as Box<dyn SpecWorker<SearchPoint, Measurement>>
            })
            .collect();
        Some(SpeculationParts { shared, workers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_rnic::subsystems::SubsystemId;
    use collie_rnic::workload::{Opcode, Transport};

    fn anomalous_point() -> SearchPoint {
        let mut p = SearchPoint::benign();
        p.transport = Transport::Ud;
        p.opcode = Opcode::Send;
        p.wqe_batch = 64;
        p.recv_queue_depth = 256;
        p.mtu = 2048;
        p.messages = vec![2048];
        p
    }

    #[test]
    fn repeated_measurements_hit_the_cache_and_agree() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let p = anomalous_point();
        let first = evaluator.measure(&p);
        let second = evaluator.measure(&p);
        assert_eq!(first, second);
        assert_eq!(evaluator.stats(), EvalStats { hits: 1, misses: 1 });
        assert_eq!(evaluator.cached_points(), 1);
    }

    #[test]
    fn engine_is_deterministic_so_memoization_is_sound() {
        // The cache substitutes a stored measurement for a recompute; this
        // pins the property that makes the substitution exact.
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let p = anomalous_point();
        let a = engine.measure(&p);
        let _ = engine.measure(&SearchPoint::benign());
        let b = engine.measure(&p);
        assert_eq!(a, b, "measure must be a pure function of the point");
    }

    #[test]
    fn uncached_evaluator_never_hits() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::uncached(&mut engine);
        let p = SearchPoint::benign();
        let a = evaluator.measure(&p);
        let b = evaluator.measure(&p);
        assert_eq!(a, b);
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 2 });
        assert_eq!(evaluator.cached_points(), 0);
    }

    #[test]
    fn distinct_points_occupy_distinct_slots() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let mut p = SearchPoint::benign();
        evaluator.measure(&p);
        p.num_qps *= 2;
        evaluator.measure(&p);
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 2 });
        assert_eq!(evaluator.cached_points(), 2);
    }

    #[test]
    fn measure_and_assess_samples_through_the_cache() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let monitor = AnomalyMonitor::new();
        let (_, verdict) = evaluator.measure_and_assess(&monitor, &anomalous_point());
        assert!(verdict.is_anomalous());
        // Four samples per iteration: one compute, three cache hits.
        assert_eq!(evaluator.stats(), EvalStats { hits: 3, misses: 1 });
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(EvalStats::default().hit_rate(), 0.0);
        let stats = EvalStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shared_cache_counts_are_exact_under_concurrent_access() {
        let cache: Arc<SharedCache<u64, u64>> = Arc::new(SharedCache::new());
        let threads = 8u64;
        let keys = 64u64;
        let repeats = 5u64;
        crossbeam::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move |_| {
                    for r in 0..repeats {
                        for k in 0..keys {
                            // Visit order differs per thread and per pass.
                            let k = (k + t + r) % keys;
                            let v = cache.get_or_compute(&k, || k * 3);
                            assert_eq!(*v, k * 3);
                        }
                    }
                });
            }
        })
        .expect("threads ok");
        let total = threads * repeats * keys;
        assert_eq!(
            cache.computed_count(),
            keys,
            "every key computed exactly once"
        );
        assert_eq!(
            cache.served_count(),
            total - keys,
            "no lost updates in the serve counter"
        );
    }

    #[test]
    fn claim_protocol_hands_each_point_to_exactly_one_claimant() {
        let cache: SharedCache<u32, u32> = SharedCache::new();
        assert!(matches!(cache.try_claim(&7), Claim::Mine));
        assert!(matches!(cache.try_claim(&7), Claim::InFlight));
        assert!(cache.contains(&7));
        assert!(cache.peek(&7).is_none(), "pending slots are not peekable");
        cache.fulfill(7, 49);
        assert!(matches!(cache.try_claim(&7), Claim::Ready(v) if *v == 49));
        assert_eq!(*cache.peek(&7).expect("ready"), 49);
        assert_eq!(cache.computed_count(), 1);
    }

    #[test]
    fn waiters_block_on_in_flight_points_instead_of_recomputing() {
        let cache: Arc<SharedCache<u32, u32>> = Arc::new(SharedCache::new());
        assert!(matches!(cache.try_claim(&1), Claim::Mine));
        crossbeam::thread::scope(|scope| {
            let waiter = {
                let cache = Arc::clone(&cache);
                scope.spawn(move |_| *cache.get_or_compute(&1, || panic!("must not recompute")))
            };
            // Give the waiter a chance to park before publishing.
            std::thread::sleep(std::time::Duration::from_millis(5));
            cache.fulfill(1, 11);
            assert_eq!(waiter.join().expect("waiter ok"), 11);
        })
        .expect("threads ok");
        assert_eq!(cache.computed_count(), 1);
        assert_eq!(cache.served_count(), 1);
    }

    #[test]
    fn speculation_workers_fill_the_cache_the_evaluator_reads() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut reference = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let SpeculationParts {
            shared,
            mut workers,
        } = evaluator.speculation(2).expect("memoized evaluator");
        assert_eq!(workers.len(), 2);
        let p = anomalous_point();
        let m = workers[0].compute(&p);
        assert_eq!(m, reference.measure(&p), "fork agrees with a fresh engine");
        shared.fulfill(p.clone(), m);
        // A local miss consults the shared cache: the stats still record a
        // miss (they are counted off the local cache alone), but the value
        // comes from the worker's publication, not a recompute.
        let got = evaluator.measure(&p);
        assert_eq!(got, reference.measure(&p));
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 1 });
        assert_eq!(shared.computed_count(), 1);
        assert_eq!(shared.served_count(), 1);
    }

    #[test]
    fn speculation_requires_memoization_and_workers() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        assert!(Evaluator::uncached(&mut engine).speculation(4).is_none());
        assert!(Evaluator::new(&mut engine).speculation(0).is_none());
    }
}
