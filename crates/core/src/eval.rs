//! Memoized experiment evaluation.
//!
//! Every layer of the search re-measures workloads it has already seen: the
//! annealing walk re-proposes recently rejected points, the MFS extractor
//! re-measures the anomalous point it was handed and probes overlapping
//! neighbourhoods across extractions, and the monitor's §6 procedure samples
//! the same experiment four times per iteration. On real hardware those
//! repeats are unavoidable (and the campaign's *simulated* cost accounting
//! keeps charging them — each repeat still costs 20–60 simulated seconds, so
//! Figures 4–6 are unchanged); in the simulator they are pure recompute.
//!
//! [`Evaluator`] wraps [`WorkloadEngine::measure`] with a memo cache keyed
//! by the canonical [`SearchPoint`]. This is sound because the engine is
//! deterministic: [`Subsystem::evaluate`](collie_rnic::subsystem::Subsystem)
//! resets all counter and switch state on entry, so a measurement is a pure
//! function of the point (see the determinism test below and the contract
//! note on [`WorkloadEngine::measure`]). Campaigns route every experiment —
//! search, counter ranking, and MFS probing — through one shared evaluator,
//! so an extraction's probes warm the cache for the next one.

use crate::engine::WorkloadEngine;
use crate::monitor::{AnomalyMonitor, AnomalyVerdict};
use crate::space::SearchPoint;
use collie_rnic::subsystem::{Measurement, Subsystem};
use std::collections::HashMap;

/// Cache effectiveness counters of one [`Evaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Measurements answered from the memo cache.
    pub hits: u64,
    /// Measurements that ran the flow model (and filled the cache).
    pub misses: u64,
}

impl EvalStats {
    /// Fraction of measurements answered from the cache (0 when nothing was
    /// measured).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A memoizing wrapper around one engine.
///
/// The evaluator does **not** do cost accounting: callers (the campaign,
/// the extractor) keep charging [`WorkloadEngine::experiment_cost`] per
/// measurement whether or not it hit the cache, because on hardware the
/// repeat would have to run. Memoization only skips the flow-model
/// recompute.
#[derive(Debug)]
pub struct Evaluator<'e> {
    engine: &'e mut WorkloadEngine,
    cache: HashMap<SearchPoint, Measurement>,
    memoize: bool,
    stats: EvalStats,
}

impl<'e> Evaluator<'e> {
    /// A memoizing evaluator over `engine`.
    pub fn new(engine: &'e mut WorkloadEngine) -> Self {
        Evaluator {
            engine,
            cache: HashMap::new(),
            memoize: true,
            stats: EvalStats::default(),
        }
    }

    /// An evaluator that always recomputes (the uncached reference path,
    /// used by the ablation bench and the bit-identity tests).
    pub fn uncached(engine: &'e mut WorkloadEngine) -> Self {
        Evaluator {
            memoize: false,
            ..Evaluator::new(engine)
        }
    }

    /// Measure one point, answering from the memo cache when the identical
    /// point was measured before.
    pub fn measure(&mut self, point: &SearchPoint) -> Measurement {
        if !self.memoize {
            self.stats.misses += 1;
            return self.engine.measure(point);
        }
        if let Some(measurement) = self.cache.get(point) {
            self.stats.hits += 1;
            return measurement.clone();
        }
        self.stats.misses += 1;
        let measurement = self.engine.measure(point);
        self.cache.insert(point.clone(), measurement.clone());
        measurement
    }

    /// The paper's §6 measurement procedure through the cache: sample the
    /// experiment `samples_per_iteration` times (repeats are cache hits)
    /// and assess the final sample. The engine is deterministic, so every
    /// sample is identical and no averaging is needed — the repeats exist
    /// for procedural fidelity, exactly as
    /// [`AnomalyMonitor::measure_and_assess`] documents; a future noisy
    /// engine would have to add real averaging here.
    pub fn measure_and_assess(
        &mut self,
        monitor: &AnomalyMonitor,
        point: &SearchPoint,
    ) -> (Measurement, AnomalyVerdict) {
        let mut last = None;
        for _ in 0..monitor.samples_per_iteration.max(1) {
            last = Some(self.measure(point));
        }
        let measurement = last.expect("at least one sample");
        let verdict = monitor.assess(&measurement, &self.subsystem().rnic);
        (measurement, verdict)
    }

    /// The subsystem under test.
    pub fn subsystem(&self) -> &Subsystem {
        self.engine.subsystem()
    }

    /// Ground-truth oracle pass-through (scoring only; see
    /// [`WorkloadEngine::ground_truth`]).
    pub fn ground_truth(&self, point: &SearchPoint) -> Vec<&'static str> {
        self.engine.ground_truth(point)
    }

    /// Cache hit/miss counters so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Number of distinct points held in the cache.
    pub fn cached_points(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_rnic::subsystems::SubsystemId;
    use collie_rnic::workload::{Opcode, Transport};

    fn anomalous_point() -> SearchPoint {
        let mut p = SearchPoint::benign();
        p.transport = Transport::Ud;
        p.opcode = Opcode::Send;
        p.wqe_batch = 64;
        p.recv_queue_depth = 256;
        p.mtu = 2048;
        p.messages = vec![2048];
        p
    }

    #[test]
    fn repeated_measurements_hit_the_cache_and_agree() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let p = anomalous_point();
        let first = evaluator.measure(&p);
        let second = evaluator.measure(&p);
        assert_eq!(first, second);
        assert_eq!(evaluator.stats(), EvalStats { hits: 1, misses: 1 });
        assert_eq!(evaluator.cached_points(), 1);
    }

    #[test]
    fn engine_is_deterministic_so_memoization_is_sound() {
        // The cache substitutes a stored measurement for a recompute; this
        // pins the property that makes the substitution exact.
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let p = anomalous_point();
        let a = engine.measure(&p);
        let _ = engine.measure(&SearchPoint::benign());
        let b = engine.measure(&p);
        assert_eq!(a, b, "measure must be a pure function of the point");
    }

    #[test]
    fn uncached_evaluator_never_hits() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::uncached(&mut engine);
        let p = SearchPoint::benign();
        let a = evaluator.measure(&p);
        let b = evaluator.measure(&p);
        assert_eq!(a, b);
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 2 });
        assert_eq!(evaluator.cached_points(), 0);
    }

    #[test]
    fn distinct_points_occupy_distinct_slots() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let mut p = SearchPoint::benign();
        evaluator.measure(&p);
        p.num_qps *= 2;
        evaluator.measure(&p);
        assert_eq!(evaluator.stats(), EvalStats { hits: 0, misses: 2 });
        assert_eq!(evaluator.cached_points(), 2);
    }

    #[test]
    fn measure_and_assess_samples_through_the_cache() {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let mut evaluator = Evaluator::new(&mut engine);
        let monitor = AnomalyMonitor::new();
        let (_, verdict) = evaluator.measure_and_assess(&monitor, &anomalous_point());
        assert!(verdict.is_anomalous());
        // Four samples per iteration: one compute, three cache hits.
        assert_eq!(evaluator.stats(), EvalStats { hits: 3, misses: 1 });
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(EvalStats::default().hit_rate(), 0.0);
        let stats = EvalStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }
}
