//! Application guidance (§7.3).
//!
//! Collie's output is only useful if developers can act on it. The paper
//! describes two workflows, both reproduced here:
//!
//! * **Anomaly prevention** — before an application is built, restrict the
//!   search space to the workloads the application could possibly generate
//!   and report which anomalies remain reachable, together with the
//!   condition the developers should design around (the RPC-library case
//!   study).
//! * **Debugging / bypassing** — when a deployed application hits an
//!   anomaly, describe its workload as a search point, match it against the
//!   known MFS set, and suggest which necessary condition to break while
//!   waiting for a vendor fix (the BytePS / DML case study).

use crate::catalog::KnownAnomaly;
use crate::monitor::{FeatureCondition, Mfs};
use crate::space::{Feature, SearchPoint, SpaceRestriction};
use collie_rnic::subsystems::SubsystemId;
use serde::{Deserialize, Serialize};

/// A recommendation produced by the advisor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suggestion {
    /// Which anomaly the suggestion is about (paper id when known).
    pub anomaly: String,
    /// The matched necessary conditions, human readable.
    pub matched_conditions: Vec<String>,
    /// What to change to break the trigger.
    pub recommendation: String,
}

/// Matches applications and design envelopes against known anomalies.
#[derive(Debug, Clone)]
pub struct Advisor {
    /// The catalogued anomalies of the subsystem under consideration.
    pub known: Vec<KnownAnomaly>,
    /// MFSes discovered by search campaigns (may overlap with the catalog).
    pub discovered: Vec<Mfs>,
}

impl Advisor {
    /// An advisor armed with the catalogued anomalies of `subsystem`.
    pub fn for_subsystem(subsystem: SubsystemId) -> Advisor {
        Advisor {
            known: KnownAnomaly::for_subsystem(subsystem),
            discovered: Vec::new(),
        }
    }

    /// Add MFSes discovered by a search campaign.
    pub fn with_discovered(mut self, discovered: Vec<Mfs>) -> Advisor {
        self.discovered = discovered;
        self
    }

    /// Anomaly-prevention workflow: which catalogued anomalies could an
    /// application whose workloads stay inside `restriction` still trigger?
    pub fn reachable_anomalies(&self, restriction: &SpaceRestriction) -> Vec<&KnownAnomaly> {
        self.known
            .iter()
            .filter(|a| restriction.allows(&a.trigger))
            .collect()
    }

    /// Anomaly-prevention workflow, with advice: for every reachable
    /// anomaly, spell out the design constraint that avoids it.
    pub fn prevention_report(&self, restriction: &SpaceRestriction) -> Vec<Suggestion> {
        self.reachable_anomalies(restriction)
            .into_iter()
            .map(|a| Suggestion {
                anomaly: format!("#{} ({})", a.id, a.symptom),
                matched_conditions: a.conditions.clone(),
                recommendation: format!(
                    "design the application so that at least one of these conditions can never \
                     hold: {}",
                    a.conditions.join("; ")
                ),
            })
            .collect()
    }

    /// Debugging workflow: match a running application's workload against
    /// the discovered MFS set (and the catalog) and suggest which condition
    /// to break.
    pub fn diagnose(&self, workload: &SearchPoint) -> Vec<Suggestion> {
        let mut suggestions = Vec::new();

        for mfs in &self.discovered {
            // An MFS with no recorded conditions matches every workload and
            // offers nothing to break; it carries no diagnostic value.
            if mfs.is_empty() {
                continue;
            }
            if mfs.matches(workload) {
                let conditions: Vec<String> = mfs
                    .conditions
                    .iter()
                    .map(|(f, c)| format!("{f} {c}"))
                    .collect();
                suggestions.push(Suggestion {
                    anomaly: format!("discovered anomaly ({})", mfs.symptom),
                    matched_conditions: conditions.clone(),
                    recommendation: recommend_break(&mfs.conditions_iter().collect::<Vec<_>>()),
                });
            }
        }
        for known in &self.known {
            if Self::workload_resembles(known, workload) {
                suggestions.push(Suggestion {
                    anomaly: format!("#{} ({})", known.id, known.symptom),
                    matched_conditions: known.conditions.clone(),
                    recommendation: format!(
                        "change the workload so that one of these no longer holds: {}",
                        known.conditions.join("; ")
                    ),
                });
            }
        }
        suggestions
    }

    /// Conservative resemblance check between an application workload and a
    /// catalogued trigger: same transport/opcode family and the same
    /// qualitative traffic layout.
    fn workload_resembles(known: &KnownAnomaly, workload: &SearchPoint) -> bool {
        let t = &known.trigger;
        t.transport == workload.transport
            && t.opcode == workload.opcode
            && t.bidirectional == workload.bidirectional
            && t.with_loopback == workload.with_loopback
            && workload.num_qps * 2 >= t.num_qps
            && workload.wqe_batch * 2 >= t.wqe_batch
            && workload.sge_per_wqe >= t.sge_per_wqe
    }
}

impl Mfs {
    fn conditions_iter(&self) -> impl Iterator<Item = (&Feature, &FeatureCondition)> {
        self.conditions.iter()
    }
}

fn recommend_break(conditions: &[(&Feature, &FeatureCondition)]) -> String {
    // Prefer suggesting the easiest knob to change: batching and queue
    // depths first, then message pattern, then transport.
    let priority = |f: &Feature| match f {
        Feature::WqeBatch | Feature::SendQueueDepth | Feature::RecvQueueDepth => 0,
        Feature::MessagePattern | Feature::SgePerWqe => 1,
        Feature::NumQps | Feature::MrsPerQp | Feature::MrSize => 2,
        Feature::Mtu => 3,
        Feature::SrcMemory | Feature::DstMemory | Feature::Loopback | Feature::Bidirectional => 4,
        Feature::Transport | Feature::Opcode => 5,
    };
    let mut sorted: Vec<_> = conditions.to_vec();
    sorted.sort_by_key(|(f, _)| priority(f));
    match sorted.first() {
        Some((feature, condition)) => format!(
            "break the '{feature} {condition}' condition (the cheapest of the matched \
             conditions to change)"
        ),
        None => "no necessary condition recorded".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_rnic::workload::{Opcode, Transport};

    #[test]
    fn rpc_restriction_still_reaches_read_and_send_anomalies() {
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        let restriction = SpaceRestriction::rpc_library();
        let reachable: Vec<u32> = advisor
            .reachable_anomalies(&restriction)
            .iter()
            .map(|a| a.id)
            .collect();
        // The paper's §7.3 case study: the RC-only RPC library can still hit
        // the bidirectional READ anomaly (#4) and the RC SEND anomaly (#5).
        assert!(reachable.contains(&4), "reachable = {reachable:?}");
        assert!(reachable.contains(&5), "reachable = {reachable:?}");
        // UD-only anomalies are out of reach for an RC-only library.
        assert!(!reachable.contains(&1));
        assert!(!reachable.contains(&2));
        // Loopback and GPU anomalies are excluded by the envelope.
        assert!(!reachable.contains(&13));
        assert!(!reachable.contains(&12));
        let report = advisor.prevention_report(&restriction);
        assert_eq!(report.len(), reachable.len());
        assert!(report.iter().all(|s| !s.recommendation.is_empty()));
    }

    #[test]
    fn dml_workload_matches_anomaly_9_and_gets_a_bypass_suggestion() {
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        // The BytePS-style workload of §2.2/§7.3: bidirectional RC WRITE
        // with a long SG list mixing tensor payloads and small metadata.
        let mut workload = SearchPoint::benign();
        workload.transport = Transport::Rc;
        workload.opcode = Opcode::Write;
        workload.bidirectional = true;
        workload.num_qps = 8;
        workload.sge_per_wqe = 3;
        workload.wqe_batch = 8;
        workload.messages = vec![128, 64 * 1024, 1024];
        let suggestions = advisor.diagnose(&workload);
        assert!(
            suggestions.iter().any(|s| s.anomaly.starts_with("#9")),
            "{suggestions:?}"
        );
    }

    #[test]
    fn benign_workload_gets_no_suggestions() {
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        let suggestions = advisor.diagnose(&SearchPoint::benign());
        assert!(suggestions.is_empty(), "{suggestions:?}");
    }

    #[test]
    fn unrestricted_envelope_reaches_every_catalogued_anomaly_of_f() {
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        let reachable = advisor.reachable_anomalies(&SpaceRestriction::unrestricted());
        assert_eq!(reachable.len(), 13);
    }
}
