//! Application guidance (§7.3).
//!
//! Collie's output is only useful if developers can act on it. The paper
//! describes two workflows, both reproduced here:
//!
//! * **Anomaly prevention** — before an application is built, restrict the
//!   search space to the workloads the application could possibly generate
//!   and report which anomalies remain reachable, together with the
//!   condition the developers should design around (the RPC-library case
//!   study).
//! * **Debugging / bypassing** — when a deployed application hits an
//!   anomaly, describe its workload as a search point, match it against the
//!   known MFS set, and suggest which necessary condition to break while
//!   waiting for a vendor fix (the BytePS / DML case study).

use crate::catalog::KnownAnomaly;
use crate::mitigation::RemediationPlan;
use crate::monitor::{FeatureCondition, Mfs};
use crate::space::{Feature, SearchPoint, SpaceRestriction};
use collie_rnic::subsystems::SubsystemId;
use serde::{Deserialize, Serialize};

/// A recommendation produced by the advisor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suggestion {
    /// Which anomaly the suggestion is about (paper id when known).
    pub anomaly: String,
    /// The matched necessary conditions, human readable.
    pub matched_conditions: Vec<String>,
    /// What to change to break the trigger.
    pub recommendation: String,
}

/// Matches applications and design envelopes against known anomalies.
#[derive(Debug, Clone)]
pub struct Advisor {
    /// The catalogued anomalies of the subsystem under consideration.
    pub known: Vec<KnownAnomaly>,
    /// MFSes discovered by search campaigns (may overlap with the catalog).
    pub discovered: Vec<Mfs>,
}

impl Advisor {
    /// An advisor armed with the catalogued anomalies of `subsystem`.
    pub fn for_subsystem(subsystem: SubsystemId) -> Advisor {
        Advisor {
            known: KnownAnomaly::for_subsystem(subsystem),
            discovered: Vec::new(),
        }
    }

    /// Add MFSes discovered by a search campaign.
    pub fn with_discovered(mut self, discovered: Vec<Mfs>) -> Advisor {
        self.discovered = discovered;
        self
    }

    /// Anomaly-prevention workflow: which catalogued anomalies could an
    /// application whose workloads stay inside `restriction` still trigger?
    pub fn reachable_anomalies(&self, restriction: &SpaceRestriction) -> Vec<&KnownAnomaly> {
        self.known
            .iter()
            .filter(|a| restriction.allows(&a.trigger))
            .collect()
    }

    /// Anomaly-prevention workflow, with advice: for every reachable
    /// anomaly, spell out the design constraint that avoids it.
    pub fn prevention_report(&self, restriction: &SpaceRestriction) -> Vec<Suggestion> {
        self.reachable_anomalies(restriction)
            .into_iter()
            .map(|a| Suggestion {
                anomaly: format!("#{} ({})", a.id, a.symptom),
                matched_conditions: a.conditions.clone(),
                recommendation: format!(
                    "design the application so that at least one of these conditions can never \
                     hold: {}",
                    a.conditions.join("; ")
                ),
            })
            .collect()
    }

    /// Debugging workflow: match a running application's workload against
    /// the discovered MFS set (and the catalog) and suggest which condition
    /// to break.
    pub fn diagnose(&self, workload: &SearchPoint) -> Vec<Suggestion> {
        let mut suggestions = Vec::new();

        // An MFS with no recorded conditions matches every workload and
        // offers nothing to break; it carries no diagnostic value.
        let matched_mfses: Vec<&Mfs> = self
            .discovered
            .iter()
            .filter(|mfs| !mfs.is_empty() && mfs.matches(workload))
            .collect();
        for mfs in &matched_mfses {
            let conditions: Vec<String> = mfs
                .conditions
                .iter()
                .map(|(f, c)| format!("{f} {c}"))
                .collect();
            suggestions.push(Suggestion {
                anomaly: format!("discovered anomaly ({})", mfs.symptom),
                matched_conditions: conditions,
                recommendation: recommend_break(&mfs.conditions_iter().collect::<Vec<_>>()),
            });
        }
        for known in &self.known {
            if !Self::workload_resembles(known, workload) {
                continue;
            }
            // Dedup by anomaly identity: a matched discovered MFS with the
            // same symptom whose region contains the catalogued trigger is
            // this anomaly re-found by a campaign, and its (sharper)
            // suggestion is already in the list.
            if matched_mfses
                .iter()
                .any(|mfs| mfs.symptom == known.symptom && mfs.matches(&known.trigger))
            {
                continue;
            }
            suggestions.push(Suggestion {
                anomaly: format!("#{} ({})", known.id, known.symptom),
                matched_conditions: known.conditions.clone(),
                recommendation: recommend_break_text(&known.conditions),
            });
        }
        suggestions
    }

    /// Remediation workflow: the documented [`RemediationPlan`] of every
    /// catalogued anomaly this workload resembles, in catalog order. Plans
    /// may be empty (the paper reports no fix and no bypass); callers decide
    /// how to record that honestly.
    pub fn remediation_plans(&self, workload: &SearchPoint) -> Vec<RemediationPlan> {
        self.known
            .iter()
            .filter(|known| Self::workload_resembles(known, workload))
            .map(RemediationPlan::for_anomaly)
            .collect()
    }

    /// Conservative resemblance check between an application workload and a
    /// catalogued trigger: same transport/opcode family and the same
    /// qualitative traffic layout. Scale comparisons saturate: a workload
    /// bigger than any catalogued trigger must still resemble it, so the
    /// doubling headroom must not wrap for huge deployments.
    fn workload_resembles(known: &KnownAnomaly, workload: &SearchPoint) -> bool {
        let t = &known.trigger;
        t.transport == workload.transport
            && t.opcode == workload.opcode
            && t.bidirectional == workload.bidirectional
            && t.with_loopback == workload.with_loopback
            && workload.num_qps.saturating_mul(2) >= t.num_qps
            && workload.wqe_batch.saturating_mul(2) >= t.wqe_batch
            && workload.sge_per_wqe >= t.sge_per_wqe
    }
}

impl Mfs {
    fn conditions_iter(&self) -> impl Iterator<Item = (&Feature, &FeatureCondition)> {
        self.conditions.iter()
    }
}

fn recommend_break(conditions: &[(&Feature, &FeatureCondition)]) -> String {
    // Prefer suggesting the easiest knob to change: batching and queue
    // depths first, then message pattern, then transport.
    let priority = |f: &Feature| match f {
        Feature::WqeBatch | Feature::SendQueueDepth | Feature::RecvQueueDepth => 0,
        Feature::MessagePattern | Feature::SgePerWqe => 1,
        Feature::NumQps | Feature::MrsPerQp | Feature::MrSize => 2,
        Feature::Mtu => 3,
        Feature::SrcMemory | Feature::DstMemory | Feature::Loopback | Feature::Bidirectional => 4,
        Feature::Transport | Feature::Opcode => 5,
    };
    let mut sorted: Vec<_> = conditions.to_vec();
    sorted.sort_by_key(|(f, _)| priority(f));
    match sorted.first() {
        Some((feature, condition)) => format!(
            "break the '{feature} {condition}' condition (the cheapest of the matched \
             conditions to change)"
        ),
        None => "no necessary condition recorded".to_string(),
    }
}

/// The text twin of [`recommend_break`] for catalogued anomalies, whose
/// necessary conditions are the human-readable Table-2 strings rather than
/// [`Feature`] conditions. The same cheapest-knob ladder, keyed on the
/// Table-2 vocabulary: batching/queue depths first, then message layout,
/// then connection/MR scale, MTU, placement, and finally transport/opcode
/// or host-platform conditions an application cannot cheaply change.
fn recommend_break_text(conditions: &[String]) -> String {
    let priority = |condition: &str| {
        let c = condition.to_ascii_lowercase();
        if c.contains("wqe batch") || c.contains("batching") || c.contains("work queue") {
            0
        } else if c.contains("message") || c.contains("sg list") {
            1
        } else if c.contains("qp") || c.contains("mr") {
            2
        } else if c.contains("mtu") {
            3
        } else if c.contains("memory")
            || c.contains("loopback")
            || c.contains("bidirectional")
            || c.contains("gpu")
            || c.contains("socket")
        {
            4
        } else {
            5
        }
    };
    let mut sorted: Vec<&String> = conditions.iter().collect();
    sorted.sort_by_key(|c| priority(c));
    match sorted.first() {
        Some(condition) => format!(
            "break the '{condition}' condition (the cheapest of the matched conditions to change)"
        ),
        None => "no necessary condition recorded".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_rnic::workload::{Opcode, Transport};

    #[test]
    fn rpc_restriction_still_reaches_read_and_send_anomalies() {
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        let restriction = SpaceRestriction::rpc_library();
        let reachable: Vec<u32> = advisor
            .reachable_anomalies(&restriction)
            .iter()
            .map(|a| a.id)
            .collect();
        // The paper's §7.3 case study: the RC-only RPC library can still hit
        // the bidirectional READ anomaly (#4) and the RC SEND anomaly (#5).
        assert!(reachable.contains(&4), "reachable = {reachable:?}");
        assert!(reachable.contains(&5), "reachable = {reachable:?}");
        // UD-only anomalies are out of reach for an RC-only library.
        assert!(!reachable.contains(&1));
        assert!(!reachable.contains(&2));
        // Loopback and GPU anomalies are excluded by the envelope.
        assert!(!reachable.contains(&13));
        assert!(!reachable.contains(&12));
        let report = advisor.prevention_report(&restriction);
        assert_eq!(report.len(), reachable.len());
        assert!(report.iter().all(|s| !s.recommendation.is_empty()));
    }

    #[test]
    fn dml_workload_matches_anomaly_9_and_gets_a_bypass_suggestion() {
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        // The BytePS-style workload of §2.2/§7.3: bidirectional RC WRITE
        // with a long SG list mixing tensor payloads and small metadata.
        let mut workload = SearchPoint::benign();
        workload.transport = Transport::Rc;
        workload.opcode = Opcode::Write;
        workload.bidirectional = true;
        workload.num_qps = 8;
        workload.sge_per_wqe = 3;
        workload.wqe_batch = 8;
        workload.messages = vec![128, 64 * 1024, 1024];
        let suggestions = advisor.diagnose(&workload);
        assert!(
            suggestions.iter().any(|s| s.anomaly.starts_with("#9")),
            "{suggestions:?}"
        );
    }

    /// The BytePS-style workload of §2.2/§7.3 that resembles anomaly #9.
    fn dml_workload() -> SearchPoint {
        let mut workload = SearchPoint::benign();
        workload.transport = Transport::Rc;
        workload.opcode = Opcode::Write;
        workload.bidirectional = true;
        workload.num_qps = 8;
        workload.sge_per_wqe = 3;
        workload.wqe_batch = 8;
        workload.messages = vec![128, 64 * 1024, 1024];
        workload
    }

    /// An MFS as a campaign would extract it when it re-finds anomaly #9:
    /// same symptom, and a condition region containing #9's catalogued
    /// trigger (8 QPs, SG list 3).
    fn mfs_mirroring_anomaly_9() -> Mfs {
        let mut conditions = std::collections::BTreeMap::new();
        conditions.insert(Feature::SgePerWqe, FeatureCondition::AtLeast(3));
        conditions.insert(Feature::NumQps, FeatureCondition::AtLeast(8));
        Mfs {
            symptom: crate::monitor::Symptom::PauseStorm,
            conditions,
            example: KnownAnomaly::by_id(9).unwrap().trigger,
        }
    }

    #[test]
    fn discovered_mfs_shadowing_its_catalogued_twin_is_not_reported_twice() {
        let workload = dml_workload();
        let mfs = mfs_mirroring_anomaly_9();
        assert!(mfs.matches(&workload));
        assert!(mfs.matches(&KnownAnomaly::by_id(9).unwrap().trigger));

        let advisor = Advisor::for_subsystem(SubsystemId::F).with_discovered(vec![mfs]);
        let suggestions = advisor.diagnose(&workload);
        // One suggestion for the discovered MFS, none re-reporting #9.
        assert_eq!(
            suggestions
                .iter()
                .filter(|s| s.anomaly.starts_with("discovered"))
                .count(),
            1,
            "{suggestions:?}"
        );
        assert!(
            !suggestions.iter().any(|s| s.anomaly.starts_with("#9")),
            "catalogued twin of the discovered MFS reported twice: {suggestions:?}"
        );
    }

    #[test]
    fn catalogued_suggestions_use_the_cheapest_knob_prioritisation() {
        // No discovered MFS: the catalogued branch alone must still rank
        // the matched conditions and point at the cheapest one ("SG list
        // >= 3" for #9, not the bidirectional layout or the host platform).
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        let suggestions = advisor.diagnose(&dml_workload());
        let nine = suggestions
            .iter()
            .find(|s| s.anomaly.starts_with("#9"))
            .expect("the DML workload resembles #9");
        assert!(
            nine.recommendation.starts_with("break the '"),
            "{}",
            nine.recommendation
        );
        assert!(
            nine.recommendation.contains("SG list >= 3"),
            "{}",
            nine.recommendation
        );
    }

    #[test]
    fn huge_workloads_still_resemble_catalogued_triggers() {
        // Boundary: num_qps/wqe_batch large enough that doubling them
        // overflows u32 (2^31 * 2 wraps to 0). The workload is strictly
        // bigger than #4's trigger on every axis, so it must match; before
        // the saturating_mul fix the wrap silently failed the comparison in
        // release mode (and panicked in debug).
        let mut workload = SearchPoint::benign();
        workload.transport = Transport::Rc;
        workload.opcode = Opcode::Read;
        workload.bidirectional = true;
        workload.num_qps = 1 << 31;
        workload.wqe_batch = 1 << 31;
        workload.sge_per_wqe = 4;
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        let suggestions = advisor.diagnose(&workload);
        assert!(
            suggestions.iter().any(|s| s.anomaly.starts_with("#4")),
            "{suggestions:?}"
        );
    }

    #[test]
    fn remediation_plans_cover_every_resembled_anomaly() {
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        let plans = advisor.remediation_plans(&dml_workload());
        assert!(
            plans.iter().any(|p| p.anomaly_id == 9 && p.has_fix()),
            "{plans:?}"
        );
        // Benign workloads resemble nothing.
        assert!(advisor.remediation_plans(&SearchPoint::benign()).is_empty());
    }

    #[test]
    fn benign_workload_gets_no_suggestions() {
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        let suggestions = advisor.diagnose(&SearchPoint::benign());
        assert!(suggestions.is_empty(), "{suggestions:?}");
    }

    #[test]
    fn unrestricted_envelope_reaches_every_catalogued_anomaly_of_f() {
        let advisor = Advisor::for_subsystem(SubsystemId::F);
        let reachable = advisor.reachable_anomalies(&SpaceRestriction::unrestricted());
        assert_eq!(reachable.len(), 13);
    }
}
