//! Ground-truth anomaly catalog (Table 2 / Appendix A).
//!
//! The paper evaluates Collie against a fixed set of anomalies: three that
//! were already known from production and fifteen new ones, each with the
//! necessary trigger conditions of Table 2 and a simplified concrete
//! trigger setting in Appendix A. This module encodes all eighteen —
//! including the concrete settings — so that:
//!
//! * the `table2` harness can replay every anomaly and verify the modelled
//!   subsystem reproduces its symptom (and stops reproducing it when a
//!   necessary condition is broken), and
//! * search campaigns can be scored by which catalogued anomalies they
//!   discovered (the y-axes of Figures 4 and 5).
//!
//! The catalog is evaluation-side ground truth. The search itself never
//! reads it.

use crate::monitor::Symptom;
use crate::space::SearchPoint;
use collie_host::memory::MemoryTarget;
use collie_rnic::subsystems::SubsystemId;
use collie_rnic::workload::{Opcode, Transport};
use serde::{Deserialize, Serialize};

/// One catalogued anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnownAnomaly {
    /// Paper numbering (1–18).
    pub id: u32,
    /// The ground-truth rule identifier used by the subsystem model
    /// (`collie/<id>`).
    pub rule: String,
    /// Whether the anomaly was known before Collie (the three "old"
    /// anomalies #9, #12, #13) or newly found by it.
    pub new: bool,
    /// The Table-1 subsystem it is reported on (F for the ConnectX-6
    /// anomalies, H for the Broadcom ones).
    pub subsystem: SubsystemId,
    /// The observed symptom.
    pub symptom: Symptom,
    /// The necessary-conditions column of Table 2, as human-readable text.
    pub conditions: Vec<String>,
    /// The simplified concrete trigger setting of Appendix A.
    pub trigger: SearchPoint,
}

impl KnownAnomaly {
    /// All eighteen anomalies, in paper order.
    pub fn all() -> Vec<KnownAnomaly> {
        vec![
            // ---- Subsystem F (ConnectX-6) ------------------------------
            anomaly(
                1,
                true,
                SubsystemId::F,
                Symptom::PauseStorm,
                &["UD SEND", "WQE batch >= 64", "work queue >= 256"],
                |p| {
                    p.transport = Transport::Ud;
                    p.opcode = Opcode::Send;
                    p.num_qps = 1;
                    p.wqe_batch = 64;
                    p.send_queue_depth = 256;
                    p.recv_queue_depth = 256;
                    p.mtu = 2048;
                    p.messages = vec![2048];
                },
            ),
            anomaly(
                2,
                true,
                SubsystemId::F,
                Symptom::LowThroughput,
                &[
                    "UD SEND",
                    "WQE batch <= 8",
                    "work queue >= 1024",
                    "messages <= 1KB",
                    ">= 16 QPs",
                ],
                |p| {
                    p.transport = Transport::Ud;
                    p.opcode = Opcode::Send;
                    p.num_qps = 16;
                    p.wqe_batch = 4;
                    p.send_queue_depth = 1024;
                    p.recv_queue_depth = 1024;
                    p.mtu = 1024;
                    p.messages = vec![1024];
                },
            ),
            anomaly(
                3,
                true,
                SubsystemId::F,
                Symptom::PauseStorm,
                &["RC READ", "MTU <= 1024", "messages >= 16KB"],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Read;
                    p.num_qps = 8;
                    p.mr_size_bytes = 4 * 1024 * 1024;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 1024;
                    p.wqe_batch = 1;
                    p.messages = vec![4 * 1024 * 1024];
                },
            ),
            anomaly(
                4,
                true,
                SubsystemId::F,
                Symptom::PauseStorm,
                &[
                    "bidirectional RC READ",
                    "WQE batch >= 32",
                    "SG list >= 4",
                    ">= ~160 QPs",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Read;
                    p.bidirectional = true;
                    p.num_qps = 80;
                    p.wqe_batch = 128;
                    p.sge_per_wqe = 4;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 4096;
                    p.messages = vec![128];
                },
            ),
            anomaly(
                5,
                true,
                SubsystemId::F,
                Symptom::PauseStorm,
                &[
                    "RC SEND",
                    "MTU <= 1024",
                    "WQE batch >= 64",
                    "work queue >= 1024",
                    "messages 2KB..8KB",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Send;
                    p.num_qps = 1;
                    p.wqe_batch = 64;
                    p.sge_per_wqe = 2;
                    p.send_queue_depth = 1024;
                    p.recv_queue_depth = 1024;
                    p.mtu = 1024;
                    p.messages = vec![2048];
                },
            ),
            anomaly(
                6,
                true,
                SubsystemId::F,
                Symptom::LowThroughput,
                &[
                    "RC SEND",
                    "MTU <= 1024",
                    "WQE batch <= 16",
                    "SG list >= 2",
                    "work queue >= 1024",
                    "messages <= 1KB",
                    ">= ~32 QPs",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Send;
                    p.num_qps = 32;
                    p.wqe_batch = 8;
                    p.sge_per_wqe = 2;
                    p.send_queue_depth = 1024;
                    p.recv_queue_depth = 1024;
                    p.mtu = 1024;
                    p.messages = vec![1024];
                },
            ),
            anomaly(
                7,
                true,
                SubsystemId::F,
                Symptom::LowThroughput,
                &[
                    "RC WRITE",
                    "no WQE batching",
                    "messages <= 1KB",
                    "work queue <= 16",
                    ">= ~480 QPs",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Write;
                    p.num_qps = 480;
                    p.wqe_batch = 1;
                    p.send_queue_depth = 16;
                    p.recv_queue_depth = 16;
                    p.mtu = 1024;
                    p.messages = vec![512];
                },
            ),
            anomaly(
                8,
                true,
                SubsystemId::F,
                Symptom::LowThroughput,
                &[
                    "RC WRITE",
                    "no WQE batching",
                    "messages <= 1KB",
                    ">= ~12K MRs",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Write;
                    p.num_qps = 32;
                    p.mrs_per_qp = 1024;
                    p.wqe_batch = 1;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 1024;
                    p.messages = vec![512];
                },
            ),
            anomaly(
                9,
                false,
                SubsystemId::F,
                Symptom::PauseStorm,
                &[
                    "bidirectional",
                    "SG list >= 3",
                    "mix of <=1KB and >=64KB messages",
                    "strict-ordering PCIe host",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Write;
                    p.bidirectional = true;
                    p.num_qps = 8;
                    p.mr_size_bytes = 4 * 1024 * 1024;
                    p.wqe_batch = 8;
                    p.sge_per_wqe = 3;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 4096;
                    p.messages = vec![128, 64 * 1024, 1024];
                },
            ),
            anomaly(
                10,
                true,
                SubsystemId::F,
                Symptom::PauseStorm,
                &[
                    "bidirectional RC WRITE",
                    "WQE batch >= 64",
                    "mix of <=1KB and >=64KB messages",
                    ">= ~320 QPs",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Write;
                    p.bidirectional = true;
                    p.num_qps = 320;
                    p.wqe_batch = 64;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 1024;
                    p.messages = vec![64 * 1024, 128, 128, 128];
                },
            ),
            anomaly(
                11,
                true,
                SubsystemId::F,
                Symptom::PauseStorm,
                &[
                    "bidirectional",
                    "cross-socket source/destination memory",
                    "chiplet-based server",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Write;
                    p.bidirectional = true;
                    p.num_qps = 1;
                    p.mrs_per_qp = 32;
                    p.mr_size_bytes = 4 * 1024 * 1024;
                    p.wqe_batch = 16;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 4096;
                    p.messages = vec![256 * 1024];
                    p.dst_memory = MemoryTarget::HostDram { numa_node: 1 };
                },
            ),
            anomaly(
                12,
                false,
                SubsystemId::F,
                Symptom::PauseStorm,
                &[
                    "GPU-Direct RDMA",
                    "peer-to-peer path detoured through the root complex",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Write;
                    p.bidirectional = true;
                    p.num_qps = 8;
                    p.mr_size_bytes = 4 * 1024 * 1024;
                    p.wqe_batch = 8;
                    p.sge_per_wqe = 3;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 4096;
                    p.messages = vec![128, 64 * 1024, 1024];
                    p.src_memory = MemoryTarget::GpuMemory { gpu_id: 0 };
                    p.dst_memory = MemoryTarget::GpuMemory { gpu_id: 0 };
                },
            ),
            anomaly(
                13,
                false,
                SubsystemId::F,
                Symptom::PauseStorm,
                &["loopback traffic co-existing with receive traffic"],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Write;
                    p.with_loopback = true;
                    p.num_qps = 8;
                    p.mrs_per_qp = 32;
                    p.mr_size_bytes = 4 * 1024 * 1024;
                    p.wqe_batch = 16;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 4096;
                    p.messages = vec![256 * 1024];
                },
            ),
            // ---- Subsystem H (Broadcom P2100G) -------------------------
            anomaly(
                14,
                true,
                SubsystemId::H,
                Symptom::LowThroughput,
                &[
                    "bidirectional RC",
                    "MTU = 4096",
                    "SG list >= 4",
                    ">= ~1300 QPs",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Write;
                    p.bidirectional = true;
                    p.num_qps = 1024;
                    p.mrs_per_qp = 32;
                    p.mr_size_bytes = 256 * 1024;
                    p.wqe_batch = 1;
                    p.sge_per_wqe = 4;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 4096;
                    p.messages = vec![64 * 1024];
                },
            ),
            anomaly(
                15,
                true,
                SubsystemId::H,
                Symptom::PauseStorm,
                &["UD SEND", "work queue >= 64", ">= ~32 QPs"],
                |p| {
                    p.transport = Transport::Ud;
                    p.opcode = Opcode::Send;
                    p.num_qps = 32;
                    p.mr_size_bytes = 4 * 1024;
                    p.wqe_batch = 1;
                    p.send_queue_depth = 64;
                    p.recv_queue_depth = 64;
                    p.mtu = 2048;
                    p.messages = vec![256, 1024, 64, 1024];
                },
            ),
            anomaly(
                16,
                true,
                SubsystemId::H,
                Symptom::PauseStorm,
                &["RC READ", "MTU <= 1024", "WQE batch >= 8", ">= ~500 QPs"],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Read;
                    p.num_qps = 512;
                    p.mr_size_bytes = 256 * 1024;
                    p.wqe_batch = 8;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 1024;
                    p.messages = vec![64 * 1024];
                },
            ),
            anomaly(
                17,
                true,
                SubsystemId::H,
                Symptom::PauseStorm,
                &[
                    "RC SEND",
                    "WQE batch <= 16",
                    "work queue >= 128",
                    "messages <= 1KB",
                    ">= ~64 QPs",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Send;
                    p.num_qps = 80;
                    p.mr_size_bytes = 1024 * 1024;
                    p.wqe_batch = 1;
                    p.send_queue_depth = 128;
                    p.recv_queue_depth = 128;
                    p.mtu = 1024;
                    p.messages = vec![1024];
                },
            ),
            anomaly(
                18,
                true,
                SubsystemId::H,
                Symptom::PauseStorm,
                &[
                    "bidirectional RC WRITE",
                    "MTU <= 1024",
                    "WQE batch >= 16",
                    "messages <= 64KB",
                    ">= ~30 QPs",
                ],
                |p| {
                    p.transport = Transport::Rc;
                    p.opcode = Opcode::Write;
                    p.bidirectional = true;
                    p.num_qps = 16;
                    p.mr_size_bytes = 16 * 1024;
                    p.wqe_batch = 16;
                    p.send_queue_depth = 64;
                    p.recv_queue_depth = 64;
                    p.mtu = 1024;
                    p.messages = vec![64 * 1024];
                },
            ),
        ]
    }

    /// The anomalies reported on one subsystem.
    pub fn for_subsystem(id: SubsystemId) -> Vec<KnownAnomaly> {
        KnownAnomaly::all()
            .into_iter()
            .filter(|a| a.subsystem == id)
            .collect()
    }

    /// Look up an anomaly by its paper number.
    pub fn by_id(id: u32) -> Option<KnownAnomaly> {
        KnownAnomaly::all().into_iter().find(|a| a.id == id)
    }
}

fn anomaly(
    id: u32,
    new: bool,
    subsystem: SubsystemId,
    symptom: Symptom,
    conditions: &[&str],
    configure: impl FnOnce(&mut SearchPoint),
) -> KnownAnomaly {
    let mut trigger = SearchPoint::benign();
    configure(&mut trigger);
    KnownAnomaly {
        id,
        rule: format!("collie/{id}"),
        new,
        subsystem,
        symptom,
        conditions: conditions.iter().map(|s| s.to_string()).collect(),
        trigger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkloadEngine;
    use crate::monitor::AnomalyMonitor;

    #[test]
    fn catalog_has_eighteen_entries_with_consistent_metadata() {
        let all = KnownAnomaly::all();
        assert_eq!(all.len(), 18);
        for (i, a) in all.iter().enumerate() {
            assert_eq!(a.id as usize, i + 1);
            assert_eq!(a.rule, format!("collie/{}", a.id));
            assert!(!a.conditions.is_empty());
        }
        assert_eq!(KnownAnomaly::for_subsystem(SubsystemId::F).len(), 13);
        assert_eq!(KnownAnomaly::for_subsystem(SubsystemId::H).len(), 5);
        // The three previously known anomalies are #9, #12, #13.
        let old: Vec<u32> = all.iter().filter(|a| !a.new).map(|a| a.id).collect();
        assert_eq!(old, vec![9, 12, 13]);
    }

    #[test]
    fn every_concrete_trigger_reproduces_its_anomaly() {
        let monitor = AnomalyMonitor::new();
        for a in KnownAnomaly::all() {
            let mut engine = WorkloadEngine::for_catalog(a.subsystem);
            let (_, verdict) = monitor.measure_and_assess(&mut engine, &a.trigger);
            assert_eq!(
                verdict.symptom,
                Some(a.symptom),
                "anomaly #{} should reproduce with symptom {:?}, got {:?} (pause {:.4}, spec {:.2})",
                a.id,
                a.symptom,
                verdict.symptom,
                verdict.pause_ratio,
                verdict.spec_fraction
            );
            let rules = engine.ground_truth(&a.trigger);
            assert!(
                rules.contains(&a.rule.as_str()),
                "anomaly #{}: ground truth {:?} does not include {}",
                a.id,
                rules,
                a.rule
            );
        }
    }

    #[test]
    fn by_id_lookup() {
        assert_eq!(KnownAnomaly::by_id(4).unwrap().subsystem, SubsystemId::F);
        assert_eq!(KnownAnomaly::by_id(15).unwrap().subsystem, SubsystemId::H);
        assert!(KnownAnomaly::by_id(99).is_none());
    }
}
