//! Serialisable experiment records.
//!
//! The benchmark harness regenerates every table and figure of the paper's
//! evaluation; these row types are the machine-readable form of those
//! outputs (the binaries print them as aligned text and as JSON so that
//! EXPERIMENTS.md can quote them directly).

use crate::fabric::FabricOutcome;
use crate::monitor::Symptom;
use crate::search::SearchOutcome;
use collie_sim::stats::Summary;
use serde::{Deserialize, Serialize};

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Paper anomaly number.
    pub id: u32,
    /// Subsystem label ("F" or "H").
    pub subsystem: String,
    /// RNIC model name.
    pub rnic: String,
    /// Whether the anomaly is new (found by Collie) or previously known.
    pub new: bool,
    /// The necessary conditions.
    pub conditions: Vec<String>,
    /// The expected symptom.
    pub expected_symptom: Symptom,
    /// The symptom the simulated subsystem reproduced (None = no anomaly).
    pub observed_symptom: Option<Symptom>,
    /// Observed pause-duration ratio.
    pub pause_ratio: f64,
    /// Observed best fraction of a specification bound.
    pub spec_fraction: f64,
    /// True when breaking one necessary condition removed the anomaly.
    pub condition_break_verified: bool,
}

impl Table2Row {
    /// Whether the reproduction matches the paper's row.
    pub fn reproduced(&self) -> bool {
        self.observed_symptom == Some(self.expected_symptom)
    }
}

/// One bar of Figure 4 / Figure 5: mean time to find the N-th anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeToFindRow {
    /// Strategy label ("Random", "BO", "Collie(Diag)", …).
    pub strategy: String,
    /// How many distinct catalogued anomalies had been found.
    pub anomalies_found: usize,
    /// Mean minutes of (simulated) running time to reach that count, over
    /// the repeated seeds; `None` if the strategy never reached it.
    pub mean_minutes: Option<f64>,
    /// Standard deviation of the minutes over seeds (the error bars).
    pub std_minutes: f64,
    /// Number of seeds that reached the count.
    pub seeds_reaching: usize,
    /// Total seeds run.
    pub seeds_total: usize,
}

/// One point of the Figure 6 counter trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Simulated minutes since the search started.
    pub minutes: f64,
    /// Normalised counter value in [0, 1].
    pub normalized_value: f64,
    /// True if an anomaly was found at this sample.
    pub anomaly: bool,
}

/// A full Figure 6 series for one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSeries {
    /// Strategy label.
    pub strategy: String,
    /// The samples in time order.
    pub points: Vec<TracePoint>,
}

impl TraceSeries {
    /// Build the series from a search outcome (normalising by the maximum
    /// observed value, as the paper's Figure 6 does).
    pub fn from_outcome(outcome: &SearchOutcome) -> TraceSeries {
        let normalized = outcome.trace.normalized();
        TraceSeries {
            strategy: outcome.label.clone(),
            points: normalized
                .samples()
                .iter()
                .map(|s| TracePoint {
                    minutes: s.at.as_secs_f64() / 60.0,
                    normalized_value: s.value,
                    anomaly: s.anomaly,
                })
                .collect(),
        }
    }
}

/// Aggregate a set of per-seed outcomes into Figure-4/5 rows for one
/// strategy.
pub fn time_to_find_rows(
    label: &str,
    outcomes: &[SearchOutcome],
    max_anomalies: usize,
) -> Vec<TimeToFindRow> {
    let mut rows = Vec::new();
    for n in 0..=max_anomalies {
        if n == 0 {
            rows.push(TimeToFindRow {
                strategy: label.to_string(),
                anomalies_found: 0,
                mean_minutes: Some(0.0),
                std_minutes: 0.0,
                seeds_reaching: outcomes.len(),
                seeds_total: outcomes.len(),
            });
            continue;
        }
        let times: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.time_to_find(n))
            .map(|d| d.as_secs_f64() / 60.0)
            .collect();
        let summary = Summary::of(&times);
        rows.push(TimeToFindRow {
            strategy: label.to_string(),
            anomalies_found: n,
            mean_minutes: if times.is_empty() {
                None
            } else {
                Some(summary.mean)
            },
            std_minutes: summary.std_dev,
            seeds_reaching: times.len(),
            seeds_total: outcomes.len(),
        });
    }
    rows
}

/// One cell of the fabric campaign grid (the `fig7` binary): a strategy ×
/// seed fabric campaign summarised for EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricGridRow {
    /// Strategy label ("Random fabric", "Collie(Diag) fabric", …).
    pub strategy: String,
    /// Campaign seed.
    pub seed: u64,
    /// Total anomalies discovered (MFS extracted per discovery).
    pub discoveries: usize,
    /// Discoveries carrying the cross-host hallmark (victim collapsed,
    /// culprit healthy).
    pub cross_host: usize,
    /// Experiments run (including MFS probes).
    pub experiments: u32,
    /// Points skipped by the fabric MFS filter.
    pub skipped_by_mfs: u32,
    /// Simulated minutes consumed.
    pub simulated_minutes: f64,
    /// Simulated minutes until the first cross-host discovery, if any.
    pub first_cross_host_minutes: Option<f64>,
}

impl FabricGridRow {
    /// Summarise one fabric campaign outcome.
    pub fn from_outcome(outcome: &FabricOutcome, seed: u64) -> FabricGridRow {
        FabricGridRow {
            strategy: outcome.label.clone(),
            seed,
            discoveries: outcome.discoveries.len(),
            cross_host: outcome.cross_host_discoveries().len(),
            experiments: outcome.experiments,
            skipped_by_mfs: outcome.skipped_by_mfs,
            simulated_minutes: outcome.elapsed.as_secs_f64() / 60.0,
            first_cross_host_minutes: outcome
                .discoveries
                .iter()
                .find(|d| d.cross_host)
                .map(|d| d.at.as_secs_f64() / 60.0),
        }
    }
}

/// Render a slice of serialisable rows as pretty JSON (for EXPERIMENTS.md
/// and for machine consumption by plotting scripts).
pub fn to_json<T: Serialize>(rows: &[T]) -> String {
    serde_json::to_string_pretty(rows).unwrap_or_else(|_| "[]".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_sim::series::TimeSeries;
    use collie_sim::time::{SimDuration, SimTime};

    fn outcome_with_milestones(times_minutes: &[u64]) -> SearchOutcome {
        use crate::monitor::{Mfs, Symptom};
        use crate::search::Discovery;
        use crate::space::SearchPoint;
        use std::collections::BTreeMap;
        let discoveries = times_minutes
            .iter()
            .enumerate()
            .map(|(i, &m)| Discovery {
                at: SimDuration::from_secs(m * 60),
                point: SearchPoint::benign(),
                symptom: Symptom::PauseStorm,
                mfs: Mfs {
                    symptom: Symptom::PauseStorm,
                    conditions: BTreeMap::new(),
                    example: SearchPoint::benign(),
                },
                matched_rules: vec![format!("collie/{}", i + 1)],
            })
            .collect();
        SearchOutcome {
            label: "test".to_string(),
            discoveries,
            rule_hits: Vec::new(),
            trace: {
                let mut t = TimeSeries::new("c");
                t.record(SimTime::from_secs(60), 5.0);
                t.record_anomaly(SimTime::from_secs(120), 10.0);
                t
            },
            experiments: 10,
            skipped_by_mfs: 0,
            elapsed: SimDuration::from_secs(3600),
        }
    }

    #[test]
    fn time_to_find_rows_aggregate_seeds() {
        let a = outcome_with_milestones(&[10, 30]);
        let b = outcome_with_milestones(&[20, 40]);
        let rows = time_to_find_rows("Collie", &[a, b], 3);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1].anomalies_found, 1);
        assert_eq!(rows[1].mean_minutes, Some(15.0));
        assert_eq!(rows[1].seeds_reaching, 2);
        assert_eq!(rows[2].mean_minutes, Some(35.0));
        // Neither seed found a third anomaly.
        assert_eq!(rows[3].mean_minutes, None);
        assert_eq!(rows[3].seeds_reaching, 0);
    }

    #[test]
    fn trace_series_is_normalised_and_in_minutes() {
        let outcome = outcome_with_milestones(&[10]);
        let series = TraceSeries::from_outcome(&outcome);
        assert_eq!(series.points.len(), 2);
        assert!((series.points[0].minutes - 1.0).abs() < 1e-9);
        assert!((series.points[1].normalized_value - 1.0).abs() < 1e-9);
        assert!(series.points[1].anomaly);
    }

    #[test]
    fn json_rendering_round_trips() {
        let rows = vec![TimeToFindRow {
            strategy: "Random".to_string(),
            anomalies_found: 1,
            mean_minutes: Some(12.5),
            std_minutes: 1.0,
            seeds_reaching: 3,
            seeds_total: 3,
        }];
        let json = to_json(&rows);
        let parsed: Vec<TimeToFindRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, rows);
    }
}
