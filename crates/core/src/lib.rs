//! # collie-core
//!
//! The paper's primary contribution: a systematic search over RDMA
//! application workloads that uncovers performance anomalies in an RDMA
//! subsystem, guided only by hardware counters.
//!
//! The crate is organised exactly like Figure 2 of the paper:
//!
//! * [`space`] — the four-dimensional workload search space (host topology,
//!   memory allocation, transport setting, message pattern), with bounded
//!   value ladders, random sampling, and single-dimension mutation.
//! * [`engine`] — the workload engine: translates a search point into the
//!   flow-level workload the subsystem model evaluates (and, for
//!   validation, into actual verbs calls against the simulated fabric).
//! * [`eval`] — the memoized evaluation layer: a [`SearchPoint`]-keyed memo
//!   cache over the engine that every campaign routes its experiments
//!   through, so revisited workloads skip the flow-model recompute while
//!   still being charged their simulated hardware cost.
//! * [`monitor`] — the anomaly monitor: the pause-ratio and
//!   throughput-versus-spec detection conditions of §5.2, plus the minimal
//!   feature set (MFS) algorithm that extracts each anomaly's triggering
//!   conditions.
//! * [`search`] — the workload generator: the simulated-annealing search of
//!   Algorithm 1 driving performance counters to low regions and diagnostic
//!   counters to high regions, plus the random-fuzzing and Bayesian-
//!   optimisation baselines of §7.2 and the campaign driver that reproduces
//!   Figures 4–6.
//! * [`catalog`] — the ground-truth catalog of the 18 anomalies of Table 2
//!   with their Appendix-A concrete trigger settings; used by the
//!   benchmarks to score search outcomes and by `table2` to replay each
//!   anomaly.
//! * [`advisor`] — the two §7.3 workflows: anomaly *prevention* (restrict
//!   the space to what an application can generate and report which
//!   anomalies are reachable) and *debugging* (match a running workload
//!   against the discovered MFS set and suggest which condition to break).
//! * [`mitigation`] — the documented vendor fixes and workload bypasses of
//!   §7.1 / Appendix A (seven anomalies were fixed after disclosure; the
//!   rest must be avoided by changing the workload).
//! * [`remedy`] — the discovery → remediation → verification pipeline: the
//!   [`remedy::Qualifier`] re-measures each discovery with the advisor's
//!   mitigations applied one at a time and the persistent
//!   [`remedy::RegressionCatalog`] lets future campaigns skip
//!   known-cleared anomalies and flag regressions.
//! * [`mod@env`] — the single-source-of-truth registry of every `COLLIE_*`
//!   environment hook (name, default, clamp grammar, doc) with the one
//!   set of parsers and typed readers; `collie-lint` enforces statically
//!   that no env read bypasses it.
//! * [`report`] — serialisable experiment records used by the benchmark
//!   harness and EXPERIMENTS.md.
//! * [`fabric`] — the multi-host extension: N hosts on one lossless
//!   switch, PFC pause propagation to upstream ports, and fabric
//!   campaigns that hunt cross-host victim-collapse anomalies over the
//!   extended (workload + fabric) search space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod catalog;
pub mod engine;
pub mod env;
pub mod eval;
pub mod fabric;
pub mod mitigation;
pub mod monitor;
pub mod remedy;
pub mod report;
pub mod search;
pub mod space;

pub use advisor::{Advisor, Suggestion};
pub use catalog::KnownAnomaly;
pub use engine::WorkloadEngine;
pub use eval::{EvalStats, Evaluator};
pub use fabric::{FabricEngine, FabricEvaluator, FabricOutcome, FabricVerdict};
pub use mitigation::{Mitigation, MitigationKind, RemediationPlan};
pub use monitor::{AnomalyMonitor, AnomalyVerdict, Mfs, Symptom};
pub use remedy::{
    DiscoveredTrigger, MitigationStep, QualificationRecord, Qualifier, RegressionCatalog,
    RegressionFlag, Verdict,
};
pub use search::{SearchConfig, SearchOutcome, SearchStrategy, SignalMode};
pub use space::{FabricPoint, FabricSpace, Feature, SearchPoint, SearchSpace};
