//! Host presets used by the Table-1 subsystem catalog.
//!
//! Table 1 of the paper lists eight RDMA subsystems (A–H). The RNIC half of
//! each row lives in `collie-rnic::subsystems`; this module provides the
//! host half: the CPU, PCIe slot, memory and GPU complement of each server
//! type. Names follow the paper's anonymised convention ("Intel(R) Xeon(R)
//! CPU 1", "AMD EPYC CPU 1").

use crate::cpu::CpuModel;
use crate::ddio::DdioModel;
use crate::memory::{GpuDevice, GpuPlacement};
use crate::pcie::{PcieLink, PcieSettings};
use crate::topology::HostConfig;
use collie_sim::units::ByteSize;

/// A dual-(or single-)socket Intel Xeon host with the RNIC on socket 0 and
/// no GPUs. `gen4` selects a PCIe 4.0 x16 slot (subsystem F) instead of the
/// default 3.0 x16.
pub fn intel_xeon_host(name: &str, sockets: u32, dram: ByteSize, gen4: bool) -> HostConfig {
    HostConfig {
        name: name.to_string(),
        cpu: CpuModel::intel_xeon(&format!("Intel(R) Xeon(R) CPU {sockets}"), sockets),
        pcie_link: if gen4 {
            PcieLink::gen4_x16()
        } else {
            PcieLink::gen3_x16()
        },
        pcie_settings: PcieSettings::default(),
        ddio: DdioModel::default(),
        rnic_socket: 0,
        total_dram: dram,
        gpus: Vec::new(),
        bios: "AMI".to_string(),
        kernel: "4.14".to_string(),
    }
}

/// An Intel Xeon GPU host (subsystem C/F shape): V100/A100-class GPUs, one
/// sharing a PCIe switch with the RNIC and one on the remote socket.
pub fn intel_xeon_gpu_host(name: &str, dram: ByteSize, gen4: bool) -> HostConfig {
    let mut host = intel_xeon_host(name, 2, dram, gen4);
    host.gpus = vec![
        GpuDevice {
            id: 0,
            socket: 0,
            placement: GpuPlacement::SameSwitchAsRnic,
        },
        GpuDevice {
            id: 1,
            socket: 0,
            placement: GpuPlacement::SameSocketDifferentSwitch,
        },
        GpuDevice {
            id: 2,
            socket: 1,
            placement: GpuPlacement::RemoteSocket,
        },
    ];
    host.kernel = "5.4".to_string();
    host
}

/// The AMD EPYC GPU host of subsystems E/G: PCIe 4.0, chiplets, eight GPUs
/// spread across two sockets, and the strict-ordering PCIe default that made
/// Anomaly #9 possible (the fix — forced relaxed ordering — is applied by
/// flipping [`PcieSettings::relaxed_ordering`]).
pub fn amd_epyc_gpu_host(name: &str, dram: ByteSize) -> HostConfig {
    let gpus = (0..8)
        .map(|id| GpuDevice {
            id,
            socket: if id < 4 { 0 } else { 1 },
            placement: match id {
                0 | 1 => GpuPlacement::SameSwitchAsRnic,
                2 | 3 => GpuPlacement::SameSocketDifferentSwitch,
                _ => GpuPlacement::RemoteSocket,
            },
        })
        .collect();
    HostConfig {
        name: name.to_string(),
        cpu: CpuModel::amd_epyc("AMD EPYC CPU 1", 1),
        pcie_link: PcieLink::gen4_x16(),
        pcie_settings: PcieSettings::strict_ordering(),
        ddio: DdioModel {
            // AMD's equivalent steering is less aggressive than Intel DDIO.
            enabled: true,
            llc_size: ByteSize::from_mib(256),
            io_way_fraction: 0.08,
            miss_penalty_ns: 70,
        },
        rnic_socket: 0,
        total_dram: dram,
        gpus,
        bios: "AMI".to_string(),
        kernel: "5.4".to_string(),
    }
}

/// The AMD EPYC host of subsystem G (NPS=2, no GPUs, CX-6 VPI).
pub fn amd_epyc_nps2_host(name: &str, dram: ByteSize) -> HostConfig {
    let mut host = amd_epyc_gpu_host(name, dram);
    host.cpu = CpuModel::amd_epyc("AMD EPYC CPU 1", 2);
    host.gpus.clear();
    host
}

/// The single-socket entry host of subsystem A (25 Gbps CX-5).
pub fn intel_entry_host(name: &str) -> HostConfig {
    let mut host = intel_xeon_host(name, 1, ByteSize::from_gib(128), false);
    host.cpu = CpuModel::intel_xeon("Intel(R) Xeon(R) CPU 1", 1);
    host.bios = "INSYDE".to_string();
    host.kernel = "4.19".to_string();
    host
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryTarget;
    use crate::topology::DmaDirection;

    #[test]
    fn intel_host_has_no_gpus_and_gen3() {
        let h = intel_xeon_host("b", 2, ByteSize::from_gib(768), false);
        assert!(!h.has_gpus());
        assert_eq!(h.pcie_link, PcieLink::gen3_x16());
        assert_eq!(h.cpu.sockets, 2);
    }

    #[test]
    fn gpu_hosts_have_a_nic_local_gpu() {
        let h = intel_xeon_gpu_host("c", ByteSize::from_gib(384), false);
        assert!(h.has_gpus());
        let p = h.dma_path(
            MemoryTarget::GpuMemory { gpu_id: 0 },
            DmaDirection::FromMemory,
        );
        assert!(!p.via_root_complex);
        let amd = amd_epyc_gpu_host("e", ByteSize::from_gib(2048));
        assert!(amd.gpus.len() == 8);
        assert!(amd
            .gpus
            .iter()
            .any(|g| g.placement == GpuPlacement::SameSwitchAsRnic));
        assert!(amd
            .gpus
            .iter()
            .any(|g| g.placement == GpuPlacement::RemoteSocket));
    }

    #[test]
    fn amd_host_defaults_to_strict_ordering() {
        let amd = amd_epyc_gpu_host("e", ByteSize::from_gib(2048));
        assert!(!amd.pcie_settings.relaxed_ordering);
        assert_eq!(amd.pcie_link, PcieLink::gen4_x16());
    }

    #[test]
    fn nps2_host_has_four_numa_nodes() {
        let g = amd_epyc_nps2_host("g", ByteSize::from_gib(2048));
        assert_eq!(g.cpu.numa_nodes(), 4);
        assert!(g.gpus.is_empty());
    }

    #[test]
    fn entry_host_is_single_socket() {
        let a = intel_entry_host("a");
        assert_eq!(a.cpu.sockets, 1);
        assert_eq!(a.bios, "INSYDE");
        assert_eq!(a.total_dram, ByteSize::from_gib(128));
    }
}
