//! Host topology assembly and DMA path resolution.
//!
//! [`HostConfig`] pulls the PCIe, CPU, memory, GPU, and DDIO pieces together
//! into one server description (one row of Table 1, minus the RNIC itself),
//! and answers the question the RNIC model keeps asking: *for a DMA to or
//! from this memory target, what bandwidth ceiling, extra latency, and
//! ordering hazards does the host impose?* The answer is a [`DmaPath`].

use crate::cpu::CpuModel;
use crate::ddio::DdioModel;
use crate::memory::{GpuDevice, GpuPlacement, MemoryTarget};
use crate::pcie::{PcieLink, PcieSettings};
use collie_sim::units::{BitRate, ByteSize};
use serde::{Deserialize, Serialize};

/// Direction of a DMA transfer relative to host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DmaDirection {
    /// RNIC reads host/GPU memory (transmit path, WQE fetch).
    FromMemory,
    /// RNIC writes host/GPU memory (receive path, CQE delivery).
    ToMemory,
}

/// A fully assembled host: one server of the two-server testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Display name.
    pub name: String,
    /// CPU complex.
    pub cpu: CpuModel,
    /// The PCIe slot the RNIC occupies.
    pub pcie_link: PcieLink,
    /// PCIe/BIOS configuration knobs.
    pub pcie_settings: PcieSettings,
    /// DDIO / LLC model of the RNIC-affinitive socket.
    pub ddio: DdioModel,
    /// The socket whose root complex the RNIC descends from.
    pub rnic_socket: u32,
    /// Total installed DRAM (Table 1 "Memory" column); bounds how much
    /// memory can be registered/pinned.
    pub total_dram: ByteSize,
    /// Installed GPUs, if any.
    pub gpus: Vec<GpuDevice>,
    /// BIOS vendor string (Table 1, cosmetic but kept for completeness).
    pub bios: String,
    /// Kernel version string (Table 1, cosmetic but kept for completeness).
    pub kernel: String,
}

/// The host-side constraints on one DMA flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaPath {
    /// Host-side bandwidth ceiling for this flow, before PCIe TLP
    /// efficiency is applied (the RNIC model combines the two).
    pub bandwidth_ceiling: BitRate,
    /// Extra one-way latency in nanoseconds relative to a NUMA-local DRAM
    /// access (socket hops, switch hops, root-complex detours).
    pub extra_latency_ns: f64,
    /// Base memory latency in nanoseconds (local DRAM or HBM access).
    pub base_latency_ns: f64,
    /// True if the path crosses the CPU socket interconnect.
    pub crosses_socket: bool,
    /// True if peer-to-peer traffic is detoured through the root complex
    /// (the ACS misconfiguration of Anomaly #12).
    pub via_root_complex: bool,
    /// True if the target is GPU memory.
    pub is_gpu: bool,
}

impl HostConfig {
    /// Look up an installed GPU by id.
    pub fn gpu(&self, gpu_id: u32) -> Option<&GpuDevice> {
        self.gpus.iter().find(|g| g.id == gpu_id)
    }

    /// True if the host has at least one GPU (controls whether Dimension 1
    /// of the search space includes GPU memory targets).
    pub fn has_gpus(&self) -> bool {
        !self.gpus.is_empty()
    }

    /// All memory targets an application on this host could register MRs
    /// over: every NUMA node's DRAM plus every GPU's HBM. This is exactly
    /// the candidate list for search Dimension 1.
    pub fn memory_targets(&self) -> Vec<MemoryTarget> {
        let mut targets: Vec<MemoryTarget> = (0..self.cpu.numa_nodes())
            .map(|n| MemoryTarget::HostDram { numa_node: n })
            .collect();
        targets.extend(
            self.gpus
                .iter()
                .map(|g| MemoryTarget::GpuMemory { gpu_id: g.id }),
        );
        targets
    }

    /// Resolve the DMA path between the RNIC and `target`.
    ///
    /// Unknown GPU ids resolve as a remote-socket GPU path (the most
    /// pessimistic placement) rather than panicking, so a mutated search
    /// point that references a GPU the host does not have still produces a
    /// well-defined (and unattractive) workload.
    pub fn dma_path(&self, target: MemoryTarget, _direction: DmaDirection) -> DmaPath {
        match target {
            MemoryTarget::HostDram { numa_node } => {
                let socket = self.cpu.socket_of_numa(numa_node);
                let crosses = socket != self.rnic_socket;
                let mut ceiling = self.cpu.dram_bandwidth_per_socket;
                let mut extra = 0.0;
                if crosses {
                    ceiling = self
                        .cpu
                        .cross_socket_bandwidth
                        .scaled(self.cpu.cross_socket_dma_efficiency);
                    extra += self.cpu.cross_socket_latency_ns as f64;
                }
                if self.cpu.chiplets_per_socket > 1 {
                    extra += self.cpu.cross_chiplet_latency_ns as f64;
                }
                DmaPath {
                    bandwidth_ceiling: ceiling,
                    extra_latency_ns: extra,
                    base_latency_ns: self.cpu.local_dram_latency_ns as f64,
                    crosses_socket: crosses,
                    via_root_complex: false,
                    is_gpu: false,
                }
            }
            MemoryTarget::GpuMemory { gpu_id } => {
                let placement = self
                    .gpu(gpu_id)
                    .map(|g| g.placement)
                    .unwrap_or(GpuPlacement::RemoteSocket);
                let gpu_socket = self
                    .gpu(gpu_id)
                    .map(|g| g.socket)
                    .unwrap_or_else(|| self.rnic_socket.saturating_add(1));
                let crosses =
                    gpu_socket != self.rnic_socket || placement == GpuPlacement::RemoteSocket;
                let via_root_complex = self.pcie_settings.acs_redirect_p2p
                    || placement != GpuPlacement::SameSwitchAsRnic;

                // Peer-to-peer over a shared switch sustains close to the
                // NIC's PCIe rate; detours through the root complex or the
                // socket interconnect progressively cut it down.
                let mut ceiling = self.pcie_link.raw_bandwidth();
                let mut extra = 350.0; // GPU BAR access is slower than DRAM
                if via_root_complex {
                    ceiling = ceiling.scaled(0.55);
                    extra += 400.0;
                }
                if crosses {
                    ceiling = ceiling
                        .min(self.cpu.cross_socket_bandwidth)
                        .scaled(self.cpu.cross_socket_dma_efficiency);
                    extra += self.cpu.cross_socket_latency_ns as f64;
                }
                DmaPath {
                    bandwidth_ceiling: ceiling,
                    extra_latency_ns: extra,
                    base_latency_ns: 500.0,
                    crosses_socket: crosses,
                    via_root_complex,
                    is_gpu: true,
                }
            }
        }
    }
}

impl DmaPath {
    /// Total one-way latency in nanoseconds (base + topology extras).
    pub fn total_latency_ns(&self) -> f64 {
        self.base_latency_ns + self.extra_latency_ns
    }
}

/// A multi-host fabric: N servers attached to one shared lossless switch,
/// one host per switch port.
///
/// The paper's testbed is the two-host special case; the fabric campaigns
/// scale the same homogeneous server out to N ports so that cross-host
/// effects (PFC pause propagation, victim-flow collapse) become
/// expressible. Host `i` sits on switch port `i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricTopology {
    /// The attached hosts, in switch-port order.
    pub hosts: Vec<HostConfig>,
}

impl FabricTopology {
    /// A fabric of `host_count` identical copies of `host` (clamped to at
    /// least two — a fabric below two hosts carries no traffic).
    pub fn homogeneous(host: &HostConfig, host_count: u32) -> FabricTopology {
        let count = host_count.max(2) as usize;
        let mut hosts = Vec::with_capacity(count);
        for index in 0..count {
            let mut h = host.clone();
            h.name = format!("{}-{index}", host.name);
            hosts.push(h);
        }
        FabricTopology { hosts }
    }

    /// Number of attached hosts (== switch ports in use).
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The switch port a host is attached to (an identity mapping, kept as
    /// a named operation so the port assignment has exactly one definition).
    pub fn port_of(&self, host_index: usize) -> Option<usize> {
        (host_index < self.hosts.len()).then_some(host_index)
    }

    /// The host attached to `port`, if any.
    pub fn host(&self, port: usize) -> Option<&HostConfig> {
        self.hosts.get(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn amd_gpu_host() -> HostConfig {
        presets::amd_epyc_gpu_host("test-amd", ByteSize::from_gib(2048))
    }

    fn intel_host() -> HostConfig {
        presets::intel_xeon_host("test-intel", 2, ByteSize::from_gib(768), false)
    }

    #[test]
    fn local_dram_path_is_cheap() {
        let host = intel_host();
        let p = host.dma_path(MemoryTarget::local_dram(), DmaDirection::ToMemory);
        assert!(!p.crosses_socket);
        assert!(!p.via_root_complex);
        assert!(!p.is_gpu);
        assert_eq!(p.extra_latency_ns, 0.0);
        assert!(p.bandwidth_ceiling.gbps() > 500.0);
    }

    #[test]
    fn remote_socket_dram_pays_latency_and_bandwidth() {
        let host = intel_host();
        let local = host.dma_path(
            MemoryTarget::HostDram { numa_node: 0 },
            DmaDirection::ToMemory,
        );
        let remote = host.dma_path(
            MemoryTarget::HostDram { numa_node: 1 },
            DmaDirection::ToMemory,
        );
        assert!(remote.crosses_socket);
        assert!(remote.total_latency_ns() > local.total_latency_ns());
        assert!(remote.bandwidth_ceiling.gbps() < local.bandwidth_ceiling.gbps());
    }

    #[test]
    fn amd_cross_socket_is_much_worse_than_intel() {
        let amd = amd_gpu_host();
        let intel = intel_host();
        let amd_remote = amd.dma_path(
            MemoryTarget::HostDram { numa_node: 1 },
            DmaDirection::ToMemory,
        );
        let intel_remote = intel.dma_path(
            MemoryTarget::HostDram { numa_node: 1 },
            DmaDirection::ToMemory,
        );
        assert!(amd_remote.bandwidth_ceiling.gbps() < intel_remote.bandwidth_ceiling.gbps());
        // The anomalous AMD platform cannot sustain 200 Gbps across sockets.
        assert!(amd_remote.bandwidth_ceiling.gbps() < 200.0);
    }

    #[test]
    fn gpu_same_switch_is_fast_unless_acs_misconfigured() {
        let mut host = amd_gpu_host();
        let good = host.dma_path(
            MemoryTarget::GpuMemory { gpu_id: 0 },
            DmaDirection::FromMemory,
        );
        assert!(
            !good.via_root_complex,
            "same-switch GPU should switch P2P locally"
        );

        host.pcie_settings.acs_redirect_p2p = true;
        let bad = host.dma_path(
            MemoryTarget::GpuMemory { gpu_id: 0 },
            DmaDirection::FromMemory,
        );
        assert!(bad.via_root_complex);
        assert!(bad.bandwidth_ceiling.gbps() < good.bandwidth_ceiling.gbps());
        assert!(bad.total_latency_ns() > good.total_latency_ns());
    }

    #[test]
    fn unknown_gpu_resolves_pessimistically() {
        let host = intel_host(); // no GPUs installed
        let p = host.dma_path(
            MemoryTarget::GpuMemory { gpu_id: 42 },
            DmaDirection::ToMemory,
        );
        assert!(p.is_gpu);
        assert!(p.crosses_socket);
        assert!(p.via_root_complex);
    }

    #[test]
    fn fabric_topology_scales_one_host_out_to_n_ports() {
        let fabric = FabricTopology::homogeneous(&intel_host(), 6);
        assert_eq!(fabric.host_count(), 6);
        // One host per port, identity port assignment.
        for index in 0..6 {
            assert_eq!(fabric.port_of(index), Some(index));
            assert!(fabric
                .host(index)
                .unwrap()
                .name
                .ends_with(&index.to_string()));
        }
        assert_eq!(fabric.port_of(6), None);
        assert!(fabric.host(6).is_none());
        // Degenerate host counts clamp to the two-host testbed.
        assert_eq!(
            FabricTopology::homogeneous(&intel_host(), 0).host_count(),
            2
        );
    }

    #[test]
    fn memory_targets_enumerate_numa_and_gpus() {
        let host = amd_gpu_host();
        let targets = host.memory_targets();
        let dram_targets = targets.iter().filter(|t| !t.is_gpu()).count();
        let gpu_targets = targets.iter().filter(|t| t.is_gpu()).count();
        assert_eq!(dram_targets as u32, host.cpu.numa_nodes());
        assert_eq!(gpu_targets, host.gpus.len());

        let intel = intel_host();
        assert!(intel.memory_targets().iter().all(|t| !t.is_gpu()));
    }
}
