//! # collie-host
//!
//! Host-side hardware model for the Collie reproduction.
//!
//! The paper's anomalies are interactions between the RNIC and the rest of
//! the server (Figure 1): the PCIe link and switches the NIC hangs off, the
//! CPU sockets and their interconnect, the memory devices DMA targets live
//! in (NUMA-local DRAM, remote-socket DRAM, GPU HBM), DDIO and the last-
//! level cache, and the single lossless ToR switch between the two servers.
//! This crate models those components as bandwidth / latency / ordering
//! constraints on DMA paths, which is the level of detail the anomalies
//! actually depend on.
//!
//! Modules:
//!
//! * [`pcie`] — PCIe generations, link widths, payload efficiency, ordering
//!   and ACS configuration.
//! * [`cpu`] — CPU socket/chiplet/NUMA layout and cross-socket interconnect.
//! * [`memory`] — DMA-able memory devices (host DRAM per NUMA node, GPU HBM).
//! * [`ddio`] — Data Direct I/O and last-level-cache behaviour.
//! * [`topology`] — the assembled [`HostConfig`] and DMA path resolution.
//! * [`switch`] — the lossless switch connecting the two servers.
//! * [`presets`] — the host portions of the paper's Table-1 subsystems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod ddio;
pub mod memory;
pub mod pcie;
pub mod presets;
pub mod switch;
pub mod topology;

pub use cpu::{CpuModel, CpuVendor};
pub use ddio::DdioModel;
pub use memory::{GpuDevice, GpuPlacement, MemoryTarget};
pub use pcie::{PcieGen, PcieLink, PcieSettings};
pub use switch::LosslessSwitch;
pub use topology::{DmaDirection, DmaPath, HostConfig};
