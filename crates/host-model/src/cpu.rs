//! CPU socket, chiplet, and NUMA model.
//!
//! Table 1 spans three Intel Xeon generations and an AMD EPYC part; the
//! anomalies that depend on the CPU do so through the socket/NUMA layout
//! rather than core microarchitecture: cross-socket DMA (Anomaly #11) rides
//! the inter-socket interconnect (xGMI/UPI), AMD parts additionally cross a
//! chiplet fabric, and the NPS (NUMA-per-socket) BIOS setting controls how
//! finely DRAM is partitioned. We model exactly those properties.

use collie_sim::units::BitRate;
use serde::{Deserialize, Serialize};

/// CPU vendor, which determines the interconnect characteristics that
/// matter for the AMD-specific anomalies (#9, #11, #12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuVendor {
    /// Intel Xeon parts (subsystems A–D, F, H in Table 1).
    Intel,
    /// AMD EPYC parts (subsystems E, G in Table 1).
    Amd,
}

/// A CPU model: the host-side compute/memory complex of one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Vendor.
    pub vendor: CpuVendor,
    /// Anonymised name as used in Table 1 ("Intel(R) Xeon(R) CPU 1", …).
    pub name: String,
    /// Number of CPU sockets in the server.
    pub sockets: u32,
    /// NUMA nodes exposed per socket (the "NPS" column of Table 1).
    pub numa_per_socket: u32,
    /// Chiplets (CCDs) per socket; 1 for monolithic Intel dies.
    pub chiplets_per_socket: u32,
    /// Usable bandwidth of the socket interconnect (UPI for Intel, xGMI for
    /// AMD) available to I/O traffic crossing sockets.
    pub cross_socket_bandwidth: BitRate,
    /// Extra one-way latency added by crossing the socket interconnect, in
    /// nanoseconds.
    pub cross_socket_latency_ns: u64,
    /// Extra latency added by crossing the intra-socket chiplet fabric, in
    /// nanoseconds (0 for monolithic dies).
    pub cross_chiplet_latency_ns: u64,
    /// Local DRAM access latency seen by a DMA engine, in nanoseconds.
    pub local_dram_latency_ns: u64,
    /// Aggregate DRAM bandwidth per socket available to I/O.
    pub dram_bandwidth_per_socket: BitRate,
    /// Efficiency factor (0..=1) applied to DMA streams that cross sockets
    /// on this platform. The anomalous AMD platform of Anomaly #11 has a
    /// markedly lower value: its I/O die forwards inbound PCIe writes to the
    /// remote socket at well below the NIC line rate.
    pub cross_socket_dma_efficiency: f64,
}

impl CpuModel {
    /// Total NUMA nodes in the server.
    pub fn numa_nodes(&self) -> u32 {
        self.sockets * self.numa_per_socket
    }

    /// The socket that owns a given NUMA node index (nodes are numbered
    /// socket-major, as Linux does).
    pub fn socket_of_numa(&self, numa_node: u32) -> u32 {
        if self.numa_per_socket == 0 {
            return 0;
        }
        (numa_node / self.numa_per_socket).min(self.sockets.saturating_sub(1))
    }

    /// An Intel Xeon with a conventional two-socket UPI layout.
    pub fn intel_xeon(name: &str, sockets: u32) -> CpuModel {
        CpuModel {
            vendor: CpuVendor::Intel,
            name: name.to_string(),
            sockets,
            numa_per_socket: 1,
            chiplets_per_socket: 1,
            cross_socket_bandwidth: BitRate::from_gbps(330.0),
            cross_socket_latency_ns: 130,
            cross_chiplet_latency_ns: 0,
            local_dram_latency_ns: 90,
            dram_bandwidth_per_socket: BitRate::from_gbps(1100.0),
            cross_socket_dma_efficiency: 0.85,
        }
    }

    /// An AMD EPYC with chiplets and the I/O-die forwarding behaviour the
    /// paper observed on its anomalous 200 Gbps platforms.
    pub fn amd_epyc(name: &str, numa_per_socket: u32) -> CpuModel {
        CpuModel {
            vendor: CpuVendor::Amd,
            name: name.to_string(),
            sockets: 2,
            numa_per_socket,
            chiplets_per_socket: 4,
            cross_socket_bandwidth: BitRate::from_gbps(290.0),
            cross_socket_latency_ns: 210,
            cross_chiplet_latency_ns: 40,
            local_dram_latency_ns: 105,
            dram_bandwidth_per_socket: BitRate::from_gbps(1400.0),
            // The particular servers behind Anomaly #11: bidirectional
            // cross-socket DMA collapses well below line rate.
            cross_socket_dma_efficiency: 0.38,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numa_node_count() {
        let intel = CpuModel::intel_xeon("Intel(R) Xeon(R) CPU 2", 2);
        assert_eq!(intel.numa_nodes(), 2);
        let amd = CpuModel::amd_epyc("AMD EPYC CPU 1", 2);
        assert_eq!(amd.numa_nodes(), 4);
    }

    #[test]
    fn socket_of_numa_is_socket_major() {
        let amd = CpuModel::amd_epyc("AMD EPYC CPU 1", 2);
        assert_eq!(amd.socket_of_numa(0), 0);
        assert_eq!(amd.socket_of_numa(1), 0);
        assert_eq!(amd.socket_of_numa(2), 1);
        assert_eq!(amd.socket_of_numa(3), 1);
        // Out-of-range nodes clamp to the last socket rather than panicking.
        assert_eq!(amd.socket_of_numa(99), 1);
    }

    #[test]
    fn socket_of_numa_handles_single_socket() {
        let one = CpuModel::intel_xeon("Intel(R) Xeon(R) CPU 1", 1);
        assert_eq!(one.socket_of_numa(0), 0);
        assert_eq!(one.socket_of_numa(5), 0);
    }

    #[test]
    fn amd_cross_socket_efficiency_is_lower_than_intel() {
        let intel = CpuModel::intel_xeon("Intel(R) Xeon(R) CPU 3", 2);
        let amd = CpuModel::amd_epyc("AMD EPYC CPU 1", 1);
        assert!(amd.cross_socket_dma_efficiency < intel.cross_socket_dma_efficiency);
        assert!(amd.cross_socket_latency_ns > intel.cross_socket_latency_ns);
        assert!(amd.chiplets_per_socket > 1);
    }

    #[test]
    fn vendors_are_as_expected() {
        assert_eq!(CpuModel::intel_xeon("x", 2).vendor, CpuVendor::Intel);
        assert_eq!(CpuModel::amd_epyc("y", 1).vendor, CpuVendor::Amd);
    }
}
