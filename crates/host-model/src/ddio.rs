//! Data Direct I/O (DDIO) and last-level-cache behaviour.
//!
//! Dimension 2 of the search space (memory-allocation settings) notes that
//! many RNICs DMA directly into the CPU's last-level cache via Intel DDIO,
//! and that a large MR access range defeats this: the working set no longer
//! fits in the LLC ways reserved for I/O, inbound writes go to DRAM, and
//! the extra latency shows up as PCIe back-pressure on the NIC. We model
//! DDIO as a hit-fraction function of the I/O working-set size.

use collie_sim::units::ByteSize;
use serde::{Deserialize, Serialize};

/// DDIO / last-level-cache model for one socket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdioModel {
    /// Whether DDIO (or the platform's equivalent) is active.
    pub enabled: bool,
    /// Total last-level cache size of the socket.
    pub llc_size: ByteSize,
    /// Fraction of the LLC ways available to inbound I/O (Intel defaults to
    /// 2 of 11 ways ≈ 0.18).
    pub io_way_fraction: f64,
    /// Extra DMA latency in nanoseconds paid when an inbound write misses
    /// the LLC and has to go to DRAM.
    pub miss_penalty_ns: u64,
}

impl Default for DdioModel {
    fn default() -> Self {
        DdioModel {
            enabled: true,
            llc_size: ByteSize::from_mib(32),
            io_way_fraction: 0.18,
            miss_penalty_ns: 60,
        }
    }
}

impl DdioModel {
    /// A model with DDIO disabled (all inbound DMA goes to DRAM).
    pub fn disabled() -> Self {
        DdioModel {
            enabled: false,
            ..Default::default()
        }
    }

    /// Capacity usable by inbound I/O.
    pub fn io_capacity(&self) -> ByteSize {
        ByteSize::from_bytes((self.llc_size.as_f64() * self.io_way_fraction) as u64)
    }

    /// Fraction of inbound DMA writes expected to hit the LLC for a given
    /// I/O working-set size (the total bytes of MR space the workload
    /// actively touches). 1.0 when the working set fits, decaying towards 0
    /// as it grows; always 0 when DDIO is disabled.
    pub fn hit_fraction(&self, working_set: ByteSize) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let cap = self.io_capacity().as_f64();
        let ws = working_set.as_f64();
        if ws <= cap || cap <= 0.0 {
            if cap <= 0.0 {
                0.0
            } else {
                1.0
            }
        } else {
            (cap / ws).clamp(0.0, 1.0)
        }
    }

    /// The average extra latency (ns) inbound DMA pays for a given working
    /// set, i.e. the miss penalty weighted by the miss fraction.
    pub fn average_penalty_ns(&self, working_set: ByteSize) -> f64 {
        let miss = 1.0 - self.hit_fraction(working_set);
        miss * self.miss_penalty_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_hits() {
        let d = DdioModel::default();
        assert_eq!(d.hit_fraction(ByteSize::from_mib(1)), 1.0);
        assert_eq!(d.average_penalty_ns(ByteSize::from_mib(1)), 0.0);
    }

    #[test]
    fn large_working_set_misses() {
        let d = DdioModel::default();
        let f = d.hit_fraction(ByteSize::from_gib(1));
        assert!(f < 0.01, "hit fraction {f}");
        assert!(d.average_penalty_ns(ByteSize::from_gib(1)) > 50.0);
    }

    #[test]
    fn hit_fraction_is_monotone_decreasing() {
        let d = DdioModel::default();
        let mut last = 1.1;
        for mib in [1u64, 4, 8, 16, 64, 256, 1024] {
            let f = d.hit_fraction(ByteSize::from_mib(mib));
            assert!(f <= last);
            last = f;
        }
    }

    #[test]
    fn disabled_ddio_never_hits() {
        let d = DdioModel::disabled();
        assert_eq!(d.hit_fraction(ByteSize::from_bytes(64)), 0.0);
        assert_eq!(
            d.average_penalty_ns(ByteSize::from_bytes(64)),
            d.miss_penalty_ns as f64
        );
    }

    #[test]
    fn io_capacity_is_way_fraction_of_llc() {
        let d = DdioModel {
            enabled: true,
            llc_size: ByteSize::from_mib(100),
            io_way_fraction: 0.5,
            miss_penalty_ns: 10,
        };
        assert_eq!(d.io_capacity(), ByteSize::from_mib(50));
    }
}
