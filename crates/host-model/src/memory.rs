//! DMA-able memory devices.
//!
//! Dimension 1 of Collie's search space ("host topology") enumerates the
//! memory devices traffic can originate from or land in: DRAM attached to
//! any NUMA node, or the HBM of any GPU in the server (GPU-Direct RDMA).
//! Which device is chosen determines the DMA path the RNIC has to traverse
//! and therefore which host-side bottlenecks can be hit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a GPU sits relative to the RNIC in the PCIe fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuPlacement {
    /// Under the same PCIe switch as the RNIC (shown as PIX/PXB by
    /// `nvidia-smi topo`); peer-to-peer DMA can be switched locally.
    SameSwitchAsRnic,
    /// Under a different PCIe switch on the same socket; P2P traffic must
    /// traverse the upstream link of both switches.
    SameSocketDifferentSwitch,
    /// Attached to the other CPU socket; P2P traffic crosses the socket
    /// interconnect as well.
    RemoteSocket,
}

/// One GPU installed in the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GpuDevice {
    /// GPU index (as in `nvidia-smi`).
    pub id: u32,
    /// The CPU socket whose root complex the GPU descends from.
    pub socket: u32,
    /// Placement relative to the RNIC.
    pub placement: GpuPlacement,
}

/// A DMA target/source: some memory the application registered an MR over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryTarget {
    /// Host DRAM attached to a specific NUMA node.
    HostDram {
        /// NUMA node the pages are bound to.
        numa_node: u32,
    },
    /// GPU HBM accessed through GPU-Direct RDMA.
    GpuMemory {
        /// Index of the GPU whose memory is registered.
        gpu_id: u32,
    },
}

impl MemoryTarget {
    /// Host DRAM on NUMA node 0 (the common, NIC-affinitive default).
    pub const fn local_dram() -> Self {
        MemoryTarget::HostDram { numa_node: 0 }
    }

    /// True if this target is GPU memory.
    pub fn is_gpu(&self) -> bool {
        matches!(self, MemoryTarget::GpuMemory { .. })
    }

    /// The NUMA node for host DRAM targets.
    pub fn numa_node(&self) -> Option<u32> {
        match self {
            MemoryTarget::HostDram { numa_node } => Some(*numa_node),
            MemoryTarget::GpuMemory { .. } => None,
        }
    }

    /// The GPU id for GPU targets.
    pub fn gpu_id(&self) -> Option<u32> {
        match self {
            MemoryTarget::HostDram { .. } => None,
            MemoryTarget::GpuMemory { gpu_id } => Some(*gpu_id),
        }
    }
}

impl fmt::Display for MemoryTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryTarget::HostDram { numa_node } => write!(f, "dram(numa{numa_node})"),
            MemoryTarget::GpuMemory { gpu_id } => write!(f, "gpu{gpu_id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_accessors() {
        let dram = MemoryTarget::HostDram { numa_node: 2 };
        assert!(!dram.is_gpu());
        assert_eq!(dram.numa_node(), Some(2));
        assert_eq!(dram.gpu_id(), None);

        let gpu = MemoryTarget::GpuMemory { gpu_id: 5 };
        assert!(gpu.is_gpu());
        assert_eq!(gpu.numa_node(), None);
        assert_eq!(gpu.gpu_id(), Some(5));
    }

    #[test]
    fn local_dram_is_numa_zero() {
        assert_eq!(
            MemoryTarget::local_dram(),
            MemoryTarget::HostDram { numa_node: 0 }
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            MemoryTarget::HostDram { numa_node: 1 }.to_string(),
            "dram(numa1)"
        );
        assert_eq!(MemoryTarget::GpuMemory { gpu_id: 3 }.to_string(), "gpu3");
    }

    #[test]
    fn gpu_device_fields() {
        let g = GpuDevice {
            id: 0,
            socket: 1,
            placement: GpuPlacement::RemoteSocket,
        };
        assert_eq!(g.socket, 1);
        assert_eq!(g.placement, GpuPlacement::RemoteSocket);
    }
}
