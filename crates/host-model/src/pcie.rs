//! PCIe link model.
//!
//! Every byte an RNIC sends or receives crosses its PCIe link twice as DMA
//! traffic (payload reads on transmit, payload writes on receive) plus the
//! control traffic the paper calls out: doorbell MMIO writes, WQE fetches,
//! and completion writes. The anomalies attributed to "PCIe back-pressure"
//! (Appendix A root causes 3 and 5) come from this link being the effective
//! bottleneck, so we model:
//!
//! * raw lane bandwidth per generation (Gen3 ≈ 0.985 GB/s/lane, Gen4 ≈
//!   1.969 GB/s/lane after 128b/130b encoding),
//! * transaction-layer-packet (TLP) efficiency as a function of payload
//!   size and the negotiated maximum payload size (small DMAs waste a large
//!   fraction of the link on headers — the reason WQE fetches and tiny
//!   messages consume disproportionate PCIe bandwidth),
//! * ordering configuration (relaxed ordering on/off; Anomaly #9), and
//! * ACS/PCIe-switch routing configuration (Anomaly #12: a misconfigured
//!   `ACSCtl` forwards peer-to-peer GPU traffic through the root complex).

use collie_sim::units::{BitRate, ByteSize};
use serde::{Deserialize, Serialize};

/// PCIe generation of the slot the RNIC occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGen {
    /// PCIe 3.0: 8 GT/s per lane, 128b/130b encoding.
    Gen3,
    /// PCIe 4.0: 16 GT/s per lane, 128b/130b encoding.
    Gen4,
    /// PCIe 5.0: 32 GT/s per lane (not used by Table 1 but supported for
    /// forward-looking experiments).
    Gen5,
}

impl PcieGen {
    /// Usable bandwidth of one lane in gigabytes per second, after link
    /// encoding but before TLP overhead.
    pub fn lane_gbytes_per_sec(self) -> f64 {
        match self {
            PcieGen::Gen3 => 0.985,
            PcieGen::Gen4 => 1.969,
            PcieGen::Gen5 => 3.938,
        }
    }

    /// Short human-readable form, matching Table 1 ("3.0 x 16").
    pub fn label(self) -> &'static str {
        match self {
            PcieGen::Gen3 => "3.0",
            PcieGen::Gen4 => "4.0",
            PcieGen::Gen5 => "5.0",
        }
    }
}

/// A PCIe link: a generation and a lane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PcieLink {
    /// Link generation.
    pub gen: PcieGen,
    /// Number of lanes (x8, x16, ...).
    pub lanes: u32,
}

impl PcieLink {
    /// A Gen3 x16 link (subsystems A–D, H in Table 1).
    pub const fn gen3_x16() -> Self {
        PcieLink {
            gen: PcieGen::Gen3,
            lanes: 16,
        }
    }

    /// A Gen4 x16 link (subsystems E–G in Table 1).
    pub const fn gen4_x16() -> Self {
        PcieLink {
            gen: PcieGen::Gen4,
            lanes: 16,
        }
    }

    /// Raw link bandwidth (after encoding, before TLP overhead).
    pub fn raw_bandwidth(&self) -> BitRate {
        BitRate::from_bits_per_sec(self.gen.lane_gbytes_per_sec() * self.lanes as f64 * 8e9)
    }

    /// Effective data bandwidth for DMA transactions whose payloads are
    /// `payload` bytes, under a negotiated maximum payload size of
    /// `max_payload`.
    ///
    /// Each TLP carries `min(payload, max_payload)` bytes of data plus
    /// roughly 24 bytes of framing/header/ECRC, and read completions add a
    /// similar overhead again; we fold both into a single per-TLP overhead.
    /// This reproduces the well-known shape (Neugebauer et al., SIGCOMM'18)
    /// where 64–256 B transactions only achieve 50–80 % of the link rate.
    pub fn effective_bandwidth(&self, payload: ByteSize, settings: &PcieSettings) -> BitRate {
        let tlp_overhead_bytes = 24.0;
        let max_payload = settings.max_payload_size.as_f64().max(64.0);
        let payload = payload.as_f64().max(1.0);
        let chunk = payload.min(max_payload);
        let efficiency = chunk / (chunk + tlp_overhead_bytes);
        self.raw_bandwidth().scaled(efficiency)
    }

    /// Label like "3.0 x 16" as printed in Table 1.
    pub fn label(&self) -> String {
        format!("{} x {}", self.gen.label(), self.lanes)
    }
}

/// Host/BIOS-level PCIe configuration knobs that the paper's anomalies turn
/// out to hinge on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieSettings {
    /// Whether the RNIC is configured as a (forced) relaxed-ordering device.
    /// When `false` on the affected AMD hosts, a DMA write may be blocked
    /// behind an earlier one, which is the root cause of Anomaly #9.
    pub relaxed_ordering: bool,
    /// Whether the PCIe bridge's ACS control forwards peer-to-peer (GPU →
    /// RNIC) traffic up through the root complex instead of switching it at
    /// the shared PCIe switch. The misconfiguration behind Anomaly #12.
    pub acs_redirect_p2p: bool,
    /// Negotiated maximum TLP payload size (typically 256 B or 512 B).
    pub max_payload_size: ByteSize,
    /// Maximum read request size (typically 512 B – 4 KiB). Larger values
    /// amortise header overhead on DMA reads.
    pub max_read_request: ByteSize,
}

impl Default for PcieSettings {
    fn default() -> Self {
        PcieSettings {
            relaxed_ordering: true,
            acs_redirect_p2p: false,
            max_payload_size: ByteSize::from_bytes(256),
            max_read_request: ByteSize::from_bytes(4096),
        }
    }
}

impl PcieSettings {
    /// The configuration of the anomalous AMD hosts before the Anomaly #9
    /// fix: strict ordering.
    pub fn strict_ordering() -> Self {
        PcieSettings {
            relaxed_ordering: false,
            ..Default::default()
        }
    }

    /// The misconfigured bridge of Anomaly #12: peer-to-peer traffic takes
    /// the root-complex detour.
    pub fn acs_misconfigured() -> Self {
        PcieSettings {
            acs_redirect_p2p: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_bandwidth_matches_spec_sheets() {
        // Gen3 x16 ≈ 126 Gbps usable, Gen4 x16 ≈ 252 Gbps usable.
        let g3 = PcieLink::gen3_x16().raw_bandwidth().gbps();
        let g4 = PcieLink::gen4_x16().raw_bandwidth().gbps();
        assert!((120.0..132.0).contains(&g3), "gen3 x16 = {g3} Gbps");
        assert!((245.0..260.0).contains(&g4), "gen4 x16 = {g4} Gbps");
    }

    #[test]
    fn gen4_doubles_gen3() {
        let g3 = PcieLink::gen3_x16().raw_bandwidth().gbps();
        let g4 = PcieLink::gen4_x16().raw_bandwidth().gbps();
        assert!((g4 / g3 - 2.0).abs() < 0.01);
    }

    #[test]
    fn small_payloads_lose_efficiency() {
        let link = PcieLink::gen3_x16();
        let settings = PcieSettings::default();
        let small = link.effective_bandwidth(ByteSize::from_bytes(64), &settings);
        let large = link.effective_bandwidth(ByteSize::from_kib(4), &settings);
        assert!(small.gbps() < large.gbps());
        // 64 B payloads should fall well below 80% of the raw rate.
        assert!(small.gbps() < link.raw_bandwidth().gbps() * 0.80);
        // Large payloads limited by max payload size still exceed 85%.
        assert!(large.gbps() > link.raw_bandwidth().gbps() * 0.85);
    }

    #[test]
    fn effective_bandwidth_is_monotone_in_payload() {
        let link = PcieLink::gen4_x16();
        let settings = PcieSettings::default();
        let mut last = 0.0;
        for size in [16u64, 64, 128, 256, 1024, 4096, 65536] {
            let bw = link
                .effective_bandwidth(ByteSize::from_bytes(size), &settings)
                .gbps();
            assert!(bw >= last, "bw({size}) = {bw} < {last}");
            last = bw;
        }
    }

    #[test]
    fn payload_capped_by_max_payload_size() {
        let link = PcieLink::gen3_x16();
        let settings = PcieSettings::default();
        let at_cap = link.effective_bandwidth(ByteSize::from_bytes(256), &settings);
        let beyond = link.effective_bandwidth(ByteSize::from_mib(4), &settings);
        assert!((at_cap.gbps() - beyond.gbps()).abs() < 1e-9);
    }

    #[test]
    fn zero_payload_does_not_panic() {
        let link = PcieLink::gen3_x16();
        let bw = link.effective_bandwidth(ByteSize::ZERO, &PcieSettings::default());
        assert!(bw.gbps() > 0.0);
    }

    #[test]
    fn preset_settings() {
        assert!(!PcieSettings::strict_ordering().relaxed_ordering);
        assert!(PcieSettings::acs_misconfigured().acs_redirect_p2p);
        let d = PcieSettings::default();
        assert!(d.relaxed_ordering && !d.acs_redirect_p2p);
    }

    #[test]
    fn labels_match_table1_format() {
        assert_eq!(PcieLink::gen3_x16().label(), "3.0 x 16");
        assert_eq!(PcieLink::gen4_x16().label(), "4.0 x 16");
    }
}
