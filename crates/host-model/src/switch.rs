//! The lossless Ethernet switch between the servers.
//!
//! Collie deliberately evaluates a minimal network (§4): RNICs on one
//! commodity switch whose ports run at line rate, so the network itself is
//! never congested and any PFC pause frame must originate from a host. The
//! switch model therefore only needs to (a) never be the bottleneck, (b)
//! relay the pause behaviour of the receiver back to the sender, and (c)
//! count the pause frames it receives — that count is what the operator
//! (and our anomaly monitor) watches.
//!
//! The paper's testbed attaches two servers; the multi-host fabric layer
//! attaches N. [`LosslessSwitch::new`] keeps the historical two-port shape,
//! [`LosslessSwitch::with_ports`] builds the N-port top-of-rack switch the
//! fabric campaigns pause-account against.

use collie_sim::units::BitRate;
use serde::{Deserialize, Serialize};

/// An N-port lossless top-of-rack switch (two ports by default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LosslessSwitch {
    /// Port speed; all ports run at the same speed and match or exceed the
    /// RNIC line rate.
    pub port_speed: BitRate,
    /// Cut-through forwarding latency in nanoseconds.
    pub forwarding_latency_ns: u64,
    pause_seconds_received: Vec<f64>,
}

impl LosslessSwitch {
    /// A two-port switch whose ports run at `port_speed` (the paper's
    /// two-server testbed).
    pub fn new(port_speed: BitRate) -> Self {
        LosslessSwitch::with_ports(port_speed, 2)
    }

    /// A switch with `ports` ports (at least two) running at `port_speed`,
    /// one per attached host of a multi-host fabric.
    pub fn with_ports(port_speed: BitRate, ports: usize) -> Self {
        LosslessSwitch {
            port_speed,
            forwarding_latency_ns: 600,
            pause_seconds_received: vec![0.0; ports.max(2)],
        }
    }

    /// Number of ports (== number of attachable hosts).
    pub fn port_count(&self) -> usize {
        self.pause_seconds_received.len()
    }

    /// True if the switch can carry `offered` on one port without itself
    /// congesting. With matched port speeds this is always true for offered
    /// loads at or below line rate — the paper's premise that the network is
    /// congestion-free. Fabric traffic matrices are admissible by
    /// construction (incast senders split the egress line rate), so the
    /// premise carries over to N ports.
    pub fn can_carry(&self, offered: BitRate) -> bool {
        offered.bits_per_sec() <= self.port_speed.bits_per_sec() + 1.0
    }

    /// Record that the host attached to `port` asked its switch port to
    /// pause for `seconds` of transmission time. Out-of-range ports and
    /// non-positive durations are ignored.
    pub fn record_pause(&mut self, port: usize, seconds: f64) {
        if port < self.pause_seconds_received.len() && seconds > 0.0 {
            self.pause_seconds_received[port] += seconds;
        }
    }

    /// Total pause time received on a port since construction.
    pub fn pause_seconds(&self, port: usize) -> f64 {
        self.pause_seconds_received
            .get(port)
            .copied()
            .unwrap_or(0.0)
    }

    /// The pause-duration ratio on a port over an observation window: the
    /// fraction of the window the upstream queue was told to stay quiet.
    /// This is the metric the anomaly monitor thresholds at 0.1 %.
    ///
    /// A degenerate (zero or negative) window reads as "no observation",
    /// not as a division: the ratio is 0, never NaN or infinite.
    pub fn pause_duration_ratio(&self, port: usize, window_seconds: f64) -> f64 {
        if window_seconds <= 0.0 {
            return 0.0;
        }
        (self.pause_seconds(port) / window_seconds).clamp(0.0, 1.0)
    }

    /// Pause-duration ratio of every port over one window, in port order.
    pub fn pause_ratios(&self, window_seconds: f64) -> Vec<f64> {
        (0..self.port_count())
            .map(|p| self.pause_duration_ratio(p, window_seconds))
            .collect()
    }

    /// Clear pause accounting (between experiments).
    pub fn reset(&mut self) {
        for slot in &mut self.pause_seconds_received {
            *slot = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_congested_at_or_below_line_rate() {
        let sw = LosslessSwitch::new(BitRate::from_gbps(200.0));
        assert!(sw.can_carry(BitRate::from_gbps(200.0)));
        assert!(sw.can_carry(BitRate::from_gbps(10.0)));
        assert!(!sw.can_carry(BitRate::from_gbps(201.0)));
    }

    #[test]
    fn pause_accounting_and_ratio() {
        let mut sw = LosslessSwitch::new(BitRate::from_gbps(100.0));
        sw.record_pause(0, 0.05);
        sw.record_pause(0, 0.05);
        sw.record_pause(1, 0.2);
        assert!((sw.pause_seconds(0) - 0.1).abs() < 1e-12);
        assert!((sw.pause_duration_ratio(0, 1.0) - 0.1).abs() < 1e-12);
        assert!((sw.pause_duration_ratio(1, 1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ratio_clamps_and_handles_degenerate_windows() {
        let mut sw = LosslessSwitch::new(BitRate::from_gbps(100.0));
        sw.record_pause(0, 5.0);
        assert_eq!(sw.pause_duration_ratio(0, 1.0), 1.0);
        // Zero and negative windows read as "no observation": 0.0, never a
        // NaN/inf from the raw division.
        assert_eq!(sw.pause_duration_ratio(0, 0.0), 0.0);
        assert_eq!(sw.pause_duration_ratio(0, -3.5), 0.0);
        assert!(sw.pause_duration_ratio(0, 0.0).is_finite());
    }

    #[test]
    fn invalid_port_is_ignored() {
        let mut sw = LosslessSwitch::new(BitRate::from_gbps(100.0));
        sw.record_pause(7, 1.0);
        assert_eq!(sw.pause_seconds(7), 0.0);
        assert_eq!(sw.pause_duration_ratio(7, 1.0), 0.0);
    }

    #[test]
    fn negative_pause_is_ignored_and_reset_clears() {
        let mut sw = LosslessSwitch::new(BitRate::from_gbps(100.0));
        sw.record_pause(0, -1.0);
        assert_eq!(sw.pause_seconds(0), 0.0);
        sw.record_pause(0, 1.0);
        sw.reset();
        assert_eq!(sw.pause_seconds(0), 0.0);
    }

    #[test]
    fn n_port_switch_accounts_every_port() {
        let mut sw = LosslessSwitch::with_ports(BitRate::from_gbps(200.0), 8);
        assert_eq!(sw.port_count(), 8);
        for port in 0..8 {
            sw.record_pause(port, 0.01 * (port + 1) as f64);
        }
        let ratios = sw.pause_ratios(1.0);
        assert_eq!(ratios.len(), 8);
        for (port, ratio) in ratios.iter().enumerate() {
            assert!((ratio - 0.01 * (port + 1) as f64).abs() < 1e-12);
        }
        sw.reset();
        assert!(sw.pause_ratios(1.0).iter().all(|r| *r == 0.0));
    }

    #[test]
    fn switch_never_has_fewer_than_two_ports() {
        let sw = LosslessSwitch::with_ports(BitRate::from_gbps(100.0), 0);
        assert_eq!(sw.port_count(), 2);
    }
}
