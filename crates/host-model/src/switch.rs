//! The lossless Ethernet switch between the two servers.
//!
//! Collie deliberately evaluates a minimal network (§4): two RNICs on one
//! commodity switch whose ports run at line rate, so the network itself is
//! never congested and any PFC pause frame must originate from a host. The
//! switch model therefore only needs to (a) never be the bottleneck, (b)
//! relay the pause behaviour of the receiver back to the sender, and (c)
//! count the pause frames it receives — that count is what the operator
//! (and our anomaly monitor) watches.

use collie_sim::units::BitRate;
use serde::{Deserialize, Serialize};

/// A two-port lossless top-of-rack switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LosslessSwitch {
    /// Port speed; both ports run at the same speed and match or exceed the
    /// RNIC line rate.
    pub port_speed: BitRate,
    /// Cut-through forwarding latency in nanoseconds.
    pub forwarding_latency_ns: u64,
    pause_seconds_received: [f64; 2],
}

impl LosslessSwitch {
    /// A switch whose ports run at `port_speed`.
    pub fn new(port_speed: BitRate) -> Self {
        LosslessSwitch {
            port_speed,
            forwarding_latency_ns: 600,
            pause_seconds_received: [0.0; 2],
        }
    }

    /// True if the switch can carry `offered` without itself congesting.
    /// With matched port speeds and two ports this is always true for
    /// offered loads at or below line rate — the paper's premise that the
    /// network is congestion-free.
    pub fn can_carry(&self, offered: BitRate) -> bool {
        offered.bits_per_sec() <= self.port_speed.bits_per_sec() + 1.0
    }

    /// Record that the host attached to `port` (0 or 1) asked its switch
    /// port to pause for `seconds` of transmission time.
    pub fn record_pause(&mut self, port: usize, seconds: f64) {
        if port < 2 && seconds > 0.0 {
            self.pause_seconds_received[port] += seconds;
        }
    }

    /// Total pause time received on a port since construction.
    pub fn pause_seconds(&self, port: usize) -> f64 {
        if port < 2 {
            self.pause_seconds_received[port]
        } else {
            0.0
        }
    }

    /// The pause-duration ratio on a port over an observation window: the
    /// fraction of the window the upstream queue was told to stay quiet.
    /// This is the metric the anomaly monitor thresholds at 0.1 %.
    pub fn pause_duration_ratio(&self, port: usize, window_seconds: f64) -> f64 {
        if window_seconds <= 0.0 {
            return 0.0;
        }
        (self.pause_seconds(port) / window_seconds).clamp(0.0, 1.0)
    }

    /// Clear pause accounting (between experiments).
    pub fn reset(&mut self) {
        self.pause_seconds_received = [0.0; 2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_congested_at_or_below_line_rate() {
        let sw = LosslessSwitch::new(BitRate::from_gbps(200.0));
        assert!(sw.can_carry(BitRate::from_gbps(200.0)));
        assert!(sw.can_carry(BitRate::from_gbps(10.0)));
        assert!(!sw.can_carry(BitRate::from_gbps(201.0)));
    }

    #[test]
    fn pause_accounting_and_ratio() {
        let mut sw = LosslessSwitch::new(BitRate::from_gbps(100.0));
        sw.record_pause(0, 0.05);
        sw.record_pause(0, 0.05);
        sw.record_pause(1, 0.2);
        assert!((sw.pause_seconds(0) - 0.1).abs() < 1e-12);
        assert!((sw.pause_duration_ratio(0, 1.0) - 0.1).abs() < 1e-12);
        assert!((sw.pause_duration_ratio(1, 1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ratio_clamps_and_handles_zero_window() {
        let mut sw = LosslessSwitch::new(BitRate::from_gbps(100.0));
        sw.record_pause(0, 5.0);
        assert_eq!(sw.pause_duration_ratio(0, 1.0), 1.0);
        assert_eq!(sw.pause_duration_ratio(0, 0.0), 0.0);
    }

    #[test]
    fn invalid_port_is_ignored() {
        let mut sw = LosslessSwitch::new(BitRate::from_gbps(100.0));
        sw.record_pause(7, 1.0);
        assert_eq!(sw.pause_seconds(7), 0.0);
    }

    #[test]
    fn negative_pause_is_ignored_and_reset_clears() {
        let mut sw = LosslessSwitch::new(BitRate::from_gbps(100.0));
        sw.record_pause(0, -1.0);
        assert_eq!(sw.pause_seconds(0), 0.0);
        sw.record_pause(0, 1.0);
        sw.reset();
        assert_eq!(sw.pause_seconds(0), 0.0);
    }
}
