//! NIC on-chip cache models.
//!
//! The RNIC caches three kinds of state in its limited SRAM (Figure 1,
//! circle 3): per-connection context (QPC, held in ICM), memory-translation
//! table entries (MTT), and prefetched receive WQEs. When the working set
//! outgrows the cache the NIC must fetch the state from host DRAM over PCIe
//! on demand, adding latency to the affected request and consuming PCIe
//! bandwidth — the mechanism behind the classic RDMA scalability anomalies
//! (#7, #8) and the receive-WQE anomalies (#1, #2, #5, #6).
//!
//! Two models are provided: an exact [`LruCache`] used to validate the
//! analytical approximation, and [`miss_rate`], the closed-form working-set
//! estimate the fluid simulator uses (an exact per-access simulation of a
//! million-entry working set per search iteration would be pointlessly
//! slow).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Steady-state miss probability of an LRU cache of `capacity` entries that
/// is offered uniform accesses over a working set of `working_set` entries.
///
/// For uniform random access over `W` items with a cache of `C` entries the
/// steady-state hit rate is `C / W` when `W > C` and 1 otherwise; we smooth
/// the corner slightly so the search sees a gradient as it approaches the
/// cliff rather than a step (the real hardware also degrades before the
/// working set strictly exceeds the cache because of conflict misses).
pub fn miss_rate(working_set: f64, capacity: f64) -> f64 {
    if capacity <= 0.0 {
        return 1.0;
    }
    if working_set <= 0.0 {
        return 0.0;
    }
    let ratio = working_set / capacity;
    if ratio <= 0.8 {
        0.0
    } else if ratio <= 1.0 {
        // Smooth ramp from 0 at 0.8·C to the asymptote's value at C.
        (ratio - 0.8) / 0.2 * 0.2
    } else {
        (1.0 - 1.0 / ratio).max(0.2)
    }
}

/// An exact LRU cache over opaque `u64` keys, used by unit and property
/// tests to sanity-check [`miss_rate`] and by the verbs-layer device model
/// to track hot QPs precisely when the QP count is small.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LruCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Access `key`, returning `true` on a hit. Misses insert the key,
    /// evicting the least recently used entry if the cache is full.
    pub fn access(&mut self, key: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(stamp) = self.entries.get_mut(&key) {
            *stamp = clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&lru_key, _)) = self.entries.iter().min_by_key(|(_, &stamp)| stamp) {
                self.entries.remove(&lru_key);
            }
        }
        self.entries.insert(key, clock);
        false
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Observed miss rate over all accesses (0 when nothing was accessed).
    pub fn observed_miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Forget everything and zero the statistics.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_sim::rng::SimRng;

    #[test]
    fn miss_rate_boundaries() {
        assert_eq!(miss_rate(0.0, 100.0), 0.0);
        assert_eq!(miss_rate(50.0, 100.0), 0.0);
        assert_eq!(miss_rate(10.0, 0.0), 1.0);
        // Deep over-subscription approaches 1.
        assert!(miss_rate(1_000_000.0, 100.0) > 0.99);
    }

    #[test]
    fn miss_rate_is_monotone_in_working_set() {
        let mut last = -1.0;
        for ws in [10.0, 80.0, 90.0, 100.0, 150.0, 400.0, 10_000.0] {
            let m = miss_rate(ws, 100.0);
            assert!(m >= last, "miss_rate({ws}) = {m} < {last}");
            assert!((0.0..=1.0).contains(&m));
            last = m;
        }
    }

    #[test]
    fn miss_rate_has_gradient_before_the_cliff() {
        // The search relies on the counter rising *before* the working set
        // strictly exceeds the cache.
        let just_below = miss_rate(95.0, 100.0);
        assert!(just_below > 0.0 && just_below < 0.25);
    }

    #[test]
    fn lru_hits_when_working_set_fits() {
        let mut lru = LruCache::new(16);
        for round in 0..10 {
            for key in 0..16 {
                let hit = lru.access(key);
                if round > 0 {
                    assert!(hit);
                }
            }
        }
        assert_eq!(lru.misses(), 16);
        assert!(lru.observed_miss_rate() < 0.2);
    }

    #[test]
    fn lru_thrashes_when_working_set_exceeds_capacity() {
        let mut lru = LruCache::new(8);
        // Sequential scan over 16 keys with an 8-entry LRU always misses.
        for _ in 0..20 {
            for key in 0..16 {
                lru.access(key);
            }
        }
        assert!(lru.observed_miss_rate() > 0.9);
    }

    #[test]
    fn lru_random_access_matches_analytical_model() {
        let mut rng = SimRng::new(7);
        let capacity = 64;
        let working_set = 256u64;
        let mut lru = LruCache::new(capacity);
        // Warm up, then measure.
        for _ in 0..5_000 {
            lru.access(rng.gen_range_u64(0, working_set - 1));
        }
        lru.reset();
        // reset clears residency too, so re-warm before measuring.
        for _ in 0..5_000 {
            lru.access(rng.gen_range_u64(0, working_set - 1));
        }
        let observed = lru.observed_miss_rate();
        let predicted = miss_rate(working_set as f64, capacity as f64);
        assert!(
            (observed - predicted).abs() < 0.12,
            "observed {observed:.3} vs predicted {predicted:.3}"
        );
    }

    #[test]
    fn zero_capacity_cache_always_misses() {
        let mut lru = LruCache::new(0);
        for key in 0..10 {
            assert!(!lru.access(key));
        }
        assert_eq!(lru.observed_miss_rate(), 1.0);
        assert!(lru.is_empty());
    }

    #[test]
    fn reset_clears_statistics() {
        let mut lru = LruCache::new(4);
        lru.access(1);
        lru.access(1);
        lru.reset();
        assert_eq!(lru.hits(), 0);
        assert_eq!(lru.misses(), 0);
        assert_eq!(lru.len(), 0);
        assert_eq!(lru.observed_miss_rate(), 0.0);
    }
}
