//! The Table-1 subsystem catalog.
//!
//! Table 1 of the paper lists the eight RDMA subsystems (A–H) the authors
//! evaluate Collie on. Each row pairs an RNIC model with a host platform.
//! This module reconstructs that catalog on top of the host presets and the
//! RNIC specs, and records the per-row metadata the `table1` binary prints.
//!
//! Substitution note (also in DESIGN.md): the paper's Appendix A reproduces
//! all thirteen CX-6 anomalies on "subsystem F". Three of them (#9, #11,
//! #12) additionally require platform quirks — strict PCIe ordering, weak
//! cross-socket DMA forwarding, and an ACS misconfiguration — which the
//! paper attributes to "particular servers". So that a single catalog entry
//! can reproduce the full Figure-4/5/6 anomaly set the way the paper's
//! subsystem F does, our subsystem F's host is configured with those quirks
//! (a chiplet-based CPU, strict ordering, and ACS peer-to-peer redirect).

use crate::spec::RnicModel;
use crate::subsystem::Subsystem;
use collie_host::presets;
use collie_host::topology::HostConfig;
use collie_sim::units::ByteSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one Table-1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SubsystemId {
    /// 25 Gbps CX-5, single-socket Intel.
    A,
    /// 100 Gbps CX-5, dual-socket Intel.
    B,
    /// 100 Gbps CX-5, dual-socket Intel with V100 GPUs.
    C,
    /// 100 Gbps CX-6 DX, dual-socket Intel.
    D,
    /// 200 Gbps CX-6 DX, AMD EPYC with A100 GPUs.
    E,
    /// 200 Gbps CX-6 DX, Intel (chiplet generation) with A100 GPUs — the
    /// subsystem the paper's Figures 4–6 are measured on.
    F,
    /// 200 Gbps CX-6 VPI, AMD EPYC (NPS = 2).
    G,
    /// 100 Gbps Broadcom P2100G, dual-socket Intel.
    H,
}

impl SubsystemId {
    /// All rows of Table 1, in order.
    pub const ALL: [SubsystemId; 8] = [
        SubsystemId::A,
        SubsystemId::B,
        SubsystemId::C,
        SubsystemId::D,
        SubsystemId::E,
        SubsystemId::F,
        SubsystemId::G,
        SubsystemId::H,
    ];

    /// The RNIC model installed in this subsystem.
    pub fn rnic_model(self) -> RnicModel {
        match self {
            SubsystemId::A => RnicModel::Cx5Dx25,
            SubsystemId::B | SubsystemId::C => RnicModel::Cx5Dx100,
            SubsystemId::D => RnicModel::Cx6Dx100,
            SubsystemId::E | SubsystemId::F => RnicModel::Cx6Dx200,
            SubsystemId::G => RnicModel::Cx6Vpi200,
            SubsystemId::H => RnicModel::P2100G,
        }
    }

    /// The host platform of this subsystem (both servers are identical).
    pub fn host(self) -> HostConfig {
        match self {
            SubsystemId::A => presets::intel_entry_host("subsystem-A"),
            SubsystemId::B => {
                presets::intel_xeon_host("subsystem-B", 2, ByteSize::from_gib(768), false)
            }
            SubsystemId::C => {
                presets::intel_xeon_gpu_host("subsystem-C", ByteSize::from_gib(384), false)
            }
            SubsystemId::D => {
                presets::intel_xeon_host("subsystem-D", 2, ByteSize::from_gib(768), false)
            }
            SubsystemId::E => presets::amd_epyc_gpu_host("subsystem-E", ByteSize::from_gib(2048)),
            SubsystemId::F => {
                let mut host =
                    presets::intel_xeon_gpu_host("subsystem-F", ByteSize::from_gib(2048), true);
                host.cpu.name = "Intel(R) Xeon(R) CPU 3".to_string();
                // The platform quirks the paper attributes to "particular
                // servers" (see the module-level substitution note).
                host.cpu.chiplets_per_socket = 4;
                host.cpu.cross_chiplet_latency_ns = 30;
                host.pcie_settings.relaxed_ordering = false;
                host.pcie_settings.acs_redirect_p2p = true;
                host
            }
            SubsystemId::G => presets::amd_epyc_nps2_host("subsystem-G", ByteSize::from_gib(2048)),
            SubsystemId::H => {
                presets::intel_xeon_host("subsystem-H", 2, ByteSize::from_gib(384), false)
            }
        }
    }

    /// Assemble the full two-server subsystem.
    pub fn build(self) -> Subsystem {
        let host = self.host();
        Subsystem::new(
            self.to_string(),
            self.rnic_model().spec(),
            host.clone(),
            host,
        )
    }

    /// The per-row metadata printed by the `table1` binary.
    pub fn info(self) -> SubsystemInfo {
        let host = self.host();
        let spec = self.rnic_model().spec();
        SubsystemInfo {
            id: self,
            rnic: self.rnic_model().name().to_string(),
            speed: spec.speed_label(),
            cpu: host.cpu.name.clone(),
            pcie: host.pcie_link.label(),
            nps: host.cpu.numa_per_socket,
            memory: format!("{} GB", host.total_dram.as_bytes() >> 30),
            gpu: if host.has_gpus() {
                if spec.line_rate.gbps() >= 200.0 {
                    "A100".to_string()
                } else {
                    "V100".to_string()
                }
            } else {
                "-".to_string()
            },
            bios: host.bios.clone(),
            kernel: host.kernel.clone(),
        }
    }
}

impl fmt::Display for SubsystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One printable row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemInfo {
    /// Row id (A–H).
    pub id: SubsystemId,
    /// RNIC model name.
    pub rnic: String,
    /// Port speed label.
    pub speed: String,
    /// Anonymised CPU name.
    pub cpu: String,
    /// PCIe slot label.
    pub pcie: String,
    /// NUMA nodes per socket.
    pub nps: u32,
    /// Installed memory label.
    pub memory: String,
    /// GPU model or "-".
    pub gpu: String,
    /// BIOS vendor.
    pub bios: String,
    /// Kernel version.
    pub kernel: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eight_rows() {
        assert_eq!(SubsystemId::ALL.len(), 8);
        for id in SubsystemId::ALL {
            let info = id.info();
            assert_eq!(info.id, id);
            assert!(!info.rnic.is_empty());
            assert!(!info.cpu.is_empty());
        }
    }

    #[test]
    fn speeds_match_table1() {
        assert_eq!(SubsystemId::A.info().speed, "25 Gbps");
        assert_eq!(SubsystemId::B.info().speed, "100 Gbps");
        assert_eq!(SubsystemId::E.info().speed, "200 Gbps");
        assert_eq!(SubsystemId::F.info().speed, "200 Gbps");
        assert_eq!(SubsystemId::H.info().speed, "100 Gbps");
    }

    #[test]
    fn pcie_generations_match_table1() {
        assert_eq!(SubsystemId::B.info().pcie, "3.0 x 16");
        assert_eq!(SubsystemId::E.info().pcie, "4.0 x 16");
        assert_eq!(SubsystemId::F.info().pcie, "4.0 x 16");
        assert_eq!(SubsystemId::H.info().pcie, "3.0 x 16");
    }

    #[test]
    fn gpu_rows_match_table1() {
        assert_eq!(SubsystemId::A.info().gpu, "-");
        assert_eq!(SubsystemId::C.info().gpu, "V100");
        assert_eq!(SubsystemId::E.info().gpu, "A100");
        assert_eq!(SubsystemId::F.info().gpu, "A100");
        assert_eq!(SubsystemId::H.info().gpu, "-");
    }

    #[test]
    fn subsystem_f_has_the_documented_platform_quirks() {
        let f = SubsystemId::F.host();
        assert!(f.cpu.chiplets_per_socket > 1);
        assert!(!f.pcie_settings.relaxed_ordering);
        assert!(f.pcie_settings.acs_redirect_p2p);
        assert!(f.has_gpus());
    }

    #[test]
    fn broadcom_row_is_h() {
        assert_eq!(SubsystemId::H.rnic_model(), RnicModel::P2100G);
        assert_eq!(SubsystemId::G.rnic_model(), RnicModel::Cx6Vpi200);
    }

    #[test]
    fn build_produces_identical_hosts() {
        let sys = SubsystemId::F.build();
        assert_eq!(sys.host_a, sys.host_b);
        assert_eq!(sys.name, "F");
        assert_eq!(sys.rnic.line_rate.gbps(), 200.0);
    }

    #[test]
    fn nps_column() {
        assert_eq!(SubsystemId::G.info().nps, 2);
        assert_eq!(SubsystemId::F.info().nps, 1);
    }
}
