//! RNIC specifications.
//!
//! Table 1 of the paper covers six NIC models: Mellanox ConnectX-5 DX at 25
//! and 100 Gbps, ConnectX-6 DX at 100 and 200 Gbps, ConnectX-6 VPI at
//! 200 Gbps, and Broadcom P2100G at 100 Gbps. The anomaly monitor compares
//! measured throughput against the *specification* upper bounds (total
//! bits/second and total packets/second), so those two numbers — plus the
//! internal resource sizes the bottleneck models need — are what a spec
//! records. The internal numbers are not vendor data (which is proprietary
//! and unavailable); they are plausible magnitudes chosen so that the
//! modelled subsystem exhibits the trigger surface documented in Table 2 /
//! Appendix A.

use collie_sim::units::{BitRate, ByteSize, PacketRate};
use serde::{Deserialize, Serialize};
use std::fmt;

/// NIC vendor, which selects the bottleneck rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RnicVendor {
    /// NVIDIA Mellanox (ConnectX family).
    Mellanox,
    /// Broadcom (P2100G family).
    Broadcom,
}

/// The six RNIC models of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RnicModel {
    /// ConnectX-5 DX, 25 Gbps (subsystem A).
    Cx5Dx25,
    /// ConnectX-5 DX, 100 Gbps (subsystems B, C).
    Cx5Dx100,
    /// ConnectX-6 DX, 100 Gbps (subsystem D).
    Cx6Dx100,
    /// ConnectX-6 DX, 200 Gbps (subsystems E, F).
    Cx6Dx200,
    /// ConnectX-6 VPI, 200 Gbps (subsystem G).
    Cx6Vpi200,
    /// Broadcom P2100G, 100 Gbps (subsystem H).
    P2100G,
}

impl RnicModel {
    /// The vendor of this model.
    pub fn vendor(self) -> RnicVendor {
        match self {
            RnicModel::P2100G => RnicVendor::Broadcom,
            _ => RnicVendor::Mellanox,
        }
    }

    /// The marketing name used in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            RnicModel::Cx5Dx25 | RnicModel::Cx5Dx100 => "CX-5 DX",
            RnicModel::Cx6Dx100 | RnicModel::Cx6Dx200 => "CX-6 DX",
            RnicModel::Cx6Vpi200 => "CX-6 VPI",
            RnicModel::P2100G => "P2100G",
        }
    }

    /// Whether this is a ConnectX-6 generation part (the model family the
    /// subsystem-F anomalies were observed on).
    pub fn is_cx6(self) -> bool {
        matches!(
            self,
            RnicModel::Cx6Dx100 | RnicModel::Cx6Dx200 | RnicModel::Cx6Vpi200
        )
    }

    /// Build the full specification for this model.
    pub fn spec(self) -> RnicSpec {
        match self {
            RnicModel::Cx5Dx25 => RnicSpec::new(self, 25.0, 35.0),
            RnicModel::Cx5Dx100 => RnicSpec::new(self, 100.0, 90.0),
            RnicModel::Cx6Dx100 => RnicSpec::new(self, 100.0, 115.0),
            RnicModel::Cx6Dx200 => RnicSpec::new(self, 200.0, 215.0),
            RnicModel::Cx6Vpi200 => RnicSpec::new(self, 200.0, 215.0),
            RnicModel::P2100G => RnicSpec::new(self, 100.0, 100.0),
        }
    }
}

impl fmt::Display for RnicModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The quantitative specification of one RNIC model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RnicSpec {
    /// Which model this is.
    pub model: RnicModel,
    /// Port line rate (the bits/second upper bound of the anomaly
    /// definition).
    pub line_rate: BitRate,
    /// Maximum packet processing rate (the packets/second upper bound of
    /// the anomaly definition). Quoted as "message rate" in vendor
    /// datasheets for minimum-size messages.
    pub max_packet_rate: PacketRate,
    /// Number of processing units working on requests in parallel.
    pub processing_units: u32,
    /// Depth of the request pipeline per processing unit. The paper sets
    /// the message-pattern window `n` to `processing_units × pipeline_stages`.
    pub pipeline_stages: u32,
    /// QP-context (ICM) cache capacity, in connections whose state fits
    /// on-chip.
    pub qpc_cache_entries: u32,
    /// Memory-translation-table cache capacity, in MR entries.
    pub mtt_cache_entries: u32,
    /// Receive-WQE cache capacity, in descriptors.
    pub recv_wqe_cache_entries: u32,
    /// Receive packet buffer size (Figure 1, circle 6).
    pub rx_buffer: ByteSize,
    /// Transmit packet buffer size (Figure 1, circle 5).
    pub tx_buffer: ByteSize,
    /// MTUs the device supports (RDMA MTUs: 256 B – 4 KiB).
    pub supported_mtus: Vec<u32>,
    /// Fraction of the packet-processing budget available to each direction
    /// when traffic is bidirectional. 1.0 means the TX and RX processing
    /// paths are fully independent; lower values model the shared component
    /// behind Anomaly #10.
    pub bidirectional_processing_share: f64,
    /// Whether the device rate-limits loopback (host-to-same-host) traffic.
    /// The device behind Anomaly #13 does not, so loopback can starve
    /// receive traffic inside the NIC.
    pub loopback_rate_limited: bool,
    /// Whether the Broadcom register fix for Anomalies #17/#18 has been
    /// applied (vendor-provided mitigation; off by default).
    pub vendor_register_fix: bool,
    /// Whether the firmware release fixing the shared bidirectional
    /// packet-processing bottleneck (Anomaly #10) has been applied
    /// (announced by the vendor in Appendix A; off by default).
    pub firmware_bidir_fix: bool,
}

impl RnicSpec {
    fn new(model: RnicModel, gbps: f64, mpps: f64) -> RnicSpec {
        let big = gbps >= 200.0;
        RnicSpec {
            model,
            line_rate: BitRate::from_gbps(gbps),
            max_packet_rate: PacketRate::from_mpps(mpps),
            processing_units: if big { 8 } else { 4 },
            pipeline_stages: 8,
            qpc_cache_entries: match model.vendor() {
                RnicVendor::Mellanox => 640,
                RnicVendor::Broadcom => 448,
            },
            mtt_cache_entries: match model.vendor() {
                RnicVendor::Mellanox => 16_384,
                RnicVendor::Broadcom => 8_192,
            },
            recv_wqe_cache_entries: match model.vendor() {
                RnicVendor::Mellanox => 1_024,
                RnicVendor::Broadcom => 512,
            },
            rx_buffer: ByteSize::from_kib(if big { 2048 } else { 1024 }),
            tx_buffer: ByteSize::from_kib(if big { 1024 } else { 512 }),
            supported_mtus: vec![256, 512, 1024, 2048, 4096],
            // Bidirectional traffic shares some processing stages, but on a
            // healthy subsystem each direction still clears the 80 %-of-spec
            // bar; the pathological sharing behind Anomaly #10 is modelled
            // as an explicit bottleneck rule instead.
            bidirectional_processing_share: match model.vendor() {
                RnicVendor::Mellanox => 0.88,
                RnicVendor::Broadcom => 0.85,
            },
            loopback_rate_limited: false,
            vendor_register_fix: false,
            firmware_bidir_fix: false,
        }
    }

    /// The message-pattern window length the paper derives from hardware
    /// limits: the number of requests in flight an RNIC can be working on,
    /// `processing_units × pipeline_stages`.
    pub fn request_window(&self) -> u32 {
        self.processing_units * self.pipeline_stages
    }

    /// Whether `mtu` (in bytes) is a supported RDMA MTU.
    pub fn supports_mtu(&self, mtu: u32) -> bool {
        self.supported_mtus.contains(&mtu)
    }

    /// The speed label used in Table 1 ("25 Gbps", "200 Gbps").
    pub fn speed_label(&self) -> String {
        format!("{:.0} Gbps", self.line_rate.gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_have_consistent_specs() {
        for model in [
            RnicModel::Cx5Dx25,
            RnicModel::Cx5Dx100,
            RnicModel::Cx6Dx100,
            RnicModel::Cx6Dx200,
            RnicModel::Cx6Vpi200,
            RnicModel::P2100G,
        ] {
            let spec = model.spec();
            assert!(spec.line_rate.gbps() >= 25.0);
            assert!(spec.max_packet_rate.mpps() > 0.0);
            assert!(spec.request_window() >= 16);
            assert!(spec.rx_buffer.as_bytes() > 0);
            assert!(spec.supports_mtu(1024) && spec.supports_mtu(4096));
            assert!(!spec.supports_mtu(1500), "RDMA MTUs only");
            assert!(spec.bidirectional_processing_share > 0.0);
            assert!(spec.bidirectional_processing_share <= 1.0);
        }
    }

    #[test]
    fn vendors_and_names() {
        assert_eq!(RnicModel::P2100G.vendor(), RnicVendor::Broadcom);
        assert_eq!(RnicModel::Cx6Dx200.vendor(), RnicVendor::Mellanox);
        assert_eq!(RnicModel::Cx6Vpi200.name(), "CX-6 VPI");
        assert_eq!(RnicModel::Cx5Dx100.name(), "CX-5 DX");
        assert!(RnicModel::Cx6Dx200.is_cx6());
        assert!(!RnicModel::Cx5Dx25.is_cx6());
    }

    #[test]
    fn line_rates_match_table1() {
        assert_eq!(RnicModel::Cx5Dx25.spec().line_rate.gbps(), 25.0);
        assert_eq!(RnicModel::Cx5Dx100.spec().line_rate.gbps(), 100.0);
        assert_eq!(RnicModel::Cx6Dx200.spec().line_rate.gbps(), 200.0);
        assert_eq!(RnicModel::P2100G.spec().line_rate.gbps(), 100.0);
        assert_eq!(RnicModel::Cx6Dx200.spec().speed_label(), "200 Gbps");
    }

    #[test]
    fn faster_nics_have_more_processing_units() {
        assert!(
            RnicModel::Cx6Dx200.spec().processing_units
                > RnicModel::Cx5Dx100.spec().processing_units
        );
    }

    #[test]
    fn request_window_is_pu_times_stages() {
        let spec = RnicModel::Cx6Dx200.spec();
        assert_eq!(
            spec.request_window(),
            spec.processing_units * spec.pipeline_stages
        );
    }
}
