//! # collie-rnic
//!
//! Behavioural model of an RDMA NIC and of the assembled two-server RDMA
//! subsystem the Collie search drives.
//!
//! The RNIC is the black box at the centre of the paper: the authors never
//! see its internals, only its externally visible behaviour — achieved
//! throughput, PFC pause frames, and two families of hardware counters.
//! This crate reproduces that observable surface:
//!
//! * [`spec`] — per-model RNIC specifications (line rate, packet-rate
//!   budget, cache sizes, buffer sizes) for the six NIC models of Table 1.
//! * [`workload`] — the flow-level description of an offered workload
//!   (transport, opcode, QP count, queue depths, WQE/SGE batching, message
//!   pattern, memory placement) that the verbs layer and the workload
//!   engine hand to the simulator.
//! * [`cache`] — NIC on-chip cache models (QP context, address translation,
//!   receive WQE) with working-set based miss estimation plus an exact LRU
//!   used in unit tests.
//! * [`bottleneck`] — the six root-cause bottleneck families of Appendix A,
//!   expressed as graded stress rules that feed the diagnostic counters and,
//!   past their trigger surface, degrade the data path.
//! * [`counters`] — the performance and diagnostic counter set exposed to
//!   the search (names, registration, update helpers).
//! * [`pfc`] — PFC pause generation from receive-side service deficits.
//! * [`subsystem`] — the assembled subsystem (two hosts + RNIC model +
//!   lossless switch) and its `evaluate()` entry point, which maps one
//!   workload to one [`Measurement`].
//! * [`subsystems`] — the Table-1 catalog (subsystems A–H).
//! * [`fabric`] — the multi-host extension: N hosts on one switch, PFC
//!   pause propagation to upstream sender ports, and the victim/culprit
//!   gauges cross-host campaigns hunt with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottleneck;
pub mod cache;
pub mod counters;
pub mod fabric;
pub mod pfc;
pub mod spec;
pub mod subsystem;
pub mod subsystems;
pub mod workload;

pub use counters::{diag, perf, RnicCounters};
pub use fabric::{FabricMeasurement, FabricShape, TrafficPattern};
pub use spec::{RnicModel, RnicSpec};
pub use subsystem::{DirectionMetrics, Measurement, Subsystem};
pub use subsystems::{SubsystemId, SubsystemInfo};
pub use workload::{Direction, FlowSpec, MessagePattern, Opcode, Transport, WorkloadSpec};
