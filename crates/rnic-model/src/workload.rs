//! Flow-level workload description.
//!
//! A Collie search point (four dimensions: host topology, memory allocation,
//! transport setting, message pattern) ultimately becomes a set of RDMA
//! traffic flows between the two servers. [`WorkloadSpec`] is that set, and
//! [`FlowSpec`] is one flow: a group of identically configured QPs pushing a
//! repeating message pattern in one direction. The verbs layer produces the
//! same description from an actual sequence of `post_send` calls, so the
//! search and hand-written applications exercise the identical simulator
//! entry point.

use collie_host::memory::MemoryTarget;
use collie_sim::units::ByteSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// RDMA transport type of a queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Reliable Connection.
    Rc,
    /// Unreliable Connection.
    Uc,
    /// Unreliable Datagram.
    Ud,
}

impl Transport {
    /// All transports, in the order the paper lists them.
    pub const ALL: [Transport; 3] = [Transport::Rc, Transport::Uc, Transport::Ud];

    /// Whether a transport requires per-packet acknowledgements (only RC).
    pub fn requires_acks(self) -> bool {
        matches!(self, Transport::Rc)
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transport::Rc => write!(f, "RC"),
            Transport::Uc => write!(f, "UC"),
            Transport::Ud => write!(f, "UD"),
        }
    }
}

/// RDMA operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Two-sided SEND/RECV.
    Send,
    /// One-sided RDMA WRITE.
    Write,
    /// One-sided RDMA READ.
    Read,
}

impl Opcode {
    /// All opcodes.
    pub const ALL: [Opcode; 3] = [Opcode::Send, Opcode::Write, Opcode::Read];

    /// Whether the opcode is two-sided (consumes a receive WQE on the
    /// responder for every message).
    pub fn is_two_sided(self) -> bool {
        matches!(self, Opcode::Send)
    }

    /// Whether this opcode is valid on the given transport: UD supports
    /// only SEND; UC supports SEND and WRITE; RC supports everything.
    pub fn valid_on(self, transport: Transport) -> bool {
        match transport {
            Transport::Rc => true,
            Transport::Uc => !matches!(self, Opcode::Read),
            Transport::Ud => matches!(self, Opcode::Send),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::Send => write!(f, "SEND"),
            Opcode::Write => write!(f, "WRITE"),
            Opcode::Read => write!(f, "READ"),
        }
    }
}

/// Which way a flow's payload moves between the two hosts (A and B) of the
/// testbed. Loopback flows have their client and server collocated on host
/// A — the scenario behind Anomaly #13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Payload flows from host A to host B.
    AToB,
    /// Payload flows from host B to host A.
    BToA,
    /// Client and server are both on host A; payload loops through A's RNIC.
    LoopbackA,
}

impl Direction {
    /// The host whose RNIC transmits the payload (0 = A, 1 = B).
    pub fn sender_host(self) -> usize {
        match self {
            Direction::AToB | Direction::LoopbackA => 0,
            Direction::BToA => 1,
        }
    }

    /// The host whose RNIC receives the payload.
    pub fn receiver_host(self) -> usize {
        match self {
            Direction::AToB => 1,
            Direction::BToA | Direction::LoopbackA => 0,
        }
    }

    /// True for loopback flows.
    pub fn is_loopback(self) -> bool {
        matches!(self, Direction::LoopbackA)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::AToB => write!(f, "A->B"),
            Direction::BToA => write!(f, "B->A"),
            Direction::LoopbackA => write!(f, "loopback(A)"),
        }
    }
}

/// The repeating request-size vector of a flow (search Dimension 4).
///
/// Each element is the byte size of one work request; the sequence repeats
/// for the duration of the experiment, which is how the paper models "a
/// large WRITE followed by a small SEND" style interactions between
/// consecutive requests.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MessagePattern {
    sizes: Vec<u64>,
}

impl MessagePattern {
    /// A pattern repeating a single fixed size (what Perftest generates).
    pub fn uniform(size: u64) -> Self {
        MessagePattern { sizes: vec![size] }
    }

    /// A pattern from an explicit size vector. Empty patterns are replaced
    /// by a single 1-byte request so every flow sends something.
    pub fn new(sizes: Vec<u64>) -> Self {
        if sizes.is_empty() {
            MessagePattern { sizes: vec![1] }
        } else {
            MessagePattern { sizes }
        }
    }

    /// The request sizes, in order.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Number of requests in the repeating window.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Always false: patterns are never empty after construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Mean request size in bytes.
    pub fn mean_size(&self) -> f64 {
        self.sizes.iter().sum::<u64>() as f64 / self.sizes.len() as f64
    }

    /// Largest request in the window.
    pub fn max_size(&self) -> u64 {
        *self.sizes.iter().max().expect("pattern never empty")
    }

    /// Smallest request in the window.
    pub fn min_size(&self) -> u64 {
        *self.sizes.iter().min().expect("pattern never empty")
    }

    /// Fraction of requests that are at most `threshold` bytes.
    pub fn fraction_at_most(&self, threshold: u64) -> f64 {
        self.sizes.iter().filter(|&&s| s <= threshold).count() as f64 / self.sizes.len() as f64
    }

    /// Fraction of requests that are at least `threshold` bytes.
    pub fn fraction_at_least(&self, threshold: u64) -> f64 {
        self.sizes.iter().filter(|&&s| s >= threshold).count() as f64 / self.sizes.len() as f64
    }

    /// True if the window mixes small (≤ `small`) and large (≥ `large`)
    /// requests — the "mix of short and long messages" feature several
    /// anomalies (#9, #10) hinge on.
    pub fn mixes_small_and_large(&self, small: u64, large: u64) -> bool {
        self.fraction_at_most(small) > 0.0 && self.fraction_at_least(large) > 0.0
    }

    /// Average number of MTU-sized packets one request expands to.
    pub fn mean_packets_per_request(&self, mtu: u64) -> f64 {
        let mtu = mtu.max(1);
        self.sizes
            .iter()
            .map(|&s| s.div_ceil(mtu).max(1) as f64)
            .sum::<f64>()
            / self.sizes.len() as f64
    }
}

/// One traffic flow: a group of identically configured QPs in one direction.
/// `Eq`/`Hash` are exact (no floating-point fields), which is what lets the
/// subsystem's incremental evaluation path key per-flow stage results by the
/// flow itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Payload direction.
    pub direction: Direction,
    /// Transport type of every QP in the flow.
    pub transport: Transport,
    /// Opcode used for every request.
    pub opcode: Opcode,
    /// Number of QPs (connections) in the flow.
    pub num_qps: u32,
    /// RDMA path MTU in bytes (256 – 4096).
    pub mtu: u32,
    /// Requests posted per doorbell (the "WQE batch size" of Table 2).
    pub wqe_batch: u32,
    /// Scatter/gather entries per WQE.
    pub sge_per_wqe: u32,
    /// Send work-queue depth per QP.
    pub send_queue_depth: u32,
    /// Receive work-queue depth per QP.
    pub recv_queue_depth: u32,
    /// Memory regions registered per QP on each side.
    pub mrs_per_qp: u32,
    /// Size of each registered MR.
    pub mr_size: ByteSize,
    /// Request-size pattern.
    pub messages: MessagePattern,
    /// Memory the sender's payload is read from.
    pub src_memory: MemoryTarget,
    /// Memory the receiver's payload is written to.
    pub dst_memory: MemoryTarget,
}

impl FlowSpec {
    /// A minimal single-QP RC WRITE flow with sane defaults, used as a
    /// starting point by tests and builders.
    pub fn basic(direction: Direction) -> FlowSpec {
        FlowSpec {
            direction,
            transport: Transport::Rc,
            opcode: Opcode::Write,
            num_qps: 1,
            mtu: 4096,
            wqe_batch: 1,
            sge_per_wqe: 1,
            send_queue_depth: 128,
            recv_queue_depth: 128,
            mrs_per_qp: 1,
            mr_size: ByteSize::from_kib(64),
            messages: MessagePattern::uniform(65536),
            src_memory: MemoryTarget::local_dram(),
            dst_memory: MemoryTarget::local_dram(),
        }
    }

    /// Whether the transport/opcode combination is legal.
    pub fn is_valid(&self) -> bool {
        self.opcode.valid_on(self.transport)
            && self.num_qps > 0
            && self.mtu >= 256
            && self.wqe_batch > 0
            && self.sge_per_wqe > 0
            && self.send_queue_depth > 0
            && self.recv_queue_depth > 0
    }

    /// Mean request size in bytes.
    pub fn mean_message_bytes(&self) -> f64 {
        self.messages.mean_size()
    }

    /// Mean packets generated per request at this flow's MTU.
    pub fn mean_packets_per_message(&self) -> f64 {
        self.messages.mean_packets_per_request(self.mtu as u64)
    }

    /// Approximate bytes of WQE descriptor the RNIC must fetch across PCIe
    /// per request: a 64-byte base descriptor plus 16 bytes per additional
    /// scatter/gather entry, amortised over doorbell batching (batched
    /// WQEs are fetched in larger, more efficient DMA reads, but every WQE
    /// still has to cross the link).
    pub fn wqe_bytes_per_message(&self) -> f64 {
        64.0 + 16.0 * (self.sge_per_wqe.saturating_sub(1)) as f64
    }

    /// Whether the responder must consume a receive WQE per message
    /// (two-sided opcodes only).
    pub fn consumes_recv_wqe(&self) -> bool {
        self.opcode.is_two_sided()
    }

    /// Total MRs registered by this flow on one side.
    pub fn total_mrs(&self) -> u64 {
        self.num_qps as u64 * self.mrs_per_qp as u64
    }

    /// Total bytes of MR space registered by this flow on one side.
    pub fn registered_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.total_mrs() * self.mr_size.as_bytes())
    }
}

/// A complete workload: every flow offered to the subsystem at once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkloadSpec {
    /// The flows, evaluated concurrently.
    pub flows: Vec<FlowSpec>,
}

impl WorkloadSpec {
    /// A workload with a single flow.
    pub fn single(flow: FlowSpec) -> Self {
        WorkloadSpec { flows: vec![flow] }
    }

    /// All flows whose payload is transmitted by `host` (0 = A, 1 = B).
    pub fn flows_sent_by(&self, host: usize) -> impl Iterator<Item = &FlowSpec> {
        self.flows
            .iter()
            .filter(move |f| f.direction.sender_host() == host)
    }

    /// All flows whose payload is received by `host`.
    pub fn flows_received_by(&self, host: usize) -> impl Iterator<Item = &FlowSpec> {
        self.flows
            .iter()
            .filter(move |f| f.direction.receiver_host() == host)
    }

    /// True if payload moves in both directions between the hosts
    /// (loopback does not count as a second direction by itself).
    pub fn is_bidirectional(&self) -> bool {
        let a_to_b = self.flows.iter().any(|f| f.direction == Direction::AToB);
        let b_to_a = self.flows.iter().any(|f| f.direction == Direction::BToA);
        a_to_b && b_to_a
    }

    /// True if any flow is loopback.
    pub fn has_loopback(&self) -> bool {
        self.flows.iter().any(|f| f.direction.is_loopback())
    }

    /// Total QPs across all flows (both hosts create one endpoint each, so
    /// this is the per-host connection count).
    pub fn total_qps(&self) -> u64 {
        self.flows.iter().map(|f| f.num_qps as u64).sum()
    }

    /// Total MRs registered per host.
    pub fn total_mrs(&self) -> u64 {
        self.flows.iter().map(|f| f.total_mrs()).sum()
    }

    /// Total registered bytes per host.
    pub fn registered_bytes(&self) -> ByteSize {
        self.flows.iter().map(|f| f.registered_bytes()).sum()
    }

    /// True if every flow is individually valid and there is at least one.
    pub fn is_valid(&self) -> bool {
        !self.flows.is_empty() && self.flows.iter().all(|f| f.is_valid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_transport_validity_matrix() {
        assert!(Opcode::Read.valid_on(Transport::Rc));
        assert!(Opcode::Write.valid_on(Transport::Rc));
        assert!(Opcode::Send.valid_on(Transport::Rc));
        assert!(!Opcode::Read.valid_on(Transport::Uc));
        assert!(Opcode::Write.valid_on(Transport::Uc));
        assert!(Opcode::Send.valid_on(Transport::Ud));
        assert!(!Opcode::Write.valid_on(Transport::Ud));
        assert!(!Opcode::Read.valid_on(Transport::Ud));
    }

    #[test]
    fn message_pattern_statistics() {
        let p = MessagePattern::new(vec![128, 65536, 1024]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.max_size(), 65536);
        assert_eq!(p.min_size(), 128);
        assert!((p.mean_size() - 22229.333).abs() < 0.01);
        assert!(p.mixes_small_and_large(1024, 65536));
        assert!(!p.mixes_small_and_large(64, 65536));
        assert!((p.fraction_at_most(1024) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern_becomes_one_byte_request() {
        let p = MessagePattern::new(vec![]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.sizes(), &[1]);
        assert!(!p.is_empty());
    }

    #[test]
    fn packets_per_request_respects_mtu() {
        let p = MessagePattern::new(vec![4096, 1024]);
        assert!((p.mean_packets_per_request(1024) - 2.5).abs() < 1e-12);
        assert!((p.mean_packets_per_request(4096) - 1.0).abs() < 1e-12);
        // Zero-byte and zero-MTU inputs stay defined.
        let z = MessagePattern::new(vec![0]);
        assert_eq!(z.mean_packets_per_request(0), 1.0);
    }

    #[test]
    fn direction_endpoints() {
        assert_eq!(Direction::AToB.sender_host(), 0);
        assert_eq!(Direction::AToB.receiver_host(), 1);
        assert_eq!(Direction::BToA.sender_host(), 1);
        assert_eq!(Direction::BToA.receiver_host(), 0);
        assert_eq!(Direction::LoopbackA.sender_host(), 0);
        assert_eq!(Direction::LoopbackA.receiver_host(), 0);
        assert!(Direction::LoopbackA.is_loopback());
    }

    #[test]
    fn flow_validity() {
        let mut f = FlowSpec::basic(Direction::AToB);
        assert!(f.is_valid());
        f.transport = Transport::Ud;
        f.opcode = Opcode::Read;
        assert!(!f.is_valid());
        f.opcode = Opcode::Send;
        assert!(f.is_valid());
        f.num_qps = 0;
        assert!(!f.is_valid());
    }

    #[test]
    fn flow_derived_quantities() {
        let mut f = FlowSpec::basic(Direction::AToB);
        f.messages = MessagePattern::uniform(8192);
        f.mtu = 1024;
        f.sge_per_wqe = 4;
        f.mrs_per_qp = 8;
        f.num_qps = 10;
        assert!((f.mean_packets_per_message() - 8.0).abs() < 1e-12);
        assert_eq!(f.wqe_bytes_per_message(), 64.0 + 48.0);
        assert_eq!(f.total_mrs(), 80);
        assert_eq!(f.registered_bytes(), ByteSize::from_kib(64 * 80));
        assert!(!f.consumes_recv_wqe());
        f.opcode = Opcode::Send;
        assert!(f.consumes_recv_wqe());
    }

    #[test]
    fn workload_direction_queries() {
        let w = WorkloadSpec {
            flows: vec![
                FlowSpec::basic(Direction::AToB),
                FlowSpec::basic(Direction::BToA),
                FlowSpec::basic(Direction::LoopbackA),
            ],
        };
        assert!(w.is_bidirectional());
        assert!(w.has_loopback());
        assert_eq!(w.flows_sent_by(0).count(), 2);
        assert_eq!(w.flows_received_by(0).count(), 2);
        assert_eq!(w.flows_sent_by(1).count(), 1);
        assert_eq!(w.total_qps(), 3);

        let uni = WorkloadSpec::single(FlowSpec::basic(Direction::AToB));
        assert!(!uni.is_bidirectional());
        assert!(!uni.has_loopback());
        assert!(uni.is_valid());
        assert!(!WorkloadSpec::default().is_valid());
    }
}
