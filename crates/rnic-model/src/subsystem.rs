//! The assembled RDMA subsystem and its workload evaluator.
//!
//! A [`Subsystem`] is the unit the paper tests: two identical servers with
//! one RNIC each, connected by a lossless switch. [`Subsystem::evaluate`]
//! plays the role of running the workload engine for one iteration (20–60 s
//! on hardware): it takes a [`WorkloadSpec`], resolves every flow against
//! the fluid performance model and the bottleneck rules, and returns a
//! [`Measurement`] with per-direction throughput, per-host pause-duration
//! ratios, and a snapshot of all hardware counters — the exact observables
//! the Collie search layer consumes.

use crate::bottleneck::{evaluate_rules, Effect, FlowContext, StressReport};
use crate::cache::miss_rate;
use crate::counters::{diag, perf, RnicCounterBatch, RnicCounters};
use crate::pfc::PauseAccount;
use crate::spec::RnicSpec;
use crate::workload::{Direction, FlowSpec, Opcode, Transport, WorkloadSpec};
use collie_host::memory::MemoryTarget;
use collie_host::switch::LosslessSwitch;
use collie_host::topology::{DmaDirection, HostConfig};
use collie_sim::counters::{CounterRegistry, CounterSnapshot};
use collie_sim::time::SimDuration;
use collie_sim::units::{BitRate, ByteSize, PacketRate};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fraction of a receive deficit absorbed without emitting pause frames
/// (start-up transients; see §5.2's rationale for a non-zero threshold).
const PAUSE_GRACE: f64 = 0.02;

/// Scale applied to unit-less stress/miss fractions when publishing them as
/// counter values (events per second); the search normalises anyway.
const DIAG_SCALE: f64 = 1.0e6;

/// Bound on each incremental stage cache. When a map reaches the cap it is
/// cleared wholesale before the next insert — clearing only ever causes a
/// recomputation of the identical value, never a different one, so the
/// eviction policy needs no ordering bookkeeping to stay deterministic.
const DELTA_CACHE_CAP: usize = 512;

/// Reuse counters of the incremental evaluation path: how many per-flow
/// rule-stage and per-direction fluid-stage computations were served from
/// the delta caches vs. computed fresh. Purely execution-descriptive — the
/// measurements themselves are byte-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalUse {
    /// Per-flow rule evaluations served from the delta cache.
    pub flow_hits: u64,
    /// Per-flow rule evaluations computed fresh (and then cached).
    pub flow_misses: u64,
    /// Per-direction fluid outcomes served from the delta cache.
    pub direction_hits: u64,
    /// Per-direction fluid outcomes computed fresh (and then cached).
    pub direction_misses: u64,
}

impl IncrementalUse {
    /// Total stage computations avoided.
    pub fn total_hits(&self) -> u64 {
        self.flow_hits + self.direction_hits
    }

    /// Total stage computations performed.
    pub fn total_misses(&self) -> u64 {
        self.flow_misses + self.direction_misses
    }
}

/// FxHash-style multiply-rotate hasher for the delta caches. The cache keys
/// are small fixed-shape structs of plain integers; SipHash's DoS hardening
/// buys nothing against them and its per-call setup cost dominated the
/// lookup path.
#[derive(Default)]
struct DeltaHasher(u64);

impl std::hash::Hasher for DeltaHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.write_u64(byte as u64);
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }

    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type DeltaBuild = std::hash::BuildHasherDefault<DeltaHasher>;

/// Small/large request thresholds of the message-mix predicate rules #9 and
/// #10 share (`messages.mixes_small_and_large(1 KiB, 64 KiB)`).
const SMALL_MSG_BYTES: u64 = 1024;
const LARGE_MSG_BYTES: u64 = 64 * 1024;

/// One-pass summary of a flow's message pattern at its MTU: every message
/// projection either stage key reads, gathered in a single scan of the size
/// window instead of one scan per projection. Each field reproduces the
/// corresponding [`MessagePattern`](crate::workload::MessagePattern) method
/// operation-for-operation, so keys built from a summary match keys built
/// from the methods bit for bit.
#[derive(Debug, Clone, Copy)]
struct MsgSummary {
    /// `mean_message_bytes().to_bits()`.
    mean_bits: u64,
    /// `mean_packets_per_message().to_bits()` (at the flow's MTU).
    pkts_bits: u64,
    /// `messages.max_size()`.
    max: u64,
    /// `messages.mixes_small_and_large(SMALL_MSG_BYTES, LARGE_MSG_BYTES)`.
    mixes: bool,
}

impl MsgSummary {
    fn of(flow: &FlowSpec) -> MsgSummary {
        let sizes = flow.messages.sizes();
        let mtu = (flow.mtu as u64).max(1);
        let mut sum = 0u64;
        let mut max = 0u64;
        let mut pkts = 0.0f64;
        let mut small = false;
        let mut large = false;
        for &size in sizes {
            sum += size;
            max = max.max(size);
            pkts += size.div_ceil(mtu).max(1) as f64;
            small |= size <= SMALL_MSG_BYTES;
            large |= size >= LARGE_MSG_BYTES;
        }
        let count = sizes.len() as f64;
        MsgSummary {
            mean_bits: (sum as f64 / count).to_bits(),
            pkts_bits: (pkts / count).to_bits(),
            max,
            mixes: small && large,
        }
    }
}

/// Workload-global projections the bottleneck rules read, computed once per
/// evaluation in a single pass over the flows (the old per-flow key
/// constructor re-scanned the whole flow list for each of them, per flow).
#[derive(Debug, Clone, Copy, Default)]
struct WorkloadSig {
    key: WorkloadSigKey,
    /// Rule #13's co-existence condition, resolved per receiver host: some
    /// non-loopback flow is received by host 0 / host 1.
    rx_by_host: [bool; 2],
}

/// The part of [`WorkloadSig`] that enters [`FlowRuleKey`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct WorkloadSigKey {
    /// `WorkloadSpec::is_bidirectional` (rules #9, #11, #14).
    bidirectional: bool,
    /// `bidirectional_for(w, Rc, Read)` (rule #4).
    bidir_rc_read: bool,
    /// `bidirectional_for(w, Rc, Write)` (rules #10, #18).
    bidir_rc_write: bool,
    /// `matching_qps(w, Rc, Read)` (rule #4).
    qps_rc_read: u64,
    /// `matching_qps(w, Rc, Write)` (rules #10, #18).
    qps_rc_write: u64,
    /// Workload-wide RC QP count (rule #14).
    qps_rc_total: u64,
}

impl WorkloadSig {
    fn of(workload: &WorkloadSpec) -> WorkloadSig {
        let mut key = WorkloadSigKey {
            bidirectional: workload.is_bidirectional(),
            ..WorkloadSigKey::default()
        };
        let mut rc_read = [false; 2];
        let mut rc_write = [false; 2];
        let mut rx_by_host = [false; 2];
        for flow in &workload.flows {
            if !flow.direction.is_loopback() {
                rx_by_host[flow.direction.receiver_host()] = true;
            }
            if flow.transport != Transport::Rc {
                continue;
            }
            key.qps_rc_total += flow.num_qps as u64;
            let direction = match flow.direction {
                Direction::AToB => Some(0),
                Direction::BToA => Some(1),
                _ => None,
            };
            match flow.opcode {
                Opcode::Read => {
                    key.qps_rc_read += flow.num_qps as u64;
                    if let Some(side) = direction {
                        rc_read[side] = true;
                    }
                }
                Opcode::Write => {
                    key.qps_rc_write += flow.num_qps as u64;
                    if let Some(side) = direction {
                        rc_write[side] = true;
                    }
                }
                _ => {}
            }
        }
        key.bidir_rc_read = rc_read[0] && rc_read[1];
        key.bidir_rc_write = rc_write[0] && rc_write[1];
        WorkloadSig { key, rx_by_host }
    }
}

/// Cache key of the per-flow rule stage: a by-value projection of
/// everything [`evaluate_rules`] can read. Host and RNIC configuration are
/// fixed per subsystem, so they are not part of the key. Two deliberate
/// narrowings keep the key allocation-free and widen its reuse:
///
/// * the message pattern enters only through the three summaries the rules
///   consume — mean size, max size, and the small/large mix predicate —
///   never as the raw size vector;
/// * the flow's direction enters only through the host pair it selects
///   plus rule #13's loopback/co-existence conditions, so when both hosts
///   are interchangeable the reverse flow of a symmetric bidirectional
///   pair maps to the forward flow's entry.
///
/// If a future rule reads a new feature it must be added here — the
/// differential suite in `tests/incremental_properties` is the tripwire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FlowRuleKey {
    transport: Transport,
    opcode: Opcode,
    num_qps: u32,
    mtu: u32,
    wqe_batch: u32,
    sge_per_wqe: u32,
    send_queue_depth: u32,
    recv_queue_depth: u32,
    total_mrs: u64,
    msg_mean_bits: u64,
    msg_max: u64,
    /// `messages.mixes_small_and_large(1 KiB, 64 KiB)` — the threshold pair
    /// rules #9 and #10 share.
    msg_mixes: bool,
    src_memory: MemoryTarget,
    dst_memory: MemoryTarget,
    /// `(sender, receiver)` host indices, canonicalised to `(0, 1)` for
    /// non-loopback flows when the hosts are interchangeable.
    hosts: (u8, u8),
    loopback: bool,
    remote_rx: bool,
    sig: WorkloadSigKey,
}

impl FlowRuleKey {
    fn of(
        flow: &FlowSpec,
        summary: &MsgSummary,
        sig: &WorkloadSig,
        symmetric: bool,
    ) -> FlowRuleKey {
        let loopback = flow.direction.is_loopback();
        let hosts = if symmetric && !loopback {
            (0, 1)
        } else {
            (
                flow.direction.sender_host() as u8,
                flow.direction.receiver_host() as u8,
            )
        };
        FlowRuleKey {
            transport: flow.transport,
            opcode: flow.opcode,
            num_qps: flow.num_qps,
            mtu: flow.mtu,
            wqe_batch: flow.wqe_batch,
            sge_per_wqe: flow.sge_per_wqe,
            send_queue_depth: flow.send_queue_depth,
            recv_queue_depth: flow.recv_queue_depth,
            total_mrs: flow.total_mrs(),
            msg_mean_bits: summary.mean_bits,
            msg_max: summary.max,
            msg_mixes: summary.mixes,
            src_memory: flow.src_memory,
            dst_memory: flow.dst_memory,
            hosts,
            loopback,
            remote_rx: sig.rx_by_host[flow.direction.receiver_host()],
            sig: sig.key,
        }
    }
}

/// Per-flow projection of everything the fluid stage reads from one flow.
/// The message pattern enters only through its mean request size and mean
/// packets-per-request (already resolved at the flow's MTU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FluidFlowKey {
    num_qps: u32,
    mtu: u32,
    msg_mean_bits: u64,
    msg_pkts_bits: u64,
    src_memory: MemoryTarget,
    dst_memory: MemoryTarget,
}

impl FluidFlowKey {
    fn of(flow: &FlowSpec, summary: &MsgSummary) -> FluidFlowKey {
        FluidFlowKey {
            num_qps: flow.num_qps,
            mtu: flow.mtu,
            msg_mean_bits: summary.mean_bits,
            msg_pkts_bits: summary.pkts_bits,
            src_memory: flow.src_memory,
            dst_memory: flow.dst_memory,
        }
    }
}

/// Cache key of the per-direction fluid stage: the direction, the
/// bidirectional processing-share flag, and the narrow projection of each
/// flow in that direction (in workload order). Knobs the fluid model never
/// reads — transport, opcode, WQE batch, SG length, queue depths, MR
/// layout — are deliberately absent, which is what makes one-knob mutations
/// of those features hit this cache. The fluid model reads the direction
/// only to pick its sender/receiver hosts, so non-loopback directions are
/// canonicalised to A→B when the hosts are interchangeable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FluidKey {
    direction: Direction,
    bidirectional: bool,
    flows: FluidFlowsKey,
}

/// The flow list of a [`FluidKey`]. The engine's point translation emits at
/// most one flow per direction, so the single-flow case is inlined without
/// a heap allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum FluidFlowsKey {
    One(FluidFlowKey),
    Many(Vec<FluidFlowKey>),
}

impl FluidKey {
    fn of(
        direction: Direction,
        flows: &[&FlowSpec],
        summaries: &[MsgSummary],
        sig: &WorkloadSig,
        symmetric: bool,
    ) -> FluidKey {
        let direction = if symmetric && !direction.is_loopback() {
            Direction::AToB
        } else {
            direction
        };
        let flows = if let ([only], [summary]) = (flows, summaries) {
            FluidFlowsKey::One(FluidFlowKey::of(only, summary))
        } else {
            FluidFlowsKey::Many(
                flows
                    .iter()
                    .zip(summaries)
                    .map(|(f, s)| FluidFlowKey::of(f, s))
                    .collect(),
            )
        };
        FluidKey {
            direction,
            bidirectional: sig.key.bidirectional,
            flows,
        }
    }
}

/// The fluid stage's pure result: offered and drain rates (bits/s) before
/// rule effects and host-level PCIe sharing are applied.
#[derive(Debug, Clone, Copy)]
struct DirectionFluid {
    offered_bps: f64,
    drain_bps: f64,
    mean_packet_bytes: f64,
}

/// Throughput and packet rate achieved by one traffic direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectionMetrics {
    /// Which direction this row describes.
    pub direction: Direction,
    /// Rate the senders could have injected had the receiver kept up.
    pub offered: BitRate,
    /// Achieved goodput.
    pub throughput: BitRate,
    /// Achieved packet rate.
    pub packet_rate: PacketRate,
}

/// The result of one experiment on the subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Per-direction results (only directions with flows appear).
    pub directions: Vec<DirectionMetrics>,
    /// Pause-duration ratio per host (index 0 = host A, 1 = host B).
    pub pause_ratio: [f64; 2],
    /// Snapshot of every performance and diagnostic counter.
    pub counters: CounterSnapshot,
    /// Simulated observation window.
    pub window: SimDuration,
}

impl Measurement {
    /// The worst pause-duration ratio across both hosts.
    pub fn max_pause_ratio(&self) -> f64 {
        self.pause_ratio[0].max(self.pause_ratio[1])
    }

    /// Aggregate achieved throughput across all directions.
    pub fn total_throughput(&self) -> BitRate {
        self.directions
            .iter()
            .fold(BitRate::ZERO, |acc, d| acc + d.throughput)
    }

    /// Aggregate achieved packet rate across all directions.
    pub fn total_packet_rate(&self) -> PacketRate {
        PacketRate::from_pps(self.directions.iter().map(|d| d.packet_rate.pps()).sum())
    }

    /// Metrics for one direction, if it carried traffic.
    pub fn direction(&self, direction: Direction) -> Option<&DirectionMetrics> {
        self.directions.iter().find(|d| d.direction == direction)
    }

    /// An all-zero measurement (used for invalid workloads).
    pub fn empty(counters: CounterSnapshot) -> Measurement {
        Measurement {
            directions: Vec::new(),
            pause_ratio: [0.0, 0.0],
            counters,
            window: SimDuration::from_secs(1),
        }
    }
}

/// A two-server RDMA subsystem under test.
#[derive(Debug, Clone)]
pub struct Subsystem {
    /// Display name (e.g. "F").
    pub name: String,
    /// The RNIC model installed in both servers.
    pub rnic: RnicSpec,
    /// Host A.
    pub host_a: HostConfig,
    /// Host B.
    pub host_b: HostConfig,
    /// The lossless switch between them.
    pub switch: LosslessSwitch,
    registry: CounterRegistry,
    counters: RnicCounters,
    incremental: bool,
    flow_cache: HashMap<FlowRuleKey, Vec<StressReport>, DeltaBuild>,
    fluid_cache: HashMap<FluidKey, DirectionFluid, DeltaBuild>,
    inc_use: IncrementalUse,
}

struct DirectionOutcome {
    direction: Direction,
    offered: BitRate,
    drain: BitRate,
    mean_packet_bytes: f64,
}

impl Subsystem {
    /// Assemble a subsystem from its parts.
    pub fn new(
        name: impl Into<String>,
        rnic: RnicSpec,
        host_a: HostConfig,
        host_b: HostConfig,
    ) -> Self {
        let registry = CounterRegistry::new();
        let counters = RnicCounters::register(&registry);
        let switch = LosslessSwitch::new(rnic.line_rate);
        Subsystem {
            name: name.into(),
            rnic,
            host_a,
            host_b,
            switch,
            registry,
            counters,
            incremental: false,
            flow_cache: HashMap::default(),
            fluid_cache: HashMap::default(),
            inc_use: IncrementalUse::default(),
        }
    }

    /// Enable or disable the incremental evaluation path. Off by default;
    /// measurements are byte-identical either way — the switch only decides
    /// whether per-flow and per-direction stage results are cached between
    /// [`Subsystem::evaluate`] calls. Disabling drops the caches.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.incremental = enabled;
        if !enabled {
            self.flow_cache.clear();
            self.fluid_cache.clear();
        }
    }

    /// Whether the incremental evaluation path is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Cumulative delta-cache reuse counters (never reset by
    /// [`Subsystem::evaluate`]'s per-experiment counter reset).
    pub fn incremental_use(&self) -> IncrementalUse {
        self.inc_use
    }

    /// A handle to the counter registry (what the vendor monitoring daemon
    /// would expose).
    pub fn registry(&self) -> CounterRegistry {
        self.registry.clone()
    }

    /// The host at `index` (0 = A, 1 = B).
    pub fn host(&self, index: usize) -> &HostConfig {
        if index == 0 {
            &self.host_a
        } else {
            &self.host_b
        }
    }

    fn host_pair_for(&self, flow: &FlowSpec) -> (&HostConfig, &HostConfig) {
        let sender = self.host(flow.direction.sender_host());
        let receiver = self.host(flow.direction.receiver_host());
        (sender, receiver)
    }

    /// Whether hosts A and B are indistinguishable to the evaluation: every
    /// field the rules or the fluid model can read compares equal. Name,
    /// BIOS and kernel strings are cosmetic (the fabric layer renames
    /// cloned hosts per index) and deliberately excluded. When true, the
    /// delta-cache keys canonicalise non-loopback directions, so the
    /// reverse leg of a symmetric bidirectional pair reuses the forward
    /// leg's entries.
    fn hosts_interchangeable(&self) -> bool {
        let (a, b) = (&self.host_a, &self.host_b);
        a.cpu == b.cpu
            && a.pcie_link == b.pcie_link
            && a.pcie_settings == b.pcie_settings
            && a.ddio == b.ddio
            && a.rnic_socket == b.rnic_socket
            && a.total_dram == b.total_dram
            && a.gpus == b.gpus
    }

    /// Run one experiment: offer `workload` for the measurement window and
    /// observe throughput, pause behaviour, and counters.
    pub fn evaluate(&mut self, workload: &WorkloadSpec) -> Measurement {
        self.counters.reset();
        self.switch.reset();
        if !workload.is_valid() {
            return Measurement::empty(self.registry.snapshot());
        }

        // --- Stage 1 — bottleneck rules: stress counters and collect
        // triggered effects, per flow (delta-cached when incremental).
        // Per-counter stress maxima accumulate in a plain array indexed by
        // `diag::ALL` position; distinct counters receive independent adds
        // in stage 5, so the array order is value-identical to the sorted
        // map it replaced.
        let sig = WorkloadSig::of(workload);
        let symmetric = self.incremental && self.hosts_interchangeable();
        let summaries: Vec<MsgSummary> = if self.incremental {
            workload.flows.iter().map(MsgSummary::of).collect()
        } else {
            Vec::new()
        };
        let mut rule_reports: Vec<(Direction, StressReport)> = Vec::new();
        let mut diag_stress = [0.0_f64; diag::ALL.len()];
        let absorb = |reports: &[StressReport],
                      direction: Direction,
                      diag_stress: &mut [f64; diag::ALL.len()],
                      rule_reports: &mut Vec<(Direction, StressReport)>| {
            for report in reports {
                if let Some(index) = diag::index_of(report.counter) {
                    diag_stress[index] = diag_stress[index].max(report.stress);
                }
                rule_reports.push((direction, *report));
            }
        };
        // The reverse flow of a symmetric bidirectional pair is adjacent to
        // its forward flow in translation order and canonicalises to the
        // same key; remembering the previous flow's key and report range
        // lets it reuse those reports without touching the hash map at all.
        // Re-applying the max-merge over identical reports is idempotent.
        let mut last: Option<(FlowRuleKey, std::ops::Range<usize>)> = None;
        for (index, flow) in workload.flows.iter().enumerate() {
            if self.incremental {
                let key = FlowRuleKey::of(flow, &summaries[index], &sig, symmetric);
                if let Some((last_key, range)) = &last {
                    if *last_key == key {
                        self.inc_use.flow_hits += 1;
                        for i in range.clone() {
                            let report = rule_reports[i].1;
                            if let Some(slot) = diag::index_of(report.counter) {
                                diag_stress[slot] = diag_stress[slot].max(report.stress);
                            }
                            rule_reports.push((flow.direction, report));
                        }
                        continue;
                    }
                }
                let start = rule_reports.len();
                if let Some(cached) = self.flow_cache.get(&key) {
                    self.inc_use.flow_hits += 1;
                    absorb(cached, flow.direction, &mut diag_stress, &mut rule_reports);
                } else {
                    let computed = self.flow_reports(flow, workload);
                    self.inc_use.flow_misses += 1;
                    absorb(
                        &computed,
                        flow.direction,
                        &mut diag_stress,
                        &mut rule_reports,
                    );
                    if self.flow_cache.len() >= DELTA_CACHE_CAP {
                        self.flow_cache.clear();
                    }
                    self.flow_cache.insert(key, computed);
                }
                last = Some((key, start..rule_reports.len()));
            } else {
                let computed = self.flow_reports(flow, workload);
                absorb(
                    &computed,
                    flow.direction,
                    &mut diag_stress,
                    &mut rule_reports,
                );
            }
        }

        // --- Stage 2 — per-direction fluid model (delta-cached when
        // incremental), then the per-direction rule effects.
        let mut outcomes: Vec<DirectionOutcome> = Vec::new();
        for direction in [Direction::AToB, Direction::BToA, Direction::LoopbackA] {
            let mut flows: Vec<&FlowSpec> = Vec::new();
            let mut flow_summaries: Vec<MsgSummary> = Vec::new();
            for (index, flow) in workload.flows.iter().enumerate() {
                if flow.direction == direction {
                    flows.push(flow);
                    if self.incremental {
                        flow_summaries.push(summaries[index]);
                    }
                }
            }
            if flows.is_empty() {
                continue;
            }
            outcomes.push(self.direction_outcome(
                direction,
                &flows,
                &flow_summaries,
                workload,
                &sig,
                symmetric,
                &rule_reports,
            ));
        }

        // --- Stage 3 — host-level PCIe sharing (full-duplex: payload reads
        // towards the NIC on the transmit side, payload writes from the NIC
        // on the receive side). The mean payload size is workload-invariant,
        // so it is computed once, outside the per-host loop.
        let mean_payload = mean_payload_bytes(workload);
        for host_idx in 0..2 {
            let host = self.host(host_idx);
            let capacity = host.pcie_link.effective_bandwidth(
                ByteSize::from_bytes(mean_payload as u64),
                &host.pcie_settings,
            );

            let tx_demand: f64 = outcomes
                .iter()
                .filter(|o| o.direction.sender_host() == host_idx)
                .map(|o| o.offered.bits_per_sec())
                .sum();
            let rx_demand: f64 = outcomes
                .iter()
                .filter(|o| o.direction.receiver_host() == host_idx)
                .map(|o| o.drain.bits_per_sec())
                .sum();

            if tx_demand > capacity.bits_per_sec() {
                let scale = capacity.bits_per_sec() / tx_demand;
                for o in outcomes
                    .iter_mut()
                    .filter(|o| o.direction.sender_host() == host_idx)
                {
                    o.offered = o.offered.scaled(scale);
                }
            }
            if rx_demand > capacity.bits_per_sec() {
                let scale = capacity.bits_per_sec() / rx_demand;
                let backpressure = 1.0 - scale;
                self.counters
                    .add_diag(diag::PCIE_BACKPRESSURE, backpressure * DIAG_SCALE);
                for o in outcomes
                    .iter_mut()
                    .filter(|o| o.direction.receiver_host() == host_idx)
                {
                    o.drain = o.drain.scaled(scale);
                }
            }
        }

        // --- Stage 4 — pause accounting and achieved throughput.
        let mut pause_parts: [Vec<PauseAccount>; 2] = [Vec::new(), Vec::new()];
        let mut metrics = Vec::new();
        for o in &outcomes {
            let achieved = o.offered.min(o.drain);
            let receiver = o.direction.receiver_host();
            pause_parts[receiver].push(PauseAccount::from_rates(o.offered, o.drain, PAUSE_GRACE));
            let pps = if o.mean_packet_bytes > 0.0 {
                achieved.bytes_per_sec() / o.mean_packet_bytes
            } else {
                0.0
            };
            metrics.push(DirectionMetrics {
                direction: o.direction,
                offered: o.offered,
                throughput: achieved,
                packet_rate: PacketRate::from_pps(pps),
            });
        }
        let pause_ratio = [
            PauseAccount::combine(&pause_parts[0]).pause_ratio,
            PauseAccount::combine(&pause_parts[1]).pause_ratio,
        ];
        self.switch.record_pause(0, pause_ratio[0]);
        self.switch.record_pause(1, pause_ratio[1]);

        // --- Stage 5 — publish counters, under a single registry lock.
        // Update order (generic diagnostics, rule stress, performance
        // gauges) matches the unbatched path it replaced; a zero stress
        // maximum adds nothing, so unreported counters are skipped.
        {
            let mut batch = self.counters.batch();
            self.publish_generic_diagnostics(&mut batch, workload, &metrics, pause_ratio);
            for (index, name) in diag::ALL.iter().enumerate() {
                let stress = diag_stress[index];
                if stress > 0.0 {
                    batch.add_diag(name, stress * DIAG_SCALE);
                }
            }
            let total_bps: f64 = metrics.iter().map(|m| m.throughput.bits_per_sec()).sum();
            let total_pps: f64 = metrics.iter().map(|m| m.packet_rate.pps()).sum();
            batch.set_perf(perf::TX_BYTES_PER_SEC, total_bps / 8.0);
            batch.set_perf(perf::RX_BYTES_PER_SEC, total_bps / 8.0);
            batch.set_perf(perf::TX_PACKETS_PER_SEC, total_pps);
            batch.set_perf(perf::RX_PACKETS_PER_SEC, total_pps);
        }

        Measurement {
            directions: metrics,
            pause_ratio,
            counters: self.registry.snapshot(),
            window: SimDuration::from_secs(1),
        }
    }

    /// Stage-1 unit: evaluate every bottleneck rule against one flow. Pure
    /// in the flow, the workload-global projections of [`FlowRuleKey`], and
    /// the subsystem's fixed host/RNIC configuration.
    fn flow_reports(&self, flow: &FlowSpec, workload: &WorkloadSpec) -> Vec<StressReport> {
        let (sender_host, receiver_host) = self.host_pair_for(flow);
        evaluate_rules(&FlowContext {
            flow,
            workload,
            spec: &self.rnic,
            sender_host,
            receiver_host,
        })
    }

    /// Compute the offered rate and drain rate of one direction before
    /// host-level sharing is applied: the pure fluid stage (delta-cached
    /// when incremental), then this direction's triggered rule effects.
    //
    // Takes the per-evaluation context (`summaries`/`sig`/`symmetric`) as
    // plain arguments: they live in `evaluate`'s stack frame and exist
    // only for the duration of one call.
    #[allow(clippy::too_many_arguments)]
    fn direction_outcome(
        &mut self,
        direction: Direction,
        flows: &[&FlowSpec],
        summaries: &[MsgSummary],
        workload: &WorkloadSpec,
        sig: &WorkloadSig,
        symmetric: bool,
        rule_reports: &[(Direction, StressReport)],
    ) -> DirectionOutcome {
        let fluid = if self.incremental {
            let key = FluidKey::of(direction, flows, summaries, sig, symmetric);
            if let Some(cached) = self.fluid_cache.get(&key) {
                self.inc_use.direction_hits += 1;
                *cached
            } else {
                let computed = self.direction_fluid(direction, flows, workload);
                self.inc_use.direction_misses += 1;
                if self.fluid_cache.len() >= DELTA_CACHE_CAP {
                    self.fluid_cache.clear();
                }
                self.fluid_cache.insert(key, computed);
                computed
            }
        } else {
            self.direction_fluid(direction, flows, workload)
        };
        Self::apply_direction_effects(direction, fluid, rule_reports)
    }

    /// Stage-2 unit, pure part: the fluid performance model of one
    /// direction. Reads only each flow's QP count, MTU, message pattern and
    /// memory placement (the [`FluidFlowKey`] projection), the workload's
    /// bidirectional flag, and the subsystem's fixed configuration.
    fn direction_fluid(
        &self,
        direction: Direction,
        flows: &[&FlowSpec],
        workload: &WorkloadSpec,
    ) -> DirectionFluid {
        let spec = &self.rnic;
        let sender_host = self.host(direction.sender_host());
        let receiver_host = self.host(direction.receiver_host());

        let total_qps: f64 = flows.iter().map(|f| f.num_qps as f64).sum();
        let weight = |f: &FlowSpec| f.num_qps as f64 / total_qps.max(1.0);

        // Weighted traffic shape.
        let mean_msg: f64 = flows
            .iter()
            .map(|f| weight(f) * f.mean_message_bytes())
            .sum();
        let mean_pkts_per_msg: f64 = flows
            .iter()
            .map(|f| weight(f) * f.mean_packets_per_message())
            .sum::<f64>()
            .max(1.0);
        let mean_packet_bytes = (mean_msg / mean_pkts_per_msg).max(1.0);

        // Packet-rate budget (shared between directions when bidirectional).
        let share = if workload.is_bidirectional() {
            spec.bidirectional_processing_share
        } else {
            1.0
        };
        let pkt_cap_bps = spec.max_packet_rate.pps() * share * mean_packet_bytes * 8.0;

        // Sender-side DMA: payload reads bounded by the PCIe link and the
        // source memory path. WQE/doorbell control traffic is tracked as a
        // diagnostic counter (`tx_wqe_fetch_stall`) rather than as a hard
        // rate cap: on real devices the descriptor fetches overlap payload
        // reads and the packet-rate budget is what actually limits small
        // unbatched messages.
        let mut sender_dma_bps = 0.0;
        for f in flows {
            let path = sender_host.dma_path(f.src_memory, DmaDirection::FromMemory);
            let chunk = f.mean_message_bytes().min(f.mtu as f64).max(1.0);
            let link = sender_host.pcie_link.effective_bandwidth(
                ByteSize::from_bytes(chunk as u64),
                &sender_host.pcie_settings,
            );
            sender_dma_bps += weight(f) * link.min(path.bandwidth_ceiling).bits_per_sec();
        }

        // Receiver-side drain: payload writes bounded by the destination
        // memory path and the receive-side packet handling budget.
        let mut receiver_dma_bps = 0.0;
        for f in flows {
            let path = receiver_host.dma_path(f.dst_memory, DmaDirection::ToMemory);
            let chunk = f.mean_message_bytes().min(f.mtu as f64).max(1.0);
            let link = receiver_host.pcie_link.effective_bandwidth(
                ByteSize::from_bytes(chunk as u64),
                &receiver_host.pcie_settings,
            );
            receiver_dma_bps += weight(f) * link.min(path.bandwidth_ceiling).bits_per_sec();
        }

        let line = spec.line_rate.bits_per_sec();
        DirectionFluid {
            offered_bps: line.min(pkt_cap_bps).min(sender_dma_bps),
            drain_bps: line.min(receiver_dma_bps),
            mean_packet_bytes,
        }
    }

    /// Apply this direction's triggered rule effects to the fluid result,
    /// in report order (the order effects multiply in is part of the
    /// bit-identity contract).
    fn apply_direction_effects(
        direction: Direction,
        fluid: DirectionFluid,
        rule_reports: &[(Direction, StressReport)],
    ) -> DirectionOutcome {
        let mut offered = fluid.offered_bps;
        let mut drain = fluid.drain_bps;
        for (dir, report) in rule_reports {
            if *dir != direction || !report.triggered() {
                continue;
            }
            match report.effect {
                Effect::SenderThrottle { factor } => {
                    offered *= factor;
                }
                Effect::ReceiverPause { severity } => {
                    drain *= 1.0 - severity;
                }
            }
        }

        DirectionOutcome {
            direction,
            offered: BitRate::from_bits_per_sec(offered),
            drain: BitRate::from_bits_per_sec(drain),
            mean_packet_bytes: fluid.mean_packet_bytes,
        }
    }

    /// Generic (mechanism-level) diagnostic counter contributions that exist
    /// independently of any specific anomaly rule, so that random probing of
    /// the space produces the counter variance the search's ranking step
    /// relies on.
    fn publish_generic_diagnostics(
        &self,
        batch: &mut RnicCounterBatch<'_>,
        workload: &WorkloadSpec,
        metrics: &[DirectionMetrics],
        pause_ratio: [f64; 2],
    ) {
        let spec = &self.rnic;

        // Connection-context pressure.
        let qpc = miss_rate(workload.total_qps() as f64, spec.qpc_cache_entries as f64);
        batch.add_diag(diag::QP_CONTEXT_CACHE_MISS, qpc * DIAG_SCALE * 0.5);

        // Translation-table pressure.
        let mtt = miss_rate(workload.total_mrs() as f64, spec.mtt_cache_entries as f64);
        batch.add_diag(diag::MTT_CACHE_MISS, mtt * DIAG_SCALE * 0.5);

        // Receive-descriptor pressure from two-sided flows.
        let recv_ws: f64 = workload
            .flows
            .iter()
            .filter(|f| f.consumes_recv_wqe())
            .map(|f| f.num_qps as f64 * f.recv_queue_depth as f64)
            .sum();
        let rwqe = miss_rate(recv_ws, spec.recv_wqe_cache_entries as f64);
        batch.add_diag(diag::RECV_WQE_CACHE_MISS, rwqe * DIAG_SCALE * 0.5);

        // Packet-processing utilisation.
        let total_pps: f64 = metrics.iter().map(|m| m.packet_rate.pps()).sum();
        let util = (total_pps / spec.max_packet_rate.pps().max(1.0)).clamp(0.0, 1.0);
        batch.add_diag(diag::PACKET_PROCESSING_SATURATION, util * DIAG_SCALE * 0.3);

        // Transmit WQE fetch pressure: control bytes relative to payload.
        let wqe_fraction: f64 = workload
            .flows
            .iter()
            .map(|f| {
                f.wqe_bytes_per_message()
                    / (f.wqe_bytes_per_message() + f.mean_message_bytes().max(1.0))
            })
            .sum::<f64>()
            / workload.flows.len() as f64;
        batch.add_diag(diag::TX_WQE_FETCH_STALL, wqe_fraction * DIAG_SCALE * 0.3);

        // Receive-buffer occupancy mirrors the pause pressure.
        let worst_pause = pause_ratio[0].max(pause_ratio[1]);
        batch.add_diag(diag::RX_BUFFER_OCCUPANCY, worst_pause * DIAG_SCALE);
    }
}

fn mean_payload_bytes(workload: &WorkloadSpec) -> f64 {
    let total_qps: f64 = workload.flows.iter().map(|f| f.num_qps as f64).sum();
    if total_qps <= 0.0 {
        return 1.0;
    }
    workload
        .flows
        .iter()
        .map(|f| f.num_qps as f64 / total_qps * f.mean_message_bytes().min(f.mtu as f64).max(1.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RnicModel;
    use crate::workload::{MessagePattern, Opcode, Transport};
    use collie_host::memory::MemoryTarget;
    use collie_host::presets;

    fn subsystem_f() -> Subsystem {
        let mut host = presets::intel_xeon_gpu_host("F-host", ByteSize::from_gib(2048), true);
        host.cpu.chiplets_per_socket = 4;
        host.pcie_settings.relaxed_ordering = false;
        Subsystem::new("F", RnicModel::Cx6Dx200.spec(), host.clone(), host)
    }

    fn healthy_write_flow(direction: Direction) -> FlowSpec {
        let mut f = FlowSpec::basic(direction);
        f.num_qps = 8;
        f.messages = MessagePattern::uniform(64 * 1024);
        f
    }

    #[test]
    fn healthy_unidirectional_traffic_hits_line_rate() {
        let mut sys = subsystem_f();
        let w = WorkloadSpec::single(healthy_write_flow(Direction::AToB));
        let m = sys.evaluate(&w);
        let dir = m.direction(Direction::AToB).unwrap();
        assert!(
            dir.throughput.gbps() > 0.95 * 200.0,
            "expected ~line rate, got {}",
            dir.throughput
        );
        assert!(m.max_pause_ratio() < 0.001);
    }

    #[test]
    fn healthy_bidirectional_traffic_hits_line_rate_both_ways() {
        let mut sys = subsystem_f();
        let w = WorkloadSpec {
            flows: vec![
                healthy_write_flow(Direction::AToB),
                healthy_write_flow(Direction::BToA),
            ],
        };
        let m = sys.evaluate(&w);
        for d in [Direction::AToB, Direction::BToA] {
            let dir = m.direction(d).unwrap();
            assert!(
                dir.throughput.gbps() > 0.9 * 200.0,
                "{d}: {}",
                dir.throughput
            );
        }
        assert!(m.max_pause_ratio() < 0.001);
    }

    #[test]
    fn small_messages_are_packet_rate_bound_not_anomalous() {
        let mut sys = subsystem_f();
        let mut f = healthy_write_flow(Direction::AToB);
        f.messages = MessagePattern::uniform(64);
        f.wqe_batch = 32;
        let m = sys.evaluate(&WorkloadSpec::single(f));
        let dir = m.direction(Direction::AToB).unwrap();
        // Bits/s well below line rate, but packets/s at the spec cap.
        assert!(dir.throughput.gbps() < 150.0);
        assert!(dir.packet_rate.mpps() > 0.8 * sys.rnic.max_packet_rate.mpps());
        assert!(m.max_pause_ratio() < 0.001);
    }

    #[test]
    fn anomaly_1_workload_generates_pause_frames() {
        let mut sys = subsystem_f();
        let mut f = FlowSpec::basic(Direction::AToB);
        f.transport = Transport::Ud;
        f.opcode = Opcode::Send;
        f.wqe_batch = 64;
        f.recv_queue_depth = 256;
        f.send_queue_depth = 256;
        f.mtu = 2048;
        f.messages = MessagePattern::uniform(2048);
        let m = sys.evaluate(&WorkloadSpec::single(f));
        assert!(
            m.pause_ratio[1] > 0.1,
            "receiver should emit substantial pause, got {}",
            m.pause_ratio[1]
        );
        let snap = &m.counters;
        assert!(snap.value(diag::RECV_WQE_CACHE_MISS).unwrap() > 0.5 * DIAG_SCALE);
    }

    #[test]
    fn anomaly_2_workload_drops_throughput_without_pause() {
        let mut sys = subsystem_f();
        let mut f = FlowSpec::basic(Direction::AToB);
        f.transport = Transport::Ud;
        f.opcode = Opcode::Send;
        f.num_qps = 16;
        f.wqe_batch = 4;
        f.recv_queue_depth = 1024;
        f.send_queue_depth = 1024;
        f.mtu = 1024;
        f.messages = MessagePattern::uniform(1024);
        let m = sys.evaluate(&WorkloadSpec::single(f));
        let dir = m.direction(Direction::AToB).unwrap();
        assert!(m.max_pause_ratio() < 0.001, "no pause expected");
        assert!(
            dir.throughput.gbps() < 0.8 * 200.0,
            "throughput should drop, got {}",
            dir.throughput
        );
        assert!(dir.packet_rate.mpps() < 0.8 * sys.rnic.max_packet_rate.mpps());
    }

    #[test]
    fn cross_socket_bidirectional_traffic_pauses_on_chiplet_hosts() {
        let mut sys = subsystem_f();
        let mut fwd = healthy_write_flow(Direction::AToB);
        fwd.dst_memory = MemoryTarget::HostDram { numa_node: 1 };
        let mut rev = healthy_write_flow(Direction::BToA);
        rev.dst_memory = MemoryTarget::HostDram { numa_node: 1 };
        let m = sys.evaluate(&WorkloadSpec {
            flows: vec![fwd, rev],
        });
        assert!(m.max_pause_ratio() > 0.05);
    }

    #[test]
    fn loopback_plus_inbound_traffic_pauses() {
        let mut sys = subsystem_f();
        let w = WorkloadSpec {
            flows: vec![
                healthy_write_flow(Direction::LoopbackA),
                healthy_write_flow(Direction::BToA),
            ],
        };
        let m = sys.evaluate(&w);
        assert!(
            m.pause_ratio[0] > 0.01,
            "host A should pause: {:?}",
            m.pause_ratio
        );
        assert!(m.counters.value(diag::INTERNAL_INCAST).unwrap() > 0.0);
    }

    #[test]
    fn invalid_workload_yields_empty_measurement() {
        let mut sys = subsystem_f();
        let m = sys.evaluate(&WorkloadSpec::default());
        assert!(m.directions.is_empty());
        assert_eq!(m.max_pause_ratio(), 0.0);
        assert_eq!(m.total_throughput(), BitRate::ZERO);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let mut sys = subsystem_f();
        let w = WorkloadSpec::single(healthy_write_flow(Direction::AToB));
        let a = sys.evaluate(&w);
        let b = sys.evaluate(&w);
        assert_eq!(a.directions, b.directions);
        assert_eq!(a.pause_ratio, b.pause_ratio);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn counters_reset_between_experiments() {
        let mut sys = subsystem_f();
        let mut anomalous = FlowSpec::basic(Direction::AToB);
        anomalous.transport = Transport::Ud;
        anomalous.opcode = Opcode::Send;
        anomalous.wqe_batch = 64;
        anomalous.recv_queue_depth = 256;
        sys.evaluate(&WorkloadSpec::single(anomalous));
        let healthy = sys.evaluate(&WorkloadSpec::single(healthy_write_flow(Direction::AToB)));
        assert!(healthy.counters.value(diag::RECV_WQE_CACHE_MISS).unwrap() < 0.3 * DIAG_SCALE);
        assert!(healthy.max_pause_ratio() < 0.001);
    }

    #[test]
    fn incremental_path_replays_identically_and_counts_reuse() {
        let mut scratch = subsystem_f();
        let mut inc = subsystem_f();
        inc.set_incremental(true);
        assert!(inc.incremental());

        // A one-knob mutation chain: each workload shares most of its flows
        // (and all of its global projections) with a neighbour.
        let base = healthy_write_flow(Direction::AToB);
        let mut small = base.clone();
        small.messages = MessagePattern::uniform(64);
        let mut batched = base.clone();
        batched.wqe_batch = 64;
        let mut anomalous = FlowSpec::basic(Direction::AToB);
        anomalous.transport = Transport::Ud;
        anomalous.opcode = Opcode::Send;
        anomalous.wqe_batch = 64;
        anomalous.recv_queue_depth = 256;
        let chain = [
            WorkloadSpec::single(base.clone()),
            WorkloadSpec::single(base.clone()), // exact repeat: all stages hit
            WorkloadSpec::single(small),
            WorkloadSpec::single(batched), // fluid key unchanged vs. base
            WorkloadSpec {
                flows: vec![base.clone(), healthy_write_flow(Direction::BToA)],
            },
            WorkloadSpec::single(anomalous),
            WorkloadSpec::single(base),
        ];
        for w in &chain {
            let a = scratch.evaluate(w);
            let b = inc.evaluate(w);
            assert_eq!(a, b);
        }
        let reuse = inc.incremental_use();
        assert!(reuse.flow_hits > 0, "{reuse:?}");
        assert!(reuse.direction_hits > 0, "{reuse:?}");
        // The wqe_batch mutation leaves the fluid projection unchanged, so
        // the direction stage must reuse more often than the rule stage.
        assert!(reuse.direction_hits > reuse.flow_hits, "{reuse:?}");
        assert_eq!(scratch.incremental_use(), IncrementalUse::default());
    }

    #[test]
    fn disabling_incremental_drops_the_caches() {
        let mut sys = subsystem_f();
        sys.set_incremental(true);
        let w = WorkloadSpec::single(healthy_write_flow(Direction::AToB));
        sys.evaluate(&w);
        sys.evaluate(&w);
        let hits_before = sys.incremental_use().total_hits();
        assert!(hits_before > 0);
        sys.set_incremental(false);
        sys.set_incremental(true);
        sys.evaluate(&w);
        let reuse = sys.incremental_use();
        // The re-enabled pass recomputes: misses grew, hits did not.
        assert_eq!(reuse.total_hits(), hits_before);
        assert!(reuse.total_misses() > 0);
    }

    #[test]
    fn gpu_traffic_through_root_complex_pauses() {
        let mut sys = subsystem_f();
        let mut f = healthy_write_flow(Direction::AToB);
        // GPU 2 sits on the remote socket: its peer-to-peer path detours.
        f.dst_memory = MemoryTarget::GpuMemory { gpu_id: 2 };
        let m = sys.evaluate(&WorkloadSpec::single(f));
        assert!(m.pause_ratio[1] > 0.01);

        // GPU 0 shares the RNIC's switch: no pause.
        let mut good = healthy_write_flow(Direction::AToB);
        good.dst_memory = MemoryTarget::GpuMemory { gpu_id: 0 };
        let m = sys.evaluate(&WorkloadSpec::single(good));
        assert!(m.max_pause_ratio() < 0.001, "{:?}", m.pause_ratio);
    }
}
