//! The assembled RDMA subsystem and its workload evaluator.
//!
//! A [`Subsystem`] is the unit the paper tests: two identical servers with
//! one RNIC each, connected by a lossless switch. [`Subsystem::evaluate`]
//! plays the role of running the workload engine for one iteration (20–60 s
//! on hardware): it takes a [`WorkloadSpec`], resolves every flow against
//! the fluid performance model and the bottleneck rules, and returns a
//! [`Measurement`] with per-direction throughput, per-host pause-duration
//! ratios, and a snapshot of all hardware counters — the exact observables
//! the Collie search layer consumes.

use crate::bottleneck::{evaluate_rules, Effect, FlowContext, StressReport};
use crate::cache::miss_rate;
use crate::counters::{diag, perf, RnicCounters};
use crate::pfc::PauseAccount;
use crate::spec::RnicSpec;
use crate::workload::{Direction, FlowSpec, WorkloadSpec};
use collie_host::switch::LosslessSwitch;
use collie_host::topology::{DmaDirection, HostConfig};
use collie_sim::counters::{CounterRegistry, CounterSnapshot};
use collie_sim::time::SimDuration;
use collie_sim::units::{BitRate, ByteSize, PacketRate};
use serde::{Deserialize, Serialize};

/// Fraction of a receive deficit absorbed without emitting pause frames
/// (start-up transients; see §5.2's rationale for a non-zero threshold).
const PAUSE_GRACE: f64 = 0.02;

/// Scale applied to unit-less stress/miss fractions when publishing them as
/// counter values (events per second); the search normalises anyway.
const DIAG_SCALE: f64 = 1.0e6;

/// Throughput and packet rate achieved by one traffic direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectionMetrics {
    /// Which direction this row describes.
    pub direction: Direction,
    /// Rate the senders could have injected had the receiver kept up.
    pub offered: BitRate,
    /// Achieved goodput.
    pub throughput: BitRate,
    /// Achieved packet rate.
    pub packet_rate: PacketRate,
}

/// The result of one experiment on the subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Per-direction results (only directions with flows appear).
    pub directions: Vec<DirectionMetrics>,
    /// Pause-duration ratio per host (index 0 = host A, 1 = host B).
    pub pause_ratio: [f64; 2],
    /// Snapshot of every performance and diagnostic counter.
    pub counters: CounterSnapshot,
    /// Simulated observation window.
    pub window: SimDuration,
}

impl Measurement {
    /// The worst pause-duration ratio across both hosts.
    pub fn max_pause_ratio(&self) -> f64 {
        self.pause_ratio[0].max(self.pause_ratio[1])
    }

    /// Aggregate achieved throughput across all directions.
    pub fn total_throughput(&self) -> BitRate {
        self.directions
            .iter()
            .fold(BitRate::ZERO, |acc, d| acc + d.throughput)
    }

    /// Aggregate achieved packet rate across all directions.
    pub fn total_packet_rate(&self) -> PacketRate {
        PacketRate::from_pps(self.directions.iter().map(|d| d.packet_rate.pps()).sum())
    }

    /// Metrics for one direction, if it carried traffic.
    pub fn direction(&self, direction: Direction) -> Option<&DirectionMetrics> {
        self.directions.iter().find(|d| d.direction == direction)
    }

    /// An all-zero measurement (used for invalid workloads).
    pub fn empty(counters: CounterSnapshot) -> Measurement {
        Measurement {
            directions: Vec::new(),
            pause_ratio: [0.0, 0.0],
            counters,
            window: SimDuration::from_secs(1),
        }
    }
}

/// A two-server RDMA subsystem under test.
#[derive(Debug, Clone)]
pub struct Subsystem {
    /// Display name (e.g. "F").
    pub name: String,
    /// The RNIC model installed in both servers.
    pub rnic: RnicSpec,
    /// Host A.
    pub host_a: HostConfig,
    /// Host B.
    pub host_b: HostConfig,
    /// The lossless switch between them.
    pub switch: LosslessSwitch,
    registry: CounterRegistry,
    counters: RnicCounters,
}

struct DirectionOutcome {
    direction: Direction,
    offered: BitRate,
    drain: BitRate,
    mean_packet_bytes: f64,
}

impl Subsystem {
    /// Assemble a subsystem from its parts.
    pub fn new(
        name: impl Into<String>,
        rnic: RnicSpec,
        host_a: HostConfig,
        host_b: HostConfig,
    ) -> Self {
        let registry = CounterRegistry::new();
        let counters = RnicCounters::register(&registry);
        let switch = LosslessSwitch::new(rnic.line_rate);
        Subsystem {
            name: name.into(),
            rnic,
            host_a,
            host_b,
            switch,
            registry,
            counters,
        }
    }

    /// A handle to the counter registry (what the vendor monitoring daemon
    /// would expose).
    pub fn registry(&self) -> CounterRegistry {
        self.registry.clone()
    }

    /// The host at `index` (0 = A, 1 = B).
    pub fn host(&self, index: usize) -> &HostConfig {
        if index == 0 {
            &self.host_a
        } else {
            &self.host_b
        }
    }

    fn host_pair_for(&self, flow: &FlowSpec) -> (&HostConfig, &HostConfig) {
        let sender = self.host(flow.direction.sender_host());
        let receiver = self.host(flow.direction.receiver_host());
        (sender, receiver)
    }

    /// Run one experiment: offer `workload` for the measurement window and
    /// observe throughput, pause behaviour, and counters.
    pub fn evaluate(&mut self, workload: &WorkloadSpec) -> Measurement {
        self.counters.reset();
        self.switch.reset();
        if !workload.is_valid() {
            return Measurement::empty(self.registry.snapshot());
        }

        // --- Bottleneck rules: stress counters and collect triggered effects.
        let mut rule_reports: Vec<(Direction, StressReport)> = Vec::new();
        let mut diag_stress: std::collections::BTreeMap<&'static str, f64> =
            std::collections::BTreeMap::new();
        for flow in &workload.flows {
            let (sender_host, receiver_host) = self.host_pair_for(flow);
            let ctx = FlowContext {
                flow,
                workload,
                spec: &self.rnic,
                sender_host,
                receiver_host,
            };
            for report in evaluate_rules(&ctx) {
                let entry = diag_stress.entry(report.counter).or_insert(0.0);
                *entry = entry.max(report.stress);
                rule_reports.push((flow.direction, report));
            }
        }

        // --- Per-direction fluid model.
        let mut outcomes: Vec<DirectionOutcome> = Vec::new();
        for direction in [Direction::AToB, Direction::BToA, Direction::LoopbackA] {
            let flows: Vec<&FlowSpec> = workload
                .flows
                .iter()
                .filter(|f| f.direction == direction)
                .collect();
            if flows.is_empty() {
                continue;
            }
            outcomes.push(self.direction_outcome(direction, &flows, workload, &rule_reports));
        }

        // --- Host-level PCIe sharing (full-duplex: payload reads towards the
        // NIC on the transmit side, payload writes from the NIC on the
        // receive side).
        for host_idx in 0..2 {
            let host = self.host(host_idx);
            let mean_payload = mean_payload_bytes(workload);
            let capacity = host.pcie_link.effective_bandwidth(
                ByteSize::from_bytes(mean_payload as u64),
                &host.pcie_settings,
            );

            let tx_demand: f64 = outcomes
                .iter()
                .filter(|o| o.direction.sender_host() == host_idx)
                .map(|o| o.offered.bits_per_sec())
                .sum();
            let rx_demand: f64 = outcomes
                .iter()
                .filter(|o| o.direction.receiver_host() == host_idx)
                .map(|o| o.drain.bits_per_sec())
                .sum();

            if tx_demand > capacity.bits_per_sec() {
                let scale = capacity.bits_per_sec() / tx_demand;
                for o in outcomes
                    .iter_mut()
                    .filter(|o| o.direction.sender_host() == host_idx)
                {
                    o.offered = o.offered.scaled(scale);
                }
            }
            if rx_demand > capacity.bits_per_sec() {
                let scale = capacity.bits_per_sec() / rx_demand;
                let backpressure = 1.0 - scale;
                self.counters
                    .add_diag(diag::PCIE_BACKPRESSURE, backpressure * DIAG_SCALE);
                for o in outcomes
                    .iter_mut()
                    .filter(|o| o.direction.receiver_host() == host_idx)
                {
                    o.drain = o.drain.scaled(scale);
                }
            }
        }

        // --- Pause accounting and achieved throughput.
        let mut pause_parts: [Vec<PauseAccount>; 2] = [Vec::new(), Vec::new()];
        let mut metrics = Vec::new();
        for o in &outcomes {
            let achieved = o.offered.min(o.drain);
            let receiver = o.direction.receiver_host();
            pause_parts[receiver].push(PauseAccount::from_rates(o.offered, o.drain, PAUSE_GRACE));
            let pps = if o.mean_packet_bytes > 0.0 {
                achieved.bytes_per_sec() / o.mean_packet_bytes
            } else {
                0.0
            };
            metrics.push(DirectionMetrics {
                direction: o.direction,
                offered: o.offered,
                throughput: achieved,
                packet_rate: PacketRate::from_pps(pps),
            });
        }
        let pause_ratio = [
            PauseAccount::combine(&pause_parts[0]).pause_ratio,
            PauseAccount::combine(&pause_parts[1]).pause_ratio,
        ];
        self.switch.record_pause(0, pause_ratio[0]);
        self.switch.record_pause(1, pause_ratio[1]);

        // --- Publish counters.
        self.publish_generic_diagnostics(workload, &metrics, pause_ratio);
        for (name, stress) in &diag_stress {
            self.counters.add_diag(name, stress * DIAG_SCALE);
        }
        let total_bps: f64 = metrics.iter().map(|m| m.throughput.bits_per_sec()).sum();
        let total_pps: f64 = metrics.iter().map(|m| m.packet_rate.pps()).sum();
        self.counters
            .set_perf(perf::TX_BYTES_PER_SEC, total_bps / 8.0);
        self.counters
            .set_perf(perf::RX_BYTES_PER_SEC, total_bps / 8.0);
        self.counters.set_perf(perf::TX_PACKETS_PER_SEC, total_pps);
        self.counters.set_perf(perf::RX_PACKETS_PER_SEC, total_pps);

        Measurement {
            directions: metrics,
            pause_ratio,
            counters: self.registry.snapshot(),
            window: SimDuration::from_secs(1),
        }
    }

    /// Compute the offered rate and drain rate of one direction before
    /// host-level sharing is applied.
    fn direction_outcome(
        &self,
        direction: Direction,
        flows: &[&FlowSpec],
        workload: &WorkloadSpec,
        rule_reports: &[(Direction, StressReport)],
    ) -> DirectionOutcome {
        let spec = &self.rnic;
        let sender_host = self.host(direction.sender_host());
        let receiver_host = self.host(direction.receiver_host());

        let total_qps: f64 = flows.iter().map(|f| f.num_qps as f64).sum();
        let weight = |f: &FlowSpec| f.num_qps as f64 / total_qps.max(1.0);

        // Weighted traffic shape.
        let mean_msg: f64 = flows
            .iter()
            .map(|f| weight(f) * f.mean_message_bytes())
            .sum();
        let mean_pkts_per_msg: f64 = flows
            .iter()
            .map(|f| weight(f) * f.mean_packets_per_message())
            .sum::<f64>()
            .max(1.0);
        let mean_packet_bytes = (mean_msg / mean_pkts_per_msg).max(1.0);

        // Packet-rate budget (shared between directions when bidirectional).
        let share = if workload.is_bidirectional() {
            spec.bidirectional_processing_share
        } else {
            1.0
        };
        let pkt_cap_bps = spec.max_packet_rate.pps() * share * mean_packet_bytes * 8.0;

        // Sender-side DMA: payload reads bounded by the PCIe link and the
        // source memory path. WQE/doorbell control traffic is tracked as a
        // diagnostic counter (`tx_wqe_fetch_stall`) rather than as a hard
        // rate cap: on real devices the descriptor fetches overlap payload
        // reads and the packet-rate budget is what actually limits small
        // unbatched messages.
        let mut sender_dma_bps = 0.0;
        for f in flows {
            let path = sender_host.dma_path(f.src_memory, DmaDirection::FromMemory);
            let chunk = f.mean_message_bytes().min(f.mtu as f64).max(1.0);
            let link = sender_host.pcie_link.effective_bandwidth(
                ByteSize::from_bytes(chunk as u64),
                &sender_host.pcie_settings,
            );
            sender_dma_bps += weight(f) * link.min(path.bandwidth_ceiling).bits_per_sec();
        }

        // Receiver-side drain: payload writes bounded by the destination
        // memory path and the receive-side packet handling budget.
        let mut receiver_dma_bps = 0.0;
        for f in flows {
            let path = receiver_host.dma_path(f.dst_memory, DmaDirection::ToMemory);
            let chunk = f.mean_message_bytes().min(f.mtu as f64).max(1.0);
            let link = receiver_host.pcie_link.effective_bandwidth(
                ByteSize::from_bytes(chunk as u64),
                &receiver_host.pcie_settings,
            );
            receiver_dma_bps += weight(f) * link.min(path.bandwidth_ceiling).bits_per_sec();
        }

        let line = spec.line_rate.bits_per_sec();
        let mut offered = line.min(pkt_cap_bps).min(sender_dma_bps);
        let mut drain = line.min(receiver_dma_bps);

        // Apply triggered rule effects for this direction.
        for (dir, report) in rule_reports {
            if *dir != direction || !report.triggered() {
                continue;
            }
            match report.effect {
                Effect::SenderThrottle { factor } => {
                    offered *= factor;
                }
                Effect::ReceiverPause { severity } => {
                    drain *= 1.0 - severity;
                }
            }
        }

        DirectionOutcome {
            direction,
            offered: BitRate::from_bits_per_sec(offered),
            drain: BitRate::from_bits_per_sec(drain),
            mean_packet_bytes,
        }
    }

    /// Generic (mechanism-level) diagnostic counter contributions that exist
    /// independently of any specific anomaly rule, so that random probing of
    /// the space produces the counter variance the search's ranking step
    /// relies on.
    fn publish_generic_diagnostics(
        &self,
        workload: &WorkloadSpec,
        metrics: &[DirectionMetrics],
        pause_ratio: [f64; 2],
    ) {
        let spec = &self.rnic;

        // Connection-context pressure.
        let qpc = miss_rate(workload.total_qps() as f64, spec.qpc_cache_entries as f64);
        self.counters
            .add_diag(diag::QP_CONTEXT_CACHE_MISS, qpc * DIAG_SCALE * 0.5);

        // Translation-table pressure.
        let mtt = miss_rate(workload.total_mrs() as f64, spec.mtt_cache_entries as f64);
        self.counters
            .add_diag(diag::MTT_CACHE_MISS, mtt * DIAG_SCALE * 0.5);

        // Receive-descriptor pressure from two-sided flows.
        let recv_ws: f64 = workload
            .flows
            .iter()
            .filter(|f| f.consumes_recv_wqe())
            .map(|f| f.num_qps as f64 * f.recv_queue_depth as f64)
            .sum();
        let rwqe = miss_rate(recv_ws, spec.recv_wqe_cache_entries as f64);
        self.counters
            .add_diag(diag::RECV_WQE_CACHE_MISS, rwqe * DIAG_SCALE * 0.5);

        // Packet-processing utilisation.
        let total_pps: f64 = metrics.iter().map(|m| m.packet_rate.pps()).sum();
        let util = (total_pps / spec.max_packet_rate.pps().max(1.0)).clamp(0.0, 1.0);
        self.counters
            .add_diag(diag::PACKET_PROCESSING_SATURATION, util * DIAG_SCALE * 0.3);

        // Transmit WQE fetch pressure: control bytes relative to payload.
        let wqe_fraction: f64 = workload
            .flows
            .iter()
            .map(|f| {
                f.wqe_bytes_per_message()
                    / (f.wqe_bytes_per_message() + f.mean_message_bytes().max(1.0))
            })
            .sum::<f64>()
            / workload.flows.len() as f64;
        self.counters
            .add_diag(diag::TX_WQE_FETCH_STALL, wqe_fraction * DIAG_SCALE * 0.3);

        // Receive-buffer occupancy mirrors the pause pressure.
        let worst_pause = pause_ratio[0].max(pause_ratio[1]);
        self.counters
            .add_diag(diag::RX_BUFFER_OCCUPANCY, worst_pause * DIAG_SCALE);
    }
}

fn mean_payload_bytes(workload: &WorkloadSpec) -> f64 {
    let total_qps: f64 = workload.flows.iter().map(|f| f.num_qps as f64).sum();
    if total_qps <= 0.0 {
        return 1.0;
    }
    workload
        .flows
        .iter()
        .map(|f| f.num_qps as f64 / total_qps * f.mean_message_bytes().min(f.mtu as f64).max(1.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RnicModel;
    use crate::workload::{MessagePattern, Opcode, Transport};
    use collie_host::memory::MemoryTarget;
    use collie_host::presets;

    fn subsystem_f() -> Subsystem {
        let mut host = presets::intel_xeon_gpu_host("F-host", ByteSize::from_gib(2048), true);
        host.cpu.chiplets_per_socket = 4;
        host.pcie_settings.relaxed_ordering = false;
        Subsystem::new("F", RnicModel::Cx6Dx200.spec(), host.clone(), host)
    }

    fn healthy_write_flow(direction: Direction) -> FlowSpec {
        let mut f = FlowSpec::basic(direction);
        f.num_qps = 8;
        f.messages = MessagePattern::uniform(64 * 1024);
        f
    }

    #[test]
    fn healthy_unidirectional_traffic_hits_line_rate() {
        let mut sys = subsystem_f();
        let w = WorkloadSpec::single(healthy_write_flow(Direction::AToB));
        let m = sys.evaluate(&w);
        let dir = m.direction(Direction::AToB).unwrap();
        assert!(
            dir.throughput.gbps() > 0.95 * 200.0,
            "expected ~line rate, got {}",
            dir.throughput
        );
        assert!(m.max_pause_ratio() < 0.001);
    }

    #[test]
    fn healthy_bidirectional_traffic_hits_line_rate_both_ways() {
        let mut sys = subsystem_f();
        let w = WorkloadSpec {
            flows: vec![
                healthy_write_flow(Direction::AToB),
                healthy_write_flow(Direction::BToA),
            ],
        };
        let m = sys.evaluate(&w);
        for d in [Direction::AToB, Direction::BToA] {
            let dir = m.direction(d).unwrap();
            assert!(
                dir.throughput.gbps() > 0.9 * 200.0,
                "{d}: {}",
                dir.throughput
            );
        }
        assert!(m.max_pause_ratio() < 0.001);
    }

    #[test]
    fn small_messages_are_packet_rate_bound_not_anomalous() {
        let mut sys = subsystem_f();
        let mut f = healthy_write_flow(Direction::AToB);
        f.messages = MessagePattern::uniform(64);
        f.wqe_batch = 32;
        let m = sys.evaluate(&WorkloadSpec::single(f));
        let dir = m.direction(Direction::AToB).unwrap();
        // Bits/s well below line rate, but packets/s at the spec cap.
        assert!(dir.throughput.gbps() < 150.0);
        assert!(dir.packet_rate.mpps() > 0.8 * sys.rnic.max_packet_rate.mpps());
        assert!(m.max_pause_ratio() < 0.001);
    }

    #[test]
    fn anomaly_1_workload_generates_pause_frames() {
        let mut sys = subsystem_f();
        let mut f = FlowSpec::basic(Direction::AToB);
        f.transport = Transport::Ud;
        f.opcode = Opcode::Send;
        f.wqe_batch = 64;
        f.recv_queue_depth = 256;
        f.send_queue_depth = 256;
        f.mtu = 2048;
        f.messages = MessagePattern::uniform(2048);
        let m = sys.evaluate(&WorkloadSpec::single(f));
        assert!(
            m.pause_ratio[1] > 0.1,
            "receiver should emit substantial pause, got {}",
            m.pause_ratio[1]
        );
        let snap = &m.counters;
        assert!(snap.value(diag::RECV_WQE_CACHE_MISS).unwrap() > 0.5 * DIAG_SCALE);
    }

    #[test]
    fn anomaly_2_workload_drops_throughput_without_pause() {
        let mut sys = subsystem_f();
        let mut f = FlowSpec::basic(Direction::AToB);
        f.transport = Transport::Ud;
        f.opcode = Opcode::Send;
        f.num_qps = 16;
        f.wqe_batch = 4;
        f.recv_queue_depth = 1024;
        f.send_queue_depth = 1024;
        f.mtu = 1024;
        f.messages = MessagePattern::uniform(1024);
        let m = sys.evaluate(&WorkloadSpec::single(f));
        let dir = m.direction(Direction::AToB).unwrap();
        assert!(m.max_pause_ratio() < 0.001, "no pause expected");
        assert!(
            dir.throughput.gbps() < 0.8 * 200.0,
            "throughput should drop, got {}",
            dir.throughput
        );
        assert!(dir.packet_rate.mpps() < 0.8 * sys.rnic.max_packet_rate.mpps());
    }

    #[test]
    fn cross_socket_bidirectional_traffic_pauses_on_chiplet_hosts() {
        let mut sys = subsystem_f();
        let mut fwd = healthy_write_flow(Direction::AToB);
        fwd.dst_memory = MemoryTarget::HostDram { numa_node: 1 };
        let mut rev = healthy_write_flow(Direction::BToA);
        rev.dst_memory = MemoryTarget::HostDram { numa_node: 1 };
        let m = sys.evaluate(&WorkloadSpec {
            flows: vec![fwd, rev],
        });
        assert!(m.max_pause_ratio() > 0.05);
    }

    #[test]
    fn loopback_plus_inbound_traffic_pauses() {
        let mut sys = subsystem_f();
        let w = WorkloadSpec {
            flows: vec![
                healthy_write_flow(Direction::LoopbackA),
                healthy_write_flow(Direction::BToA),
            ],
        };
        let m = sys.evaluate(&w);
        assert!(
            m.pause_ratio[0] > 0.01,
            "host A should pause: {:?}",
            m.pause_ratio
        );
        assert!(m.counters.value(diag::INTERNAL_INCAST).unwrap() > 0.0);
    }

    #[test]
    fn invalid_workload_yields_empty_measurement() {
        let mut sys = subsystem_f();
        let m = sys.evaluate(&WorkloadSpec::default());
        assert!(m.directions.is_empty());
        assert_eq!(m.max_pause_ratio(), 0.0);
        assert_eq!(m.total_throughput(), BitRate::ZERO);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let mut sys = subsystem_f();
        let w = WorkloadSpec::single(healthy_write_flow(Direction::AToB));
        let a = sys.evaluate(&w);
        let b = sys.evaluate(&w);
        assert_eq!(a.directions, b.directions);
        assert_eq!(a.pause_ratio, b.pause_ratio);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn counters_reset_between_experiments() {
        let mut sys = subsystem_f();
        let mut anomalous = FlowSpec::basic(Direction::AToB);
        anomalous.transport = Transport::Ud;
        anomalous.opcode = Opcode::Send;
        anomalous.wqe_batch = 64;
        anomalous.recv_queue_depth = 256;
        sys.evaluate(&WorkloadSpec::single(anomalous));
        let healthy = sys.evaluate(&WorkloadSpec::single(healthy_write_flow(Direction::AToB)));
        assert!(healthy.counters.value(diag::RECV_WQE_CACHE_MISS).unwrap() < 0.3 * DIAG_SCALE);
        assert!(healthy.max_pause_ratio() < 0.001);
    }

    #[test]
    fn gpu_traffic_through_root_complex_pauses() {
        let mut sys = subsystem_f();
        let mut f = healthy_write_flow(Direction::AToB);
        // GPU 2 sits on the remote socket: its peer-to-peer path detours.
        f.dst_memory = MemoryTarget::GpuMemory { gpu_id: 2 };
        let m = sys.evaluate(&WorkloadSpec::single(f));
        assert!(m.pause_ratio[1] > 0.01);

        // GPU 0 shares the RNIC's switch: no pause.
        let mut good = healthy_write_flow(Direction::AToB);
        good.dst_memory = MemoryTarget::GpuMemory { gpu_id: 0 };
        let m = sys.evaluate(&WorkloadSpec::single(good));
        assert!(m.max_pause_ratio() < 0.001, "{:?}", m.pause_ratio);
    }
}
